"""Custom schema: registering your own marts, interfaces, and patterns.

Shows the full adoption path for a new domain — a job-hunting scenario
("companies hiring for my skill, apartments near the office, gyms
nearby") — from schema definition through optimization and execution.

    python examples/custom_schema.py
"""

from repro import (
    Optimizer,
    OptimizerConfig,
    ServicePool,
    compile_query,
    execute_plan,
    parse_query,
)
from repro.core.cost import ExecutionTimeMetric
from repro.model.attributes import Attribute, DataType, Domain, RepeatingGroup
from repro.model.connections import AttributePair, ConnectionPattern
from repro.model.registry import ServiceRegistry
from repro.model.scoring import LinearScoring, PowerLawScoring
from repro.model.service import (
    AccessPattern,
    ServiceInterface,
    ServiceKind,
    ServiceMart,
    ServiceStats,
)


def build_registry() -> ServiceRegistry:
    """Define the job-hunt schema: three marts, three interfaces, two
    connection patterns."""
    registry = ServiceRegistry()

    skill = Domain("skill", DataType.STRING, size=15)
    district = Domain("district", DataType.STRING, size=12)
    money = Domain("salary", DataType.INTEGER, size=100)

    company = ServiceMart(
        "Company",
        (
            Attribute("CName"),
            Attribute("District", district),
            Attribute("Salary", money),
            RepeatingGroup("Roles", (Attribute("Skill", skill),), avg_members=2),
        ),
        description="Open positions ranked by fit",
    )
    apartment = ServiceMart(
        "Apartment",
        (
            Attribute("AAddress"),
            Attribute("ADistrict", district),
            Attribute("Rent", money),
            Attribute("Rooms", Domain("rooms", DataType.INTEGER, size=5)),
        ),
        description="Rental listings ranked by value",
    )
    gym = ServiceMart(
        "Gym",
        (
            Attribute("GName"),
            Attribute("GDistrict", district),
            Attribute("MonthlyFee", Domain("fee", DataType.INTEGER, size=80)),
        ),
        description="Gyms ranked by rating",
    )

    registry.register_interface(
        ServiceInterface(
            name="JobSearch",
            mart=company,
            access_pattern=AccessPattern.from_spec({"Roles.Skill": "I"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(avg_cardinality=60, chunk_size=10, latency=1.2),
            scoring=PowerLawScoring(exponent=0.4),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="FlatFinder",
            mart=apartment,
            access_pattern=AccessPattern.from_spec({"ADistrict": "I"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(avg_cardinality=30, chunk_size=5, latency=0.9),
            scoring=LinearScoring(horizon=30),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="GymGuide",
            mart=gym,
            access_pattern=AccessPattern.from_spec({"GDistrict": "I"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(avg_cardinality=8, chunk_size=4, latency=0.5),
            scoring=LinearScoring(horizon=8),
        )
    )

    registry.register_pattern(
        ConnectionPattern(
            name="LivesNear",
            source=company,
            target=apartment,
            pairs=(AttributePair.parse("District", "ADistrict"),),
            selectivity=0.7,
            description="Apartment in the company's district",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="TrainsNear",
            source=apartment,
            target=gym,
            pairs=(AttributePair.parse("ADistrict", "GDistrict"),),
            selectivity=0.6,
            description="Gym in the apartment's district",
        )
    )
    return registry


QUERY = (
    "SELECT JobSearch AS J, FlatFinder AS A, GymGuide AS G "
    "WHERE LivesNear(J, A) AND TrainsNear(A, G) "
    "AND J.Roles.Skill = INPUT1 AND J.Salary >= INPUT2 "
    "RANK BY 0.5*J, 0.3*A, 0.2*G LIMIT 8"
)

INPUTS = {"INPUT1": "skill#4", "INPUT2": 40}


def main() -> None:
    registry = build_registry()
    print(registry.describe())
    print()
    print("Query:", QUERY)

    query = compile_query(parse_query(QUERY), registry)
    outcome = Optimizer(
        query, OptimizerConfig(metric=ExecutionTimeMetric())
    ).optimize()
    best = outcome.best
    assert best is not None
    print()
    print(
        f"Best plan: cost {best.cost:.2f}, fetches {best.fetch_vector()}, "
        f"estimated {best.estimated_results:.1f} results"
    )
    print(best.render())

    pool = ServicePool(registry, global_seed=99)
    result = execute_plan(best.plan, query, pool, INPUTS, best.fetch_vector())
    print()
    print(f"{result.total_calls} calls -> {len(result.tuples)} combinations:")
    for rank, combo in enumerate(result.tuples, start=1):
        job = combo.component("J").values
        flat = combo.component("A").values
        gym_t = combo.component("G").values
        print(
            f"  {rank}. score={combo.score:.3f}  {job['CName']} "
            f"({job['District']}, {job['Salary']}k)  flat {flat['Rooms']} rooms "
            f"@{flat['Rent']}  gym {gym_t['GName']} @{gym_t['MonthlyFee']}"
        )


if __name__ == "__main__":
    main()
