"""Quickstart: parse, compile, optimize, and execute a multi-domain query.

Runs the book's running example ("find a recent movie of a genre I like,
a close theatre showing it, and a good restaurant nearby") end to end over
the simulated service substrate.

    python examples/quickstart.py
"""

from repro import (
    OptimizerConfig,
    Optimizer,
    ServicePool,
    compile_query,
    execute_plan,
    parse_query,
)
from repro.core.cost import ExecutionTimeMetric
from repro.services.marts import (
    RUNNING_EXAMPLE_INPUTS,
    RUNNING_EXAMPLE_QUERY,
    movie_night_registry,
)


def main() -> None:
    # 1. The schema: service marts, adorned interfaces, connection patterns.
    registry = movie_night_registry()
    print(registry.describe())
    print()

    # 2. The query: conjunctive, over service interfaces, with INPUT
    #    variables, a ranking function, and k.
    print("Query:")
    print(" ", RUNNING_EXAMPLE_QUERY)
    query = compile_query(parse_query(RUNNING_EXAMPLE_QUERY), registry)

    # 3. Optimize: three-phase branch and bound under a cost metric.
    config = OptimizerConfig(metric=ExecutionTimeMetric())
    outcome = Optimizer(query, config).optimize()
    best = outcome.best
    assert best is not None
    print()
    print(
        f"Optimizer explored {outcome.stats.expanded} states "
        f"(pruned {outcome.stats.pruned}), best cost "
        f"{best.cost:.2f} virtual seconds, fetch factors {best.fetch_vector()}"
    )
    print()
    print("Chosen fully instantiated plan (tin/tout annotations):")
    print(best.render())

    # 4. Execute over the simulated services on virtual time.  The fetch
    #    vector targets k in *expectation*; doubling it here plays the
    #    role of the user's "give me more results" interaction.
    generous = {alias: factor * 2 for alias, factor in best.fetch_vector().items()}
    pool = ServicePool(registry, global_seed=2009)
    result = execute_plan(
        best.plan, query, pool, RUNNING_EXAMPLE_INPUTS, generous
    )
    print()
    print(
        f"Execution: {result.total_calls} service calls, "
        f"{result.execution_time:.2f} virtual seconds, "
        f"{len(result.tuples)} combinations"
    )
    print()
    print("Top combinations (global score = 0.3*movie + 0.5*theatre + 0.2*restaurant):")
    for rank, combo in enumerate(result.tuples, start=1):
        movie = combo.component("M").values["Title"]
        theatre = combo.component("T").values["Name"]
        restaurant = combo.component("R").values["Name"]
        print(
            f"  {rank:2d}. score={combo.score:.3f}  movie={movie}  "
            f"theatre={theatre}  dinner={restaurant}"
        )


if __name__ == "__main__":
    main()
