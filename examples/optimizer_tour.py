"""Optimizer tour: heuristics, pruning, anytime behaviour, baselines.

Puts the branch-and-bound machinery through its paces on the running
example: the 2x2x2 heuristic grid, pruning on vs. off, anytime budgets,
and a comparison against the exhaustive / first-feasible / random
baselines.

    python examples/optimizer_tour.py
"""

import time

from repro import Optimizer, OptimizerConfig, compile_query, parse_query
from repro.baselines.exhaustive import exhaustive_optimum
from repro.baselines.naive import first_feasible_candidate, random_candidate
from repro.core.cost import ExecutionTimeMetric
from repro.core.heuristics import (
    BoundIsBetter,
    GreedyFetch,
    ParallelIsBetter,
    SelectiveFirst,
    SquareIsBetter,
    UnboundIsEasier,
)
from repro.services.marts import RUNNING_EXAMPLE_QUERY, movie_night_registry


def main() -> None:
    registry = movie_night_registry()
    query = compile_query(parse_query(RUNNING_EXAMPLE_QUERY), registry)
    metric = ExecutionTimeMetric()

    # ---- Ground truth -------------------------------------------------------
    t0 = time.perf_counter()
    truth = exhaustive_optimum(query, metric=metric)
    t_truth = time.perf_counter() - t0
    assert truth.best is not None
    print(
        f"Exhaustive optimum: cost {truth.best.cost:.2f} "
        f"({truth.candidates_priced} candidates priced in {t_truth*1000:.0f} ms)"
    )

    # ---- Heuristic grid ------------------------------------------------------
    print()
    print("=== 2x2x2 heuristic grid (all run to exhaustion) ===")
    print(
        f"{'phase1':18s} {'phase2':18s} {'phase3':18s} "
        f"{'cost':>8s} {'expanded':>9s} {'pruned':>7s}"
    )
    for phase1 in (BoundIsBetter(), UnboundIsEasier()):
        for phase2 in (SelectiveFirst(), ParallelIsBetter()):
            for phase3 in (GreedyFetch(), SquareIsBetter()):
                config = OptimizerConfig(
                    metric=metric, phase1=phase1, phase2=phase2, phase3=phase3
                )
                outcome = Optimizer(query, config).optimize()
                best = outcome.best
                assert best is not None
                print(
                    f"{phase1.name:18s} {phase2.name:18s} {phase3.name:18s} "
                    f"{best.cost:8.2f} {outcome.stats.expanded:9d} "
                    f"{outcome.stats.pruned:7d}"
                )

    # ---- Pruning ablation ----------------------------------------------------
    print()
    print("=== Pruning ablation ===")
    for prune in (True, False):
        outcome = Optimizer(
            query, OptimizerConfig(metric=metric, prune=prune)
        ).optimize()
        assert outcome.best is not None
        print(
            f"prune={str(prune):5s}: cost {outcome.best.cost:.2f}, "
            f"expanded {outcome.stats.expanded}, enqueued {outcome.stats.enqueued}"
        )

    # ---- Anytime behaviour ----------------------------------------------------
    print()
    print("=== Anytime behaviour (expansion budget -> incumbent cost) ===")
    for budget in (1, 3, 10, 30, 100, None):
        outcome = Optimizer(
            query, OptimizerConfig(metric=metric, budget=budget)
        ).optimize()
        assert outcome.best is not None
        label = str(budget) if budget is not None else "unbounded"
        print(
            f"budget {label:>9s}: cost {outcome.best.cost:8.2f} "
            f"(optimal: {abs(outcome.best.cost - truth.best.cost) < 1e-9})"
        )

    # ---- Baselines -------------------------------------------------------------
    print()
    print("=== Baselines ===")
    naive = first_feasible_candidate(query, metric=metric)
    print(f"first-feasible plan: cost {naive.cost:.2f}")
    random_costs = [
        random_candidate(query, seed=seed, metric=metric).cost for seed in range(10)
    ]
    mean_random = sum(random_costs) / len(random_costs)
    print(
        f"random plans (10 seeds): mean cost {mean_random:.2f}, "
        f"min {min(random_costs):.2f}, max {max(random_costs):.2f}"
    )
    print(
        f"optimization pays off: random/optimal = "
        f"{mean_random / truth.best.cost:.1f}x"
    )


if __name__ == "__main__":
    main()
