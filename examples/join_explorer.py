"""Join explorer: visualising the Section 4 search-space strategies.

Renders ASCII pictures of the tile exploration order for every join
method combination (Figs. 5, 6, 7), measures calls-to-k for each, checks
extraction optimality, and contrasts the fast methods with the guaranteed
top-k rank join.

    python examples/join_explorer.py
"""

import random
from fractions import Fraction

from repro.joins.completion import RectangularCompletion, TriangularCompletion
from repro.joins.extraction import count_local_violations
from repro.joins.methods import ListChunkSource, ParallelJoinExecutor
from repro.joins.strategies import MergeScanSchedule, NestedLoopSchedule
from repro.joins.topk import RankJoinExecutor
from repro.model.scoring import LinearScoring, StepScoring
from repro.model.tuples import ServiceTuple

GRID = 6  # tiles per axis in the pictures


def make_source(scoring, name, seed, n=60, chunk=5, keys=8):
    rng = random.Random(seed)
    tuples = [
        ServiceTuple(
            {"k": rng.randrange(keys)},
            score=min(1.0, max(0.0, scoring.score_at(i))),
            source=name,
            position=i,
        )
        for i in range(n)
    ]
    return ListChunkSource(tuples, chunk, scoring)


def picture(trace, size=GRID):
    """ASCII grid: the order in which tiles were processed (1-based)."""
    order = {tile: index + 1 for index, tile in enumerate(trace)}
    lines = []
    for y in range(size - 1, -1, -1):
        cells = []
        for x in range(size):
            from repro.joins.searchspace import Tile

            number = order.get(Tile(x, y))
            cells.append(f"{number:3d}" if number else "  .")
        lines.append(f"  y={y} |" + " ".join(cells))
    lines.append("       " + "".join(f"  x={x}" for x in range(size)))
    return "\n".join(lines)


def explore(title, schedule, policy, scoring_x, scoring_y, k=12):
    x = make_source(scoring_x, "X", seed=1)
    y = make_source(scoring_y, "Y", seed=2)
    executor = ParallelJoinExecutor(
        x,
        y,
        lambda a, b: a.values["k"] == b.values["k"],
        schedule=schedule,
        policy=policy,
        k=k,
    )
    result = executor.run()
    stats = result.stats
    violations = count_local_violations(stats.events, executor.space)
    print(f"--- {title} ---")
    print(picture(stats.trace))
    print(
        f"  calls: {stats.calls_x}+{stats.calls_y}={stats.total_calls}, "
        f"tiles: {stats.tiles_processed}, candidates: {stats.candidates}, "
        f"results: {len(result)}, local violations: {violations}"
    )
    print()


def main() -> None:
    linear = LinearScoring(horizon=60)
    step = StepScoring(step_position=10)

    print("=" * 64)
    print("Merge-scan + triangular (the default parallel method, Fig. 5b)")
    print("=" * 64)
    explore(
        "MS/tri, ratio 1/1, progressive scores",
        MergeScanSchedule(),
        TriangularCompletion(),
        linear,
        linear,
    )

    print("=" * 64)
    print("Merge-scan + rectangular with ratio 1: growing squares (Fig. 7)")
    print("=" * 64)
    explore(
        "MS/rect, ratio 1/1",
        MergeScanSchedule(),
        RectangularCompletion(),
        linear,
        linear,
    )

    print("=" * 64)
    print("Nested-loop + rectangular on a step service (Fig. 5a)")
    print("=" * 64)
    explore(
        "NL/rect, h=2 (step at position 10, chunk 5)",
        NestedLoopSchedule(step_chunks=2),
        RectangularCompletion(),
        step,
        linear,
    )

    print("=" * 64)
    print("Merge-scan 3/5 ratio + triangular (asymmetric services)")
    print("=" * 64)
    explore(
        "MS/tri, ratio 3/5",
        MergeScanSchedule(Fraction(3, 5)),
        TriangularCompletion(r1=3, r2=5),
        linear,
        linear,
    )

    print("=" * 64)
    print("Guaranteed top-k rank join vs. extraction-optimal join")
    print("=" * 64)
    predicate = lambda a, b: a.values["k"] == b.values["k"]
    fast_x = make_source(linear, "X", seed=1)
    fast_y = make_source(linear, "Y", seed=2)
    fast = ParallelJoinExecutor(fast_x, fast_y, predicate, k=10).run()
    rank_x = make_source(linear, "X", seed=1)
    rank_y = make_source(linear, "Y", seed=2)
    exact = RankJoinExecutor(rank_x, rank_y, predicate, k=10).run()
    fast_scores = [round(p.score, 3) for p in fast.pairs]
    exact_scores = [round(p.score, 3) for p in exact.pairs]
    print(f"fast MS/tri join : {fast.stats.total_calls} calls, scores {fast_scores}")
    print(f"rank join (top-k): {exact.stats.total_calls} calls, scores {exact_scores}")
    print(
        "The rank join guarantees the global top-k order; the fast join "
        "approximates it at lower (or equal) cost."
    )


if __name__ == "__main__":
    main()
