"""Conference trip: the Fig. 2/3 scenario with a selective-in-context service.

"Find conferences on my topic where the weather is warm, with a cheap
flight and a good hotel."  Demonstrates:

* an exact proliferative service (Conference, ~20 answers),
* a service that is *selective in the context of the query* (Weather +
  the AvgTemp > 26 predicate),
* two chunked search services explored in parallel and combined by a
  merge-scan parallel join,
* optimization under execution-time vs. call-count metrics — time favours
  the parallel topology, calls favour serial filtering.

    python examples/conference_trip.py
"""

from repro import (
    Optimizer,
    OptimizerConfig,
    ServicePool,
    compile_query,
    execute_plan,
    parse_query,
)
from repro.core.annotate import annotate
from repro.core.cost import CallCountMetric, ExecutionTimeMetric
from repro.services.marts import (
    CONFERENCE_INPUTS,
    CONFERENCE_QUERY,
    conference_trip_registry,
)


def main() -> None:
    registry = conference_trip_registry()
    print("Query:")
    print(" ", CONFERENCE_QUERY)
    query = compile_query(parse_query(CONFERENCE_QUERY), registry)

    for metric in (ExecutionTimeMetric(), CallCountMetric()):
        outcome = Optimizer(query, OptimizerConfig(metric=metric)).optimize()
        best = outcome.best
        assert best is not None
        print()
        print(f"=== optimized for {metric.name} ===")
        print(
            f"cost {best.cost:.2f}, estimated results "
            f"{best.estimated_results:.1f}, fetches {best.fetch_vector()}, "
            f"explored {outcome.stats.expanded} states"
        )
        print(best.render())

        annotations = annotate(
            best.plan, query, fetches=best.fetch_vector()
        )
        weather = best.plan.service_node_for("W")
        tin = annotations.tin(weather.node_id)
        tout = annotations.tout(weather.node_id)
        print(
            f"Weather is selective in context: tin={tin:.1f} -> tout={tout:.1f} "
            f"(the AvgTemp > {CONFERENCE_INPUTS['INPUT2']} filter)"
        )

    # Execute the time-optimal plan.
    outcome = Optimizer(
        query, OptimizerConfig(metric=ExecutionTimeMetric())
    ).optimize()
    best = outcome.best
    assert best is not None
    pool = ServicePool(registry, global_seed=77)
    result = execute_plan(
        best.plan, query, pool, CONFERENCE_INPUTS, best.fetch_vector()
    )
    print()
    print(
        f"=== execution === {result.total_calls} calls, "
        f"{result.execution_time:.2f} virtual seconds, "
        f"{len(result.tuples)} trip combinations"
    )
    for rank, combo in enumerate(result.tuples[:10], start=1):
        conf = combo.component("C").values
        flight = combo.component("F").values
        hotel = combo.component("H").values
        temp = combo.component("W").values["AvgTemp"]
        print(
            f"  {rank:2d}. score={combo.score:.3f}  {conf['Name']} in "
            f"{conf['City']} ({temp:.0f}C)  flight {flight['Airline']} "
            f"{flight['FPrice']:.0f}EUR  hotel {hotel['HName']} "
            f"({hotel['Stars']}*)"
        )


if __name__ == "__main__":
    main()
