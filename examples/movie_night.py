"""Movie night: the running example, phase by phase (Sections 3-5).

Walks the optimizer's three phases explicitly on the Movie / Theatre /
Restaurant query: feasibility and binding choices (phase 1), the four
Fig. 9 topologies (phase 2), the Fig. 10 fetch assignment (phase 3), and
a cost comparison of every topology under every metric.

    python examples/movie_night.py
"""

from repro import ServicePool, compile_query, execute_plan, parse_query
from repro.core.annotate import annotate
from repro.core.cost import DEFAULT_METRICS
from repro.core.topology import enumerate_topologies
from repro.query.feasibility import check_feasibility, enumerate_binding_choices
from repro.services.marts import (
    RUNNING_EXAMPLE_INPUTS,
    RUNNING_EXAMPLE_QUERY,
    movie_night_registry,
)

FIG10_FETCHES = {"M": 5, "T": 5, "R": 1}


def main() -> None:
    registry = movie_night_registry()
    query = compile_query(parse_query(RUNNING_EXAMPLE_QUERY), registry)

    # ---- Phase 1: access patterns and feasibility -------------------------
    print("=== Phase 1: access-pattern selection ===")
    feasibility = check_feasibility(query)
    print(f"feasible: {feasibility.feasible}; reachability order: {feasibility.order}")
    choices = list(enumerate_binding_choices(query))
    print(f"acyclic binding choices: {len(choices)}")
    choice = choices[0]
    for alias, deps in sorted(choice.dependencies_over(query.aliases).items()):
        source = ", ".join(sorted(deps)) if deps else "user INPUT only"
        print(f"  {alias} is fed by: {source}")

    # ---- Phase 2: the four Fig. 9 topologies ------------------------------
    print()
    print("=== Phase 2: alternative topologies (Fig. 9) ===")
    plans = list(enumerate_topologies(query, {}, choice))
    print(f"{len(plans)} admissible topologies\n")
    for index, plan in enumerate(plans):
        print(f"--- topology ({chr(ord('a') + index)}) ---")
        print(plan.render())
        print()

    # ---- Phase 3: Fig. 10's fully instantiated plan -----------------------
    print("=== Phase 3: fetch factors (Fig. 10 instantiation) ===")
    print(f"fetch factors: {FIG10_FETCHES}  (5x20 movies, 5x5 theatres, 1 restaurant)")
    for index, plan in enumerate(plans):
        annotations = annotate(plan, query, fetches=FIG10_FETCHES)
        estimated = annotations.estimated_results(plan)
        calls = annotations.total_calls()
        print(
            f"topology ({chr(ord('a') + index)}): estimated results "
            f"{estimated:6.1f}, estimated calls {calls:6.1f}"
        )

    # ---- Cost comparison under every metric -------------------------------
    print()
    print("=== Cost of each topology under each metric (Fig. 10 fetches) ===")
    header = f"{'metric':18s}" + "".join(
        f"   ({chr(ord('a') + i)})   " for i in range(len(plans))
    )
    print(header)
    for name, metric in DEFAULT_METRICS.items():
        row = f"{name:18s}"
        for plan in plans:
            annotations = annotate(plan, query, fetches=FIG10_FETCHES)
            row += f" {metric.cost(plan, annotations):8.2f}"
        print(row)

    # ---- Execute the Fig. 10 plan ------------------------------------------
    print()
    print("=== Executing the Fig. 10 plan ===")
    fig10 = next(
        plan
        for plan in plans
        if plan.join_nodes()
        and getattr(
            plan.node(plan.children(plan.join_nodes()[0].node_id)[0]), "alias", None
        )
        == "R"
    )
    pool = ServicePool(registry, global_seed=10)
    result = execute_plan(
        fig10, query, pool, RUNNING_EXAMPLE_INPUTS, FIG10_FETCHES
    )
    print(
        f"actual: {result.total_calls} calls, {len(result.tuples)} combinations, "
        f"{result.execution_time:.2f} virtual seconds"
    )
    for node_id, stats in result.node_stats.items():
        print(
            f"  {node_id:10s} tin={stats.tin:5d} tout={stats.tout:5d} "
            f"calls={stats.calls:3d}"
        )


if __name__ == "__main__":
    main()
