"""Liquid session: the Section 3.2 user-interaction loop.

"A user can either be satisfied with the first k answers, or ask for more
results of the same query, or change the choice of input keywords and
resubmit the same query ..." — and "ranking functions can be altered
dynamically through the query interface".  This example drives all three
interactions over one optimized plan and reports the cumulative
service-call bill.

    python examples/liquid_session.py
"""

from repro import ServicePool, compile_query, optimize_query, parse_query
from repro.engine.liquid import LiquidQuerySession
from repro.services.marts import (
    RUNNING_EXAMPLE_INPUTS,
    RUNNING_EXAMPLE_QUERY,
    movie_night_registry,
)


def show(title, combos, session):
    print(f"--- {title} (total calls so far: {session.total_calls}) ---")
    for rank, combo in enumerate(combos[:5], start=1):
        print(
            f"  {rank}. score={combo.score:.3f}  "
            f"movie={combo.component('M').values['Title']}  "
            f"theatre={combo.component('T').values['Name']}"
        )
    if len(combos) > 5:
        print(f"  ... and {len(combos) - 5} more")
    print()


def main() -> None:
    registry = movie_night_registry()
    query = compile_query(parse_query(RUNNING_EXAMPLE_QUERY), registry)
    best = optimize_query(query)
    session = LiquidQuerySession(
        candidate=best,
        query=query,
        pool=ServicePool(registry, global_seed=13),
        inputs=dict(RUNNING_EXAMPLE_INPUTS),
    )

    # 1. First screen of results.
    show("initial run", session.run(), session)

    # 2. "Give me more": fetch factors double, earlier results stay put.
    show("after MORE", session.more(), session)
    print(f"fetch factors grew to: {session.fetch_factors}\n")

    # 3. Re-rank by movie quality only — zero new service calls.
    before = session.total_calls
    reranked = session.rerank({"M": 1.0, "T": 0.0, "R": 0.0})
    assert session.total_calls == before
    show("re-ranked by movie score (no new calls)", reranked, session)

    # 4. Change the genre keyword and resubmit.
    changed = dict(RUNNING_EXAMPLE_INPUTS)
    changed["INPUT1"] = "genre#6"
    show("resubmitted with a new genre", session.resubmit(changed), session)


if __name__ == "__main__":
    main()
