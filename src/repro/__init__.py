"""Search Computing reproduction: join methods and query optimization.

Public API (the names a downstream user needs):

>>> from repro import parse_query, compile_query, optimize_query, execute_plan
>>> from repro.services import movie_night_registry, RUNNING_EXAMPLE_QUERY

Subpackages:

* :mod:`repro.model` -- service marts, interfaces, scoring, tuples.
* :mod:`repro.query` -- query language, compilation, feasibility.
* :mod:`repro.plans` -- query-plan DAG model.
* :mod:`repro.joins` -- join search space, strategies, methods, top-k.
* :mod:`repro.core` -- cost metrics, annotation, branch-and-bound optimizer.
* :mod:`repro.engine` -- dataflow execution over simulated services.
* :mod:`repro.obs` -- tracing on virtual time, metrics, trace exporters,
  and the query-explain surface.
* :mod:`repro.serve` -- multi-query serving runtime: workload
  generation, cooperative scheduling, plan cache, cross-query sharing.
* :mod:`repro.durability` -- checkpoint/resume for sessions and the
  serving schedulers, plus the crash-injection harness; the
  record/replay cassette adapter lives in :mod:`repro.services.recorded`.
* :mod:`repro.services` -- simulated service substrate, example
  schemas, and the heterogeneous scenario packs.
* :mod:`repro.baselines` -- exhaustive, WSMS, and naive planners.
* :mod:`repro.stats` -- selectivity and cardinality estimation.
"""

from repro.core.annotate import annotate
from repro.core.cost import DEFAULT_METRICS
from repro.core.optimizer import (
    OptimizationOutcome,
    Optimizer,
    OptimizerConfig,
    PlanCandidate,
    optimize_query,
)
from repro.core.optimizer import plan_signature
from repro.engine.async_runner import (
    AsyncExecutionContext,
    AsyncPlanExecutor,
    run_plan_async,
)
from repro.engine.executor import (
    ExecutionResult,
    InvocationCache,
    execute_plan,
)
from repro.engine.liquid import LiquidQuerySession
from repro.engine.retry import Degradation, RetryPolicy
from repro.errors import SearchComputingError
from repro.model.registry import ServiceRegistry
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    build_explain,
    snapshot_run,
    write_trace,
)
from repro.durability import (
    CheckpointStore,
    checkpoint_session,
    restore_session,
    serve_workload_durable,
)
from repro.query.compile import CompiledQuery, compile_query
from repro.query.parser import parse_query
from repro.serve import (
    PlanCache,
    ServeConfig,
    ServeScheduler,
    SessionManager,
    WorkloadConfig,
    generate_workload,
    run_serving_benchmark,
)
from repro.services.simulated import FaultModel, FaultProfile, ServicePool

__version__ = "1.0.0"

__all__ = [
    "annotate",
    "DEFAULT_METRICS",
    "OptimizationOutcome",
    "Optimizer",
    "OptimizerConfig",
    "PlanCandidate",
    "optimize_query",
    "plan_signature",
    "AsyncExecutionContext",
    "AsyncPlanExecutor",
    "Degradation",
    "ExecutionResult",
    "InvocationCache",
    "LiquidQuerySession",
    "execute_plan",
    "run_plan_async",
    "FaultModel",
    "FaultProfile",
    "RetryPolicy",
    "SearchComputingError",
    "ServiceRegistry",
    "CompiledQuery",
    "compile_query",
    "parse_query",
    "ServicePool",
    "PlanCache",
    "ServeConfig",
    "ServeScheduler",
    "SessionManager",
    "WorkloadConfig",
    "generate_workload",
    "run_serving_benchmark",
    "CheckpointStore",
    "checkpoint_session",
    "restore_session",
    "serve_workload_durable",
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "build_explain",
    "snapshot_run",
    "write_trace",
    "__version__",
]
