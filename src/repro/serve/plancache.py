"""Plan cache: optimizer reuse across requests with the same signature.

The branch-and-bound optimizer is deterministic — the same compiled
query under the same cost metric always yields the same
:class:`~repro.core.optimizer.PlanCandidate` — so a serving runtime can
pay the search once per *query shape* and reuse the plan for every
request that differs only in its INPUT bindings.
:func:`~repro.core.optimizer.plan_signature` provides the key: it
normalises alias order, join direction, and INPUT references (name only,
never the bound value), so two requests instantiating the same template
with different keywords map to one cache entry.

Signatures do not identify the *registry* the interface names resolve
in, so callers scope keys by schema name (see
:meth:`PlanCache.key_for`).  Cached candidates are shared by reference:
plans and annotations are read-only to the executor, and sessions copy
the fetch vector before mutating it.

The cache is LRU-bounded (``max_size``; ``None`` keeps it unbounded, the
historical default): a long-lived server exposed to an open-ended
population of query shapes must not grow a plan per shape forever.
Eviction order is recency of *use*, so the hot templates of a skewed
workload stay resident; evictions are counted in the stats.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ExecutionError

from repro.core.optimizer import (
    Optimizer,
    OptimizerConfig,
    PlanCandidate,
    plan_signature,
)
from repro.errors import OptimizationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.compile import CompiledQuery

__all__ = ["PlanCache", "PlanCacheStats"]


@dataclass
class PlanCacheStats:
    """Hit/miss accounting for plan reuse."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> dict[str, float]:
        """Run-start baseline for :meth:`delta` (monotone counters only)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def delta(self, baseline: Mapping[str, float] | None) -> dict[str, float]:
        """This run's traffic only, differenced against a run-start snapshot.

        A cache shared across shards or successive serving runs
        accumulates *lifetime* totals on one stats object — the single
        source of truth.  Reports must not re-claim traffic that another
        run (or an earlier run on the same cache) already reported, so
        they snapshot at start and difference here; the hit rate is
        recomputed from the differenced counters.
        """
        base_hits = int(baseline.get("hits", 0)) if baseline else 0
        base_misses = int(baseline.get("misses", 0)) if baseline else 0
        base_evictions = int(baseline.get("evictions", 0)) if baseline else 0
        hits = self.hits - base_hits
        misses = self.misses - base_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions - base_evictions,
            "hit_rate": hits / total if total else 0.0,
        }


@dataclass
class PlanCache:
    """Normalised-signature → optimized-plan memo for a serving runtime.

    ``max_size`` bounds the number of resident plans with LRU eviction
    (both hits and fresh inserts refresh recency); ``None`` is
    unbounded.
    """

    max_size: int | None = None
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    _plans: "OrderedDict[tuple, PlanCandidate]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_size is not None and self.max_size <= 0:
            raise ExecutionError("plan cache max_size must be positive")

    @staticmethod
    def key_for(
        schema: str, query: "CompiledQuery", config: OptimizerConfig
    ) -> tuple:
        """Scope the plan signature by schema, cost metric, and kernel.

        The join-kernel knob participates via :func:`plan_signature`:
        toggling ``join_kernel`` between serving runs must never replay
        a candidate compiled for the other kernel (the candidate carries
        its resolved kernel into the executor).
        """
        return (
            schema,
            plan_signature(
                query,
                metric=config.metric,
                join_kernel=getattr(config, "join_kernel", "binary"),
            ),
        )

    def plan(
        self,
        schema: str,
        query: "CompiledQuery",
        config: OptimizerConfig | None = None,
    ) -> PlanCandidate:
        """The optimized plan for ``query``, searched at most once per key."""
        config = config or OptimizerConfig()
        key = self.key_for(schema, query, config)
        candidate = self._plans.get(key)
        if candidate is not None:
            self.stats.hits += 1
            self._plans.move_to_end(key)
            return candidate
        self.stats.misses += 1
        outcome = Optimizer(query, config).optimize()
        if outcome.best is None:
            raise OptimizationError("no feasible plan found")
        self._plans[key] = outcome.best
        if self.max_size is not None and len(self._plans) > self.max_size:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
        return outcome.best

    def clear(self) -> None:
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)
