"""Cooperative multi-query scheduler on one virtual timeline.

The serving runtime is a discrete-event simulation over a **server
clock**: requests arrive at workload-assigned virtual times, pass
admission control, and execute as *cooperative coroutines* — the
step-resumable generators of :meth:`~repro.engine.executor.PlanExecutor.steps`
— that pause before every chunk-granular service round trip.  The
scheduler owns the interleaving:

* **Admission control** — at most ``max_concurrency`` requests execute
  at once; excess arrivals wait in a bounded FIFO queue; a full queue
  rejects the arrival (backpressure to the client).  A process-global
  :class:`AdmissionController` can additionally cap the *total* across
  every scheduler shard of a sharded runtime.
* **Per-service rate limits** — each interface has a token bucket on
  virtual time.  A paused query about to call interface ``S`` (the
  yielded :class:`~repro.engine.executor.StepEvent` names it) resumes
  only once a token is available, so a hot service throttles *all* its
  callers without stalling queries bound elsewhere.
* **Follow-up parking** — a ``more``/``rerank``/``resubmit`` arriving
  before its target session finished parks until the target completes,
  then re-enters admission.
* **Per-session serialization** — interactions on one session mutate
  shared state (fetch factors, the ranking function, the cached result
  list), so a session executes at most one interaction at a time and
  its waiters are granted in *arrival order*.  Arrival order is a
  property of the workload, not of cache timing — which is what keeps
  per-request results byte-identical between shared and isolated modes
  even when completion times differ wildly.

Time composition: each session's pool clock accumulates only that
query's service latencies.  When a resumed step consumes ``Δ`` of pool
time, the job's next event lands at ``server_now + Δ`` — so concurrent
queries overlap on the server clock exactly as independent clients
would, while per-query accounting stays isolated.  Everything (arrival
order, tie-breaks, token grants) is a pure function of the workload and
data seeds: event-heap entries order by ``(time, shard index, sequence
number)``, so the interleaving is deterministic and seed-reproducible —
for one scheduler and for N shards merged onto one heap alike (see
:mod:`repro.serve.sharding`).

The scheduler never touches result contents: sharing caches changes
*when* and *how many* round trips happen, never what a query returns —
see DESIGN.md, "Why cross-query sharing is safe under the virtual
clock".

Sharding hooks: a standalone ``ServeScheduler`` owns all of its state.
A sharded runtime constructs N of them over *shared* pieces — one
:class:`SessionTable` (parking, serialization, outcomes), one
:class:`AdmissionController`, one event heap, and an arrival ``router``
that places (re-)arrivals on a session's home shard — while each shard
keeps its own clock, admission queue, token buckets, and sequence
counter.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.engine.events import VirtualClock
from repro.errors import ExecutionError, SearchComputingError
from repro.model.tuples import CompositeTuple
from repro.obs.metrics import MetricsRegistry
from repro.obs.serving import SloTracker, record_request_span
from repro.obs.tracer import NullTracer, Tracer, coerce_tracer
from repro.serve.sessions import SessionManager
from repro.serve.workload import Request

__all__ = [
    "AdmissionController",
    "ServeConfig",
    "ServeScheduler",
    "ServeReport",
    "SessionTable",
    "RequestOutcome",
]


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler knobs (admission, concurrency, backpressure).

    In a sharded runtime these are **per-shard** bounds; the optional
    process-global cap lives in :class:`AdmissionController`.
    """

    max_concurrency: int = 4
    queue_limit: int = 64
    #: Interface name -> max calls per virtual second (token bucket).
    service_rates: Mapping[str, float] = field(default_factory=dict)
    #: Rate applied to interfaces absent from ``service_rates``
    #: (``None`` leaves them unlimited).
    default_service_rate: float | None = None
    #: Bucket depth: how many calls a service absorbs back-to-back.
    service_burst: float = 4.0

    def __post_init__(self) -> None:
        if self.max_concurrency <= 0:
            raise ExecutionError("max_concurrency must be positive")
        if self.queue_limit < 0:
            raise ExecutionError("queue_limit cannot be negative")
        if self.service_burst < 1.0:
            raise ExecutionError("service_burst must be at least 1")
        for name, rate in self.service_rates.items():
            if rate <= 0:
                raise ExecutionError(f"service rate for {name!r} must be positive")
        if self.default_service_rate is not None and self.default_service_rate <= 0:
            raise ExecutionError("default_service_rate must be positive")


class SessionTable:
    """Session coordination state shared by every shard of one runtime.

    Parking, per-session serialization, and outcomes are *global*
    properties of the serving runtime — a follow-up must park until its
    target completes even when the two execute on different shards, and
    a stolen session must still never interleave with its own in-flight
    interaction.  Pulling this state out of the scheduler is what makes
    work stealing safe: whichever shard executes a request consults the
    same table.
    """

    def __init__(self) -> None:
        self.known_runs: set[int] = set()
        self.parked: dict[int, list[Request]] = {}
        self.busy_sessions: set[int] = set()
        self.session_waiters: dict[int, deque[Request]] = {}
        self.outcomes: dict[int, RequestOutcome] = {}
        #: request_id -> (virtual time, reason) a parked/serialized
        #: follow-up was woken; consumed into its outcome at start so
        #: the ``serve.park`` span survives checkpoints.
        self.wake_times: dict[int, tuple[float, str]] = {}


class AdmissionController:
    """Process-global cap on concurrently executing requests.

    ``limit=None`` (the default for a standalone scheduler) admits
    everything the per-shard bounds allow; a sharded runtime passes one
    controller to all shards so total concurrency — not just per-shard
    concurrency — stays bounded.
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit <= 0:
            raise ExecutionError("global admission limit must be positive")
        self.limit = limit
        self.active = 0
        self.peak = 0

    def try_acquire(self) -> bool:
        if self.limit is not None and self.active >= self.limit:
            return False
        self.active += 1
        if self.active > self.peak:
            self.peak = self.active
        return True

    def release(self) -> None:
        self.active -= 1


@dataclass
class _TokenBucket:
    """Token bucket on virtual time with FIFO reservations."""

    rate: float
    burst: float
    tokens: float = field(init=False)
    updated: float = 0.0

    def __post_init__(self) -> None:
        self.tokens = self.burst

    def grant(self, at: float) -> float:
        """Earliest time ≥ ``at`` a call may go out; claims the token.

        Reservations are granted in request order: a later reservation
        never jumps ahead of one already granted (``updated`` tracks the
        frontier the bucket state is valid at).
        """
        now = max(at, self.updated)
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return now
        wait = (1.0 - self.tokens) / self.rate
        self.tokens = 0.0
        self.updated = now + wait
        return now + wait


@dataclass
class _Job:
    """One admitted request executing cooperatively."""

    request: Request
    stepper: Iterator | None
    admitted_at: float
    started_at: float
    calls_before: int
    rate_wait: float = 0.0
    rate_hits: int = 0
    steps: int = 0
    result: list[CompositeTuple] | None = None
    error: str | None = None
    #: Whether the optimizer plan came from the plan cache (``None``
    #: when the request kind never consults it, e.g. ``rerank``).
    plan_cached: bool | None = None


@dataclass
class RequestOutcome:
    """What happened to one workload request."""

    request: Request
    status: str  # "completed" | "rejected" | "failed"
    finished_at: float = 0.0
    queue_wait: float = 0.0
    rate_wait: float = 0.0
    round_trips: int = 0
    steps: int = 0
    results: list[CompositeTuple] | None = None
    error: str | None = None
    #: Virtual time execution began (admission granted).
    started_at: float = 0.0
    #: Index of the shard that executed (or rejected) the request.
    shard: int = 0
    #: True when a work-stealing shard pulled this request from another
    #: shard's admission queue.
    stolen: bool = False
    #: Home shard the request was stolen from (set with ``stolen``).
    stolen_from: int | None = None
    #: Result digest, populated instead of ``results`` when the
    #: scheduler was built with ``digest_fn`` (bounded-memory serving).
    digest: str | None = None
    #: Times the token bucket delayed a step (``rate_wait`` totals the
    #: delay; this counts the delayed steps).
    rate_hits: int = 0
    #: Virtual time a parked/serialized follow-up was woken (0 when the
    #: request never parked) and why ("target" | "session").
    unparked_at: float = 0.0
    wake_reason: str | None = None
    #: Plan-cache verdict for ``run`` requests (``None`` otherwise).
    plan_cached: bool | None = None

    @property
    def latency(self) -> float:
        """Virtual time from arrival to completion (queueing included)."""
        return self.finished_at - self.request.arrival


@dataclass
class ServeReport:
    """Outcome of serving one workload."""

    outcomes: dict[int, RequestOutcome]
    makespan: float
    total_round_trips: int
    metrics: MetricsRegistry
    plan_cache_stats: dict[str, float] | None
    invocation_cache_stats: dict[str, float] | None
    #: Per-shard accounting (sharded runtimes only).
    shard_stats: list[dict[str, Any]] | None = None
    #: Number of scheduler shards that served the workload.
    num_shards: int = 1
    #: Peak process-global concurrency observed by the admission
    #: controller.
    admission_peak: int = 0
    #: SLO tracker the run observed completed latencies into (optional).
    slo: "SloTracker | None" = None

    def completed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes.values() if o.status == "completed"]

    def by_status(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for outcome in self.outcomes.values():
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def throughput(self) -> float:
        """Completed requests per virtual second of the whole run."""
        done = len(self.completed())
        return done / self.makespan if self.makespan > 0 else float(done)

    def latency_summary(self) -> dict[str, float]:
        """Latency percentiles of **completed** requests only.

        Failed requests are observed into the separate
        ``serve.latency_failed`` histogram (see :meth:`failed_latency_summary`):
        fail-fast errors would otherwise drag the percentiles of the
        result-delivering path; rejected requests never execute and have
        no service latency at all.
        """
        return self.metrics.histogram("serve.latency").summary()

    def failed_latency_summary(self) -> dict[str, float]:
        """Latency percentiles of requests that errored mid-execution."""
        return self.metrics.histogram("serve.latency_failed").summary()

    def summary(self) -> dict[str, Any]:
        """JSON-serialisable digest (what the benchmark report embeds)."""
        payload: dict[str, Any] = {
            "requests": len(self.outcomes),
            "by_status": self.by_status(),
            "makespan": self.makespan,
            "throughput": self.throughput,
            "total_round_trips": self.total_round_trips,
            "latency": self.latency_summary(),
            "latency_failed": self.failed_latency_summary(),
            "queue_wait": self.metrics.histogram("serve.queue_wait").summary(),
            "plan_cache": self.plan_cache_stats,
            "invocation_cache": self.invocation_cache_stats,
        }
        if self.slo is not None:
            payload["slo"] = self.slo.snapshot()
        if self.num_shards > 1 or self.shard_stats is not None:
            payload["num_shards"] = self.num_shards
            payload["admission_peak"] = self.admission_peak
            payload["shards"] = self.shard_stats
        return payload


def _stats_delta(
    current: Mapping[str, float], baseline: Mapping[str, float] | None
) -> dict[str, float]:
    """Per-run view of cumulative cache counters.

    Caches shared across schedulers (or serving runs) accumulate
    *lifetime* totals; a report must attribute to its own run only the
    traffic that happened during it — otherwise two runtimes sharing one
    cache double-report each other's hits.  Level-style entries
    (``entries``, ``hit_rate``) are reported as-is; monotone counters
    are differenced against the run-start snapshot.
    """
    if baseline is None:
        return dict(current)
    delta: dict[str, float] = {}
    for name, value in current.items():
        if name in ("entries", "hit_rate"):
            delta[name] = value
        else:
            delta[name] = value - baseline.get(name, 0)
    hits = delta.get("hits", 0)
    misses = delta.get("misses", 0)
    if "hit_rate" in delta:
        total = hits + misses
        delta["hit_rate"] = hits / total if total else 0.0
    return delta


def snapshot_cache_stats(sessions: SessionManager) -> tuple[
    dict[str, float] | None, dict[str, float] | None
]:
    """Run-start snapshot of the manager's plan/invocation cache counters."""
    plan = (
        sessions.plan_cache.stats.snapshot()
        if sessions.plan_cache is not None
        else None
    )
    invocation = (
        {
            "hits": sessions.invocation_cache.stats.hits,
            "misses": sessions.invocation_cache.stats.misses,
            "evictions": sessions.invocation_cache.stats.evictions,
            "entries": len(sessions.invocation_cache),
        }
        if sessions.invocation_cache is not None
        else None
    )
    return plan, invocation


def build_cache_stats(
    sessions: SessionManager,
    plan_baseline: dict[str, float] | None,
    invocation_baseline: dict[str, float] | None,
) -> tuple[dict[str, float] | None, dict[str, float] | None]:
    """Current cache stats as *this run's* deltas against the snapshots."""
    plan = (
        sessions.plan_cache.stats.delta(plan_baseline)
        if sessions.plan_cache is not None
        else None
    )
    _, invocation_now = snapshot_cache_stats(sessions)
    invocation = (
        _stats_delta(invocation_now, invocation_baseline)
        if invocation_now is not None
        else None
    )
    return plan, invocation


def record_cache_gauges(
    metrics: MetricsRegistry,
    plan_stats: Mapping[str, float] | None,
    invocation_stats: Mapping[str, float] | None,
) -> None:
    """Expose the run's cache hit rates as gauges (Prometheus surface)."""
    if plan_stats is not None:
        metrics.gauge("serve.plan_cache.hit_rate").set(
            plan_stats.get("hit_rate", 0.0)
        )
        metrics.gauge("serve.plan_cache.hits").set(plan_stats.get("hits", 0))
        metrics.gauge("serve.plan_cache.misses").set(
            plan_stats.get("misses", 0)
        )
    if invocation_stats is not None:
        hits = invocation_stats.get("hits", 0)
        misses = invocation_stats.get("misses", 0)
        total = hits + misses
        metrics.gauge("serve.invocation_cache.hit_rate").set(
            invocation_stats.get(
                "hit_rate", hits / total if total else 0.0
            )
        )
        metrics.gauge("serve.invocation_cache.hits").set(hits)
        metrics.gauge("serve.invocation_cache.misses").set(misses)


class ServeScheduler:
    """Discrete-event loop interleaving many liquid-query sessions.

    Standalone it is the complete single-timeline serving runtime of
    PR 4.  With the sharding hooks (``shard_index``, shared ``table`` /
    ``admission`` / ``events`` / ``router``) it is one shard of the
    :class:`~repro.serve.sharding.ShardedServeScheduler`, which owns the
    merged event loop.
    """

    def __init__(
        self,
        sessions: SessionManager,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        *,
        shard_index: int = 0,
        table: SessionTable | None = None,
        admission: AdmissionController | None = None,
        events: list | None = None,
        router: "Callable[[Request, float], None] | None" = None,
        digest_fn: "Callable[[Sequence[CompositeTuple]], str] | None" = None,
        emit_shard_metrics: bool = False,
        checkpointer: Any = None,
        slo: "SloTracker | None" = None,
        sample_metrics: bool = False,
    ) -> None:
        self.sessions = sessions
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = coerce_tracer(tracer)
        #: Optional latency-SLO tracker fed every completed request.
        self.slo = slo
        #: When on, queue depth and admission occupancy are sampled into
        #: bounded :class:`~repro.obs.metrics.TimeSeries` instruments on
        #: every arrival/finish.  Off by default — the no-op path must
        #: stay near-free.
        self.sample_metrics = sample_metrics
        self.clock = VirtualClock()
        self.shard_index = shard_index
        self.table = table if table is not None else SessionTable()
        self.admission = admission if admission is not None else AdmissionController()
        self.digest_fn = digest_fn
        #: Periodic durability hook (``repro.durability.serve.ServeCheckpointer``):
        #: notified after every terminal outcome; writes a checkpoint each
        #: N-th one.  ``None`` (the default) costs nothing.
        self.checkpointer = checkpointer
        self.emit_shard_metrics = emit_shard_metrics
        self._router = router
        self._seq = itertools.count()
        #: (time, shard_index, seq, action, payload) — possibly shared
        #: with sibling shards (the deterministic merged timeline).
        self._events: list[tuple[float, int, int, str, Any]] = (
            events if events is not None else []
        )
        self._queue: deque[Request] = deque()
        self._queued_at: dict[int, float] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self._active = 0
        # Concurrency-lane bookkeeping (tracing only): each executing
        # request holds the lowest free lane, which becomes the Chrome
        # ``tid`` so one shard's overlap renders as stacked thread rows.
        self._lanes: dict[int, int] = {}
        self._lane_free: list[int] = []
        self._lane_next = 0

    # -- event plumbing ------------------------------------------------------

    def _schedule(self, at: float, action: str, payload: Any) -> None:
        heapq.heappush(
            self._events, (at, self.shard_index, next(self._seq), action, payload)
        )

    def _route_arrival(self, request: Request, at: float) -> None:
        """Schedule an (re-)arrival on the session's home shard."""
        if self._router is not None:
            self._router(request, at)
        else:
            self._schedule(at, "arrival", request)

    def _shard_counter(self, name: str):
        """Per-shard counter, or ``None`` when shard metrics are off."""
        if not self.emit_shard_metrics:
            return None
        return self.metrics.counter(f"serve.shard.{self.shard_index}.{name}")

    def _inc_shard(self, name: str) -> None:
        counter = self._shard_counter(name)
        if counter is not None:
            counter.inc()

    def _bucket(self, interface: str) -> _TokenBucket | None:
        bucket = self._buckets.get(interface)
        if bucket is None:
            rate = self.config.service_rates.get(
                interface, self.config.default_service_rate
            )
            if rate is None:
                return None
            bucket = self._buckets[interface] = _TokenBucket(
                rate=rate, burst=self.config.service_burst
            )
        return bucket

    # -- main loop -----------------------------------------------------------

    def run(self, workload: Sequence[Request]) -> ServeReport:
        """Serve the workload to completion; returns the report."""
        # Union, not assignment: a durability resume pre-seeds the table
        # with pre-crash completed runs so surviving follow-ups can still
        # find their targets.
        self.table.known_runs |= {r.request_id for r in workload if r.kind == "run"}
        plan_base, invocation_base = snapshot_cache_stats(self.sessions)
        for request in sorted(
            workload, key=lambda r: (r.arrival, r.request_id)
        ):
            self._schedule(request.arrival, "arrival", request)
        while self._events:
            at, _, _, action, payload = heapq.heappop(self._events)
            self.clock.advance_to(at)
            self.dispatch(action, payload, at)
        # Follow-ups still parked at drain time targeted a run that never
        # completed (rejected or failed): account them as rejected.
        for parked in self.table.parked.values():
            for request in parked:
                self._reject(request, self.clock.now)
        self.table.parked.clear()
        plan_stats, invocation_stats = build_cache_stats(
            self.sessions, plan_base, invocation_base
        )
        record_cache_gauges(self.metrics, plan_stats, invocation_stats)
        self.metrics.gauge("serve.admission.peak").set(self.admission.peak)
        return ServeReport(
            outcomes=dict(sorted(self.table.outcomes.items())),
            makespan=self.clock.now,
            total_round_trips=self.sessions.total_round_trips(),
            metrics=self.metrics,
            plan_cache_stats=plan_stats,
            invocation_cache_stats=invocation_stats,
            admission_peak=self.admission.peak,
            slo=self.slo,
        )

    def dispatch(self, action: str, payload: Any, at: float) -> None:
        """Process one popped event (the shard-level transition table)."""
        if action == "arrival":
            self._on_arrival(payload, at)
        elif action == "resume":
            self._on_resume(payload, at)
        else:
            self._on_finish(payload, at)

    # -- transitions ---------------------------------------------------------

    def _on_arrival(self, request: Request, now: float) -> None:
        if request.target is not None:
            if request.target not in self.table.known_runs:
                self._reject(request, now)
                return
            target = self.table.outcomes.get(request.target)
            if target is None or target.status == "running":
                # Target still queued/executing: park until it finishes.
                self.table.parked.setdefault(request.target, []).append(request)
                return
            if target.status != "completed":
                self._reject(request, now)
                return
            if request.target in self.table.busy_sessions:
                # Another interaction holds the session: serialize.
                # Waiters drain in arrival order — a workload property,
                # identical across serving modes.
                self.table.session_waiters.setdefault(
                    request.target, deque()
                ).append(request)
                return
            self.table.busy_sessions.add(request.target)
        if self._active < self.config.max_concurrency and self.admission.try_acquire():
            self._start(request, now)
        elif len(self._queue) < self.config.queue_limit:
            self._queue.append(request)
            self._queued_at[request.request_id] = now
            if self.emit_shard_metrics:
                gauge = self.metrics.gauge(
                    f"serve.shard.{self.shard_index}.max_queue_depth"
                )
                if len(self._queue) > gauge.value:
                    gauge.set(len(self._queue))
        else:
            if request.target is not None:
                self._release_session(request.target, now)
            self._reject(request, now)
        if self.sample_metrics:
            self._sample_load(now)

    def _sample_load(self, now: float) -> None:
        """Sample queue depth / admission occupancy (``sample_metrics``)."""
        self.metrics.timeseries(
            f"serve.shard.{self.shard_index}.queue_depth"
        ).sample(now, len(self._queue))
        self.metrics.timeseries("serve.admission.active").sample(
            now, self.admission.active
        )

    def _start(self, request: Request, now: float) -> None:
        """Begin executing an admitted request (global slot already held)."""
        self._active += 1
        self._inc_shard("started")
        if self.tracer.enabled:
            if self._lane_free:
                lane = heapq.heappop(self._lane_free)
            else:
                lane = self._lane_next
                self._lane_next += 1
            self._lanes[request.request_id] = lane
        queue_wait = now - self._queued_at.pop(request.request_id, now)
        if request.kind == "rerank":
            # CPU-only: re-scores the cached result list, zero service
            # calls, zero virtual time — completes at its start instant.
            job = _Job(
                request=request,
                stepper=None,
                admitted_at=now,
                started_at=now,
                calls_before=0,
            )
            try:
                job.result = self.sessions.rerank(request)
            except SearchComputingError as exc:
                job.error = f"{type(exc).__name__}: {exc}"
            self._queue_wait_of(request, queue_wait, now)
            self._schedule(now, "finish", job)
            return
        plan_cache = self.sessions.plan_cache
        track_plan = plan_cache is not None and request.kind == "run"
        plan_hits_before = plan_cache.stats.hits if track_plan else 0
        try:
            stepper = self.sessions.stepper(request)
            pool = self.sessions.pool_for(request)
        except SearchComputingError as exc:
            job = _Job(
                request=request,
                stepper=None,
                admitted_at=now,
                started_at=now,
                calls_before=0,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._queue_wait_of(request, queue_wait, now)
            self._schedule(now, "finish", job)
            return
        job = _Job(
            request=request,
            stepper=stepper,
            admitted_at=now,
            started_at=now,
            calls_before=pool.log.total_calls(),
            plan_cached=(
                plan_cache.stats.hits > plan_hits_before if track_plan else None
            ),
        )
        self._queue_wait_of(request, queue_wait, now)
        self._schedule(now, "resume", job)

    def _queue_wait_of(self, request: Request, wait: float, now: float) -> None:
        self.metrics.histogram("serve.queue_wait").observe(wait)
        outcome = RequestOutcome(
            request=request,
            status="running",
            queue_wait=wait,
            started_at=now,
            shard=self.shard_index,
        )
        wake = self.table.wake_times.pop(request.request_id, None)
        if wake is not None:
            outcome.unparked_at, outcome.wake_reason = wake
        self.table.outcomes[request.request_id] = outcome

    def _on_resume(self, job: _Job, now: float) -> None:
        pool = self.sessions.pool_for(job.request)
        before = pool.clock.now
        assert job.stepper is not None
        try:
            event = next(job.stepper)
        except StopIteration as stop:
            job.result = stop.value
            self._schedule(now + (pool.clock.now - before), "finish", job)
            return
        except SearchComputingError as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            self._schedule(now + (pool.clock.now - before), "finish", job)
            return
        job.steps += 1
        ready = now + (pool.clock.now - before)
        bucket = self._bucket(event.interface)
        if bucket is not None:
            granted = bucket.grant(ready)
            if granted > ready:
                job.rate_wait += granted - ready
                job.rate_hits += 1
                self.metrics.counter("serve.rate_limited").inc()
            ready = granted
        self._schedule(ready, "resume", job)

    def _on_finish(self, job: _Job, now: float) -> None:
        self._active -= 1
        self.admission.release()
        request = job.request
        outcome = self.table.outcomes[request.request_id]
        outcome.finished_at = now
        outcome.rate_wait = job.rate_wait
        outcome.rate_hits = job.rate_hits
        outcome.steps = job.steps
        outcome.shard = self.shard_index
        outcome.plan_cached = job.plan_cached
        if job.error is not None:
            outcome.status = "failed"
            outcome.error = job.error
            self.metrics.counter("serve.failed").inc()
            self._inc_shard("failed")
            # Failed requests get their own histogram: ``serve.latency``
            # stays completed-only (see :meth:`ServeReport.latency_summary`)
            # so percentiles are not skewed by fail-fast errors, while the
            # time burned on failures stays observable.
            self.metrics.histogram("serve.latency_failed").observe(
                outcome.latency
            )
        else:
            outcome.status = "completed"
            if self.digest_fn is not None:
                # Bounded-memory serving: keep the equality witness, drop
                # the tuples (the session still holds its own copy).
                outcome.digest = self.digest_fn(job.result or ())
            else:
                outcome.results = job.result
            self.metrics.counter("serve.completed").inc()
            self._inc_shard("completed")
            self.metrics.histogram("serve.latency").observe(outcome.latency)
        if job.stepper is not None:
            pool = self.sessions.pool_for(request)
            outcome.round_trips = pool.log.total_calls() - job.calls_before
        self.metrics.counter(f"serve.kind.{request.kind}").inc()
        if self.slo is not None and outcome.status == "completed":
            self.slo.observe(outcome.latency, at=now)
        if self.tracer.enabled:
            lane = self._lanes.pop(request.request_id, None)
            if lane is not None:
                heapq.heappush(self._lane_free, lane)
            record_request_span(self.tracer, outcome, lane=lane)
        # Wake follow-ups parked on this request — on their home shard.
        for parked in self.table.parked.pop(request.request_id, ()):
            self.table.wake_times[parked.request_id] = (now, "target")
            self._route_arrival(parked, now)
        # A finished interaction frees its session for the next waiter.
        if request.target is not None:
            self._release_session(request.target, now)
        # Grant freed slots to the admission queue (FIFO).
        while (
            self._queue
            and self._active < self.config.max_concurrency
            and self.admission.try_acquire()
        ):
            self._start(self._queue.popleft(), now)
        if self.sample_metrics:
            self._sample_load(now)
        if self.checkpointer is not None:
            self.checkpointer.on_terminal(self, outcome)

    def _release_session(self, root_id: int, now: float) -> None:
        self.table.busy_sessions.discard(root_id)
        waiters = self.table.session_waiters.get(root_id)
        if waiters:
            waiter = waiters.popleft()
            self.table.wake_times[waiter.request_id] = (now, "session")
            self._route_arrival(waiter, now)

    def _reject(self, request: Request, now: float) -> None:
        # A parked follow-up rejected when its target fails (or at drain)
        # has been waiting since it arrived — that wait is queue context,
        # not free time, and dropping it would understate queueing under
        # admission pressure.
        queued_at = self._queued_at.pop(request.request_id, request.arrival)
        outcome = RequestOutcome(
            request=request,
            status="rejected",
            finished_at=now,
            queue_wait=max(0.0, now - queued_at),
            shard=self.shard_index,
        )
        wake = self.table.wake_times.pop(request.request_id, None)
        if wake is not None:
            outcome.unparked_at, outcome.wake_reason = wake
        self.table.outcomes[request.request_id] = outcome
        self.metrics.counter("serve.rejected").inc()
        self._inc_shard("rejected")
        # Every terminal outcome counts toward its kind — completed,
        # failed, *and* rejected — so per-kind totals reconcile with
        # ``by_status()`` under admission pressure.
        self.metrics.counter(f"serve.kind.{request.kind}").inc()
        if self.tracer.enabled:
            record_request_span(self.tracer, outcome)
        # A rejected run can never serve its follow-ups.
        for parked in self.table.parked.pop(request.request_id, ()):
            self._reject(parked, now)
