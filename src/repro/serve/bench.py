"""The serving benchmark: sharing vs. isolation, quantified.

For each load level (arrival rate), the *identical* seeded workload is
served twice:

* **isolated** — no plan cache, no cross-query invocation cache: every
  request optimizes its own plan and fetches its own chunks, as if each
  client ran the single-query engine alone;
* **shared** — one :class:`~repro.serve.plancache.PlanCache` and one
  cross-query :class:`~repro.engine.executor.InvocationCache` serve all
  requests: repeated query shapes reuse plans, identical service
  invocations coalesce into one set of round trips.

The report records, per level and mode, throughput, p50/p95/p99
virtual-time latency, total service round trips, and cache statistics —
plus a **result digest** per completed request.  The digests prove the
headline safety claim: sharing changes how much work is done and when,
but every request's result list is byte-identical in both modes (the
simulated substrate is deterministic per ``(data seed, interface,
bindings)``, so a cache hit returns exactly what a fresh fetch would).

``gates`` summarises the acceptance checks CI enforces: sharing must
never *increase* round trips, must strictly reduce them and improve p95
latency on the seeded workload, and results must match exactly.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, Sequence

from repro.engine.executor import InvocationCache
from repro.model.tuples import CompositeTuple
from repro.serve.plancache import PlanCache
from repro.serve.scheduler import ServeConfig, ServeReport, ServeScheduler
from repro.serve.sessions import SessionManager
from repro.serve.workload import (
    QueryTemplate,
    WorkloadConfig,
    default_templates,
    generate_workload,
)

__all__ = ["result_digest", "run_serving_benchmark", "serve_workload"]


def result_digest(tuples: Sequence[CompositeTuple]) -> str:
    """Stable content hash of a result list (order, components, scores).

    Scores are rounded to 12 decimals purely for printability; both
    serving modes compute them from identical component tuples, so the
    digest is an exact equality witness.
    """
    parts: list[str] = []
    for comp in tuples:
        for alias in sorted(comp.components):
            values = comp.component(alias).values
            parts.append(
                alias
                + "|"
                + "|".join(f"{k}={values[k]!r}" for k in sorted(values))
            )
        parts.append(f"score={round(comp.score, 12)!r}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def serve_workload(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    shared: bool,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    queue_limit: int = 10_000,
    default_service_rate: float | None = 4.0,
    templates: Sequence[QueryTemplate] | None = None,
) -> tuple[ServeReport, dict[int, str]]:
    """Serve one seeded workload; returns the report and per-request digests.

    The benchmark's queue limit is effectively unbounded so both modes
    complete every request — rejection behaviour is exercised by unit
    tests, while here the modes must stay per-request comparable.
    """
    templates = tuple(templates or default_templates())
    workload = generate_workload(
        templates,
        WorkloadConfig(
            num_requests=num_requests,
            rate=rate,
            skew=skew,
            seed=seed,
            followup_fraction=followup_fraction,
        ),
    )
    sessions = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        plan_cache=PlanCache() if shared else None,
        invocation_cache=(
            InvocationCache(max_size=None) if shared else None
        ),
    )
    scheduler = ServeScheduler(
        sessions,
        ServeConfig(
            max_concurrency=max_concurrency,
            queue_limit=queue_limit,
            default_service_rate=default_service_rate,
        ),
    )
    report = scheduler.run(workload)
    digests = {
        outcome.request.request_id: result_digest(outcome.results or ())
        for outcome in report.completed()
    }
    return report, digests


def _mode_summary(report: ServeReport) -> dict[str, Any]:
    summary = report.summary()
    latency = summary["latency"]
    summary["latency_p50"] = latency.get("p50", 0.0)
    summary["latency_p95"] = latency.get("p95", 0.0)
    summary["latency_p99"] = latency.get("p99", 0.0)
    return summary


def run_serving_benchmark(
    *,
    load_levels: Sequence[float] = (0.5, 2.0),
    num_requests: int = 40,
    seed: int = 2009,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    default_service_rate: float | None = 4.0,
    templates: Sequence[QueryTemplate] | None = None,
) -> dict[str, Any]:
    """The full shared-vs-isolated comparison across load levels."""
    levels: list[dict[str, Any]] = []
    all_identical = True
    never_more_calls = True
    strictly_fewer_calls = True
    p95_improves = True
    for rate in load_levels:
        per_mode: dict[str, ServeReport] = {}
        digests: dict[str, Mapping[int, str]] = {}
        for mode, shared in (("isolated", False), ("shared", True)):
            report, mode_digests = serve_workload(
                rate=rate,
                num_requests=num_requests,
                seed=seed,
                shared=shared,
                skew=skew,
                followup_fraction=followup_fraction,
                max_concurrency=max_concurrency,
                default_service_rate=default_service_rate,
                templates=templates,
            )
            per_mode[mode] = report
            digests[mode] = mode_digests
        identical = digests["isolated"] == digests["shared"]
        all_identical = all_identical and identical
        isolated, shared_report = per_mode["isolated"], per_mode["shared"]
        calls_isolated = isolated.total_round_trips
        calls_shared = shared_report.total_round_trips
        never_more_calls = never_more_calls and calls_shared <= calls_isolated
        strictly_fewer_calls = (
            strictly_fewer_calls and calls_shared < calls_isolated
        )
        p95_isolated = isolated.latency_summary().get("p95", 0.0)
        p95_shared = shared_report.latency_summary().get("p95", 0.0)
        p95_improves = p95_improves and p95_shared < p95_isolated
        levels.append(
            {
                "rate": rate,
                "isolated": _mode_summary(isolated),
                "shared": _mode_summary(shared_report),
                "results_identical": identical,
                "round_trip_reduction": (
                    1.0 - calls_shared / calls_isolated
                    if calls_isolated
                    else 0.0
                ),
                "p95_latency_isolated": p95_isolated,
                "p95_latency_shared": p95_shared,
            }
        )
    return {
        "benchmark": "serving",
        "seed": seed,
        "num_requests": num_requests,
        "skew": skew,
        "followup_fraction": followup_fraction,
        "max_concurrency": max_concurrency,
        "default_service_rate": default_service_rate,
        "load_levels": list(load_levels),
        "levels": levels,
        "gates": {
            "results_identical": all_identical,
            "shared_never_more_round_trips": never_more_calls,
            "shared_strictly_fewer_round_trips": strictly_fewer_calls,
            "shared_improves_p95_latency": p95_improves,
        },
    }
