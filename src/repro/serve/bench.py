"""The serving benchmark: sharing vs. isolation, quantified.

For each load level (arrival rate), the *identical* seeded workload is
served twice:

* **isolated** — no plan cache, no cross-query invocation cache: every
  request optimizes its own plan and fetches its own chunks, as if each
  client ran the single-query engine alone;
* **shared** — one :class:`~repro.serve.plancache.PlanCache` and one
  cross-query :class:`~repro.engine.executor.InvocationCache` serve all
  requests: repeated query shapes reuse plans, identical service
  invocations coalesce into one set of round trips.

The report records, per level and mode, throughput, p50/p95/p99
virtual-time latency, total service round trips, and cache statistics —
plus a **result digest** per completed request.  The digests prove the
headline safety claim: sharing changes how much work is done and when,
but every request's result list is byte-identical in both modes (the
simulated substrate is deterministic per ``(data seed, interface,
bindings)``, so a cache hit returns exactly what a fresh fetch would).

``gates`` summarises the acceptance checks CI enforces: sharing must
never *increase* round trips, must strictly reduce them and improve p95
latency on the seeded workload, and results must match exactly.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, Sequence

from repro.core.optimizer import OptimizerConfig
from repro.engine.executor import InvocationCache
from repro.model.tuples import CompositeTuple
from repro.obs.serving import SloTracker, serving_metrics_summary
from repro.serve.plancache import PlanCache
from repro.serve.scheduler import ServeConfig, ServeReport, ServeScheduler
from repro.serve.sessions import SessionManager
from repro.serve.workload import (
    QueryTemplate,
    WorkloadConfig,
    default_templates,
    generate_workload,
)

__all__ = [
    "combined_digest",
    "result_digest",
    "run_serving_benchmark",
    "run_sharding_benchmark",
    "serve_workload",
]


def result_digest(tuples: Sequence[CompositeTuple]) -> str:
    """Stable content hash of a result list (order, components, scores).

    Scores are rounded to 12 decimals purely for printability; both
    serving modes compute them from identical component tuples, so the
    digest is an exact equality witness.
    """
    parts: list[str] = []
    for comp in tuples:
        for alias in sorted(comp.components):
            values = comp.component(alias).values
            parts.append(
                alias
                + "|"
                + "|".join(f"{k}={values[k]!r}" for k in sorted(values))
            )
        parts.append(f"score={round(comp.score, 12)!r}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def serve_workload(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    shared: bool,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    queue_limit: int = 10_000,
    default_service_rate: float | None = 4.0,
    plan_cache_size: int | None = None,
    templates: Sequence[QueryTemplate] | None = None,
    tracer: Any = None,
    slo: "SloTracker | None" = None,
    sample_metrics: bool = False,
    join_kernel: str = "binary",
) -> tuple[ServeReport, dict[int, str]]:
    """Serve one seeded workload; returns the report and per-request digests.

    The benchmark's queue limit is effectively unbounded so both modes
    complete every request — rejection behaviour is exercised by unit
    tests, while here the modes must stay per-request comparable.

    ``tracer``/``slo``/``sample_metrics`` thread the observability layer
    through: request span trees on the virtual clock, SLO latency
    accounting, and sampled queue-depth/occupancy time series.  All
    default off, and none of them may perturb results — the digest
    equality gates in :mod:`tests.test_serve_observability` enforce it.
    """
    templates = tuple(templates or default_templates())
    workload = generate_workload(
        templates,
        WorkloadConfig(
            num_requests=num_requests,
            rate=rate,
            skew=skew,
            seed=seed,
            followup_fraction=followup_fraction,
        ),
    )
    sessions = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        optimizer_config=OptimizerConfig(join_kernel=join_kernel),
        plan_cache=PlanCache(max_size=plan_cache_size) if shared else None,
        invocation_cache=(
            InvocationCache(max_size=None) if shared else None
        ),
    )
    scheduler = ServeScheduler(
        sessions,
        ServeConfig(
            max_concurrency=max_concurrency,
            queue_limit=queue_limit,
            default_service_rate=default_service_rate,
        ),
        tracer=tracer,
        emit_shard_metrics=True,
        slo=slo,
        sample_metrics=sample_metrics,
    )
    report = scheduler.run(workload)
    digests = {
        outcome.request.request_id: result_digest(outcome.results or ())
        for outcome in report.completed()
    }
    return report, digests


def combined_digest(digests: Mapping[int, str]) -> str:
    """One hash over a whole run's per-request digests.

    Sorted by request id, so it is invariant to completion order — the
    compact byte-identity witness the sharding sweep compares across
    shard counts (100k per-request digests would bloat the artifact).
    """
    hasher = hashlib.sha256()
    for request_id in sorted(digests):
        hasher.update(f"{request_id}:{digests[request_id]}\n".encode())
    return hasher.hexdigest()


def _mode_summary(report: ServeReport) -> dict[str, Any]:
    summary = report.summary()
    latency = summary["latency"]
    summary["latency_p50"] = latency.get("p50", 0.0)
    summary["latency_p95"] = latency.get("p95", 0.0)
    summary["latency_p99"] = latency.get("p99", 0.0)
    summary["serving_metrics"] = serving_metrics_summary(report)
    return summary


def run_serving_benchmark(
    *,
    load_levels: Sequence[float] = (0.5, 2.0),
    num_requests: int = 40,
    seed: int = 2009,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    default_service_rate: float | None = 4.0,
    plan_cache_size: int | None = None,
    templates: Sequence[QueryTemplate] | None = None,
    join_kernel: str = "binary",
) -> dict[str, Any]:
    """The full shared-vs-isolated comparison across load levels."""
    levels: list[dict[str, Any]] = []
    all_identical = True
    never_more_calls = True
    strictly_fewer_calls = True
    p95_improves = True
    for rate in load_levels:
        per_mode: dict[str, ServeReport] = {}
        digests: dict[str, Mapping[int, str]] = {}
        for mode, shared in (("isolated", False), ("shared", True)):
            report, mode_digests = serve_workload(
                rate=rate,
                num_requests=num_requests,
                seed=seed,
                shared=shared,
                skew=skew,
                followup_fraction=followup_fraction,
                max_concurrency=max_concurrency,
                default_service_rate=default_service_rate,
                plan_cache_size=plan_cache_size,
                templates=templates,
                join_kernel=join_kernel,
            )
            per_mode[mode] = report
            digests[mode] = mode_digests
        identical = digests["isolated"] == digests["shared"]
        all_identical = all_identical and identical
        isolated, shared_report = per_mode["isolated"], per_mode["shared"]
        calls_isolated = isolated.total_round_trips
        calls_shared = shared_report.total_round_trips
        never_more_calls = never_more_calls and calls_shared <= calls_isolated
        strictly_fewer_calls = (
            strictly_fewer_calls and calls_shared < calls_isolated
        )
        p95_isolated = isolated.latency_summary().get("p95", 0.0)
        p95_shared = shared_report.latency_summary().get("p95", 0.0)
        p95_improves = p95_improves and p95_shared < p95_isolated
        levels.append(
            {
                "rate": rate,
                "isolated": _mode_summary(isolated),
                "shared": _mode_summary(shared_report),
                "results_identical": identical,
                "round_trip_reduction": (
                    1.0 - calls_shared / calls_isolated
                    if calls_isolated
                    else 0.0
                ),
                "p95_latency_isolated": p95_isolated,
                "p95_latency_shared": p95_shared,
            }
        )
    return {
        "benchmark": "serving",
        "seed": seed,
        "num_requests": num_requests,
        "skew": skew,
        "followup_fraction": followup_fraction,
        "max_concurrency": max_concurrency,
        "default_service_rate": default_service_rate,
        "join_kernel": join_kernel,
        "load_levels": list(load_levels),
        "levels": levels,
        "gates": {
            "results_identical": all_identical,
            "shared_never_more_round_trips": never_more_calls,
            "shared_strictly_fewer_round_trips": strictly_fewer_calls,
            "shared_improves_p95_latency": p95_improves,
        },
    }


def run_sharding_benchmark(
    *,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    num_requests: int = 100_000,
    rate: float = 4.0,
    seed: int = 2009,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    default_service_rate: float | None = 4.0,
    session_space: int = 1_000_000,
    steal: bool = True,
    include_no_steal: bool = False,
    param_scale: int = 2,
    templates: Sequence[QueryTemplate] | None = None,
) -> dict[str, Any]:
    """The shard-count sweep behind ``BENCH_sharding.json``.

    One seeded workload (``num_requests`` over a ``session_space``-sized
    Zipf-skewed session universe) is served by the sharded runtime at
    each shard count with the shared caches on, plus a 1-shard
    **isolated** baseline (no plan cache, no invocation cache — every
    request fetches alone, the PR 4 comparison point for round trips).
    Per-shard ``max_concurrency`` is fixed, so the shard count *is* the
    worker count being scaled.

    Gates:

    * ``digests_identical`` — every configuration's combined result
      digest is byte-identical (scaling never changes results);
    * ``p95_improves_with_shards`` — p95 strictly decreases 1→max shards
      (what the scaled-down CI sweep enforces);
    * ``p95_superlinear_at_4`` — p95(1 shard)/p95(4 shards) > 4: under
      skew the shared cache turns the extra workers' capacity into
      more-than-proportional latency relief (queueing collapses while
      warm requests bypass service rate limits entirely);
    * ``round_trips_superlinear_at_4`` — round trips(isolated 1-shard) /
      round trips(shared 4-shard) > 4: cache sharing compounds with
      parallelism vs. the each-request-alone baseline.
    """
    from repro.serve.sharding import serve_workload_sharded

    # Scaled parameter universes keep the workload load-bearing at
    # population scale: the Zipf head stays cache-resident while the
    # tail sustains real service traffic, so per-shard capacity is
    # actually contended and the latency gates can develop (unscaled,
    # ~100 distinct bindings go fully resident and p95 collapses to 0
    # at every shard count).
    templates = tuple(templates or default_templates(param_scale))
    workload = generate_workload(
        templates,
        WorkloadConfig(
            num_requests=num_requests,
            rate=rate,
            skew=skew,
            seed=seed,
            followup_fraction=followup_fraction,
            session_space=max(session_space, num_requests),
        ),
    )
    distinct_sessions = len(
        {r.session_id for r in workload if r.session_id is not None}
    )

    configs: list[dict[str, Any]] = []
    for count in shard_counts:
        configs.append(
            {"label": f"shared-{count}", "num_shards": count,
             "cache_mode": "shared", "steal": steal}
        )
        if include_no_steal and count > 1:
            configs.append(
                {"label": f"shared-{count}-nosteal", "num_shards": count,
                 "cache_mode": "shared", "steal": False}
            )
    configs.append(
        {"label": "isolated-1", "num_shards": 1,
         "cache_mode": "isolated", "steal": False}
    )

    runs: list[dict[str, Any]] = []
    by_label: dict[str, dict[str, Any]] = {}
    for config in configs:
        report, digests = serve_workload_sharded(
            rate=rate,
            num_requests=num_requests,
            seed=seed,
            num_shards=config["num_shards"],
            cache_mode=config["cache_mode"],
            steal=config["steal"],
            skew=skew,
            followup_fraction=followup_fraction,
            max_concurrency=max_concurrency,
            default_service_rate=default_service_rate,
            session_space=session_space,
            templates=templates,
            workload=workload,
            digest_fn=result_digest,
        )
        latency = report.latency_summary()
        steals = report.metrics.counters.get("serve.steals")
        entry = {
            **config,
            "digest": combined_digest(digests),
            "completed": len(digests),
            "by_status": report.by_status(),
            "makespan": report.makespan,
            "throughput": report.throughput,
            "total_round_trips": report.total_round_trips,
            "latency_p50": latency.get("p50", 0.0),
            "latency_p95": latency.get("p95", 0.0),
            "latency_p99": latency.get("p99", 0.0),
            "queue_wait": report.metrics.histogram("serve.queue_wait").summary(),
            "steals": int(steals.value) if steals is not None else 0,
            "admission_peak": report.admission_peak,
            "plan_cache": report.plan_cache_stats,
            "invocation_cache": report.invocation_cache_stats,
            "shards": report.shard_stats,
            "serving_metrics": serving_metrics_summary(report),
        }
        runs.append(entry)
        by_label[entry["label"]] = entry

    sweep_labels = [f"shared-{count}" for count in shard_counts]
    digests_identical = (
        len({run["digest"] for run in runs}) == 1
        and all(run["completed"] == runs[0]["completed"] for run in runs)
    )
    p95_by_count = {
        count: by_label[f"shared-{count}"]["latency_p95"]
        for count in shard_counts
    }
    ordered = sorted(shard_counts)
    p95_improves = all(
        p95_by_count[b] < p95_by_count[a]
        for a, b in zip(ordered, ordered[1:])
    )
    ratios: dict[str, float] = {}
    gates: dict[str, bool] = {
        "digests_identical": digests_identical,
        "p95_improves_with_shards": p95_improves,
    }
    if 1 in shard_counts and 4 in shard_counts:
        base_p95 = p95_by_count[1]
        p95_speedup = base_p95 / p95_by_count[4] if p95_by_count[4] else 0.0
        rt_isolated = by_label["isolated-1"]["total_round_trips"]
        rt_shared4 = by_label["shared-4"]["total_round_trips"]
        rt_reduction = rt_isolated / rt_shared4 if rt_shared4 else 0.0
        ratios["p95_speedup_4_vs_1"] = p95_speedup
        ratios["round_trip_reduction_4_vs_isolated_1"] = rt_reduction
        gates["p95_superlinear_at_4"] = p95_speedup > 4.0
        gates["round_trips_superlinear_at_4"] = rt_reduction > 4.0
    return {
        "benchmark": "sharding",
        "seed": seed,
        "num_requests": num_requests,
        "rate": rate,
        "skew": skew,
        "followup_fraction": followup_fraction,
        "max_concurrency": max_concurrency,
        "default_service_rate": default_service_rate,
        "session_space": session_space,
        "param_scale": param_scale,
        "distinct_sessions": distinct_sessions,
        "shard_counts": list(shard_counts),
        "sweep": sweep_labels,
        "runs": runs,
        "ratios": ratios,
        "gates": gates,
    }
