"""Sharded serving: N scheduler shards over one deterministic timeline.

One :class:`~repro.serve.scheduler.ServeScheduler` loop is the PR 4
runtime; this module scales it out.  Sessions are partitioned across
``N`` shards by a **consistent-hash ring** on session id
(:class:`HashRing`), each shard running its own discrete-event loop —
its own virtual clock, admission queue, concurrency bound, and token
buckets — while four pieces stay process-global:

* the :class:`~repro.serve.scheduler.SessionTable` (parking,
  per-session serialization, outcomes): a follow-up parks until its
  target finishes even across shards, and arrival-order waiter grants
  are a property of the runtime, not of any one shard;
* the :class:`~repro.serve.scheduler.AdmissionController`, optionally
  capping *total* in-flight requests across all shards — a slot freed
  on one shard is re-granted across **every** shard's queue by the
  merged loop's grant pass, so liveness never depends on stealing;
* the shared :class:`~repro.serve.plancache.PlanCache`;
* the cross-shard :class:`ShardedInvocationCache` — one LRU-bounded
  memo, global hit/miss counters as the single source of truth plus
  per-shard attribution views that reconcile exactly to the totals.

**Deterministic timeline merge.**  All shards push onto *one* event
heap whose entries order by ``(time, shard index, sequence)``; the
merged loop pops globally, advances only the owning shard's clock, and
dispatches on that shard.  The interleaving is therefore a pure
function of the workload — replaying a seed gives the identical merged
report — and with ``N=1`` the loop is instruction-for-instruction the
plain scheduler's.  Result *digests* are identical across shard counts
for a stronger reason: per-session interaction order equals arrival
order in every mode (global session table), and the simulated substrate
derives results from ``(data seed, interface, bindings)`` alone, so
*when* and *where* a request executes can never change *what* it
returns (DESIGN.md, "Sharded serving").

**Work stealing.**  After every dispatched event the merged loop runs a
steal pass: any shard with a free execution slot and an empty local
queue pulls the oldest queued request from the most-loaded shard's
queue and starts it immediately.  Stealing whole *parked sessions* is
safe because session gating happened at arrival on the home shard — a
queued request already holds its session's busy flag (follow-ups) or
owns a fresh session nobody else may touch (runs), so a stolen session
can never interleave with its own in-flight interaction.  Thief and
victim selection is deterministic (shard-index order, longest queue
first), preserving replayability.

**Parallel path.**  :func:`serve_workload_parallel` runs the ring's
shard subsets in real worker processes (virtual backend per worker, or
the PR 5 asyncio backend) — subsets are self-contained because a
follow-up shares its target's session id and therefore its home shard.
"""

from __future__ import annotations

import hashlib
import heapq
from bisect import bisect_right
from typing import Any, Callable, Mapping, Sequence

from repro.core.optimizer import OptimizerConfig
from repro.engine.executor import InvocationCache, InvocationCacheStats
from repro.errors import ExecutionError
from repro.model.tuples import CompositeTuple
from repro.obs.metrics import MetricsRegistry
from repro.obs.serving import SloTracker
from repro.obs.tracer import NullTracer, Tracer, coerce_tracer
from repro.serve.plancache import PlanCache
from repro.serve.scheduler import (
    AdmissionController,
    ServeConfig,
    ServeReport,
    ServeScheduler,
    SessionTable,
    build_cache_stats,
    record_cache_gauges,
    snapshot_cache_stats,
)
from repro.serve.sessions import SessionManager
from repro.serve.workload import (
    QueryTemplate,
    Request,
    WorkloadConfig,
    default_templates,
    generate_workload,
    session_key,
)

__all__ = [
    "HashRing",
    "ShardedInvocationCache",
    "ShardedServeScheduler",
    "serve_workload_sharded",
    "serve_workload_parallel",
    "partition_workload",
]


# -- consistent hashing -------------------------------------------------------


class HashRing:
    """Consistent-hash ring mapping session ids to shard indices.

    Each shard owns ``vnodes`` points on a 64-bit ring (blake2b of
    ``"shard:vnode"``); a session id hashes to a point and belongs to
    the first shard point at or after it (wrapping).  Because a shard's
    points are a function of its index alone, growing the ring from
    ``N`` to ``N+1`` shards leaves every existing point in place — only
    keys landing in the arcs claimed by the new shard's points move,
    ~``1/(N+1)`` of the keyspace, instead of the wholesale reshuffle a
    modulo partition would cause.  256 vnodes keep per-shard load within
    ~±10% of the mean up to 16 shards (the property tests pin this).
    """

    def __init__(self, num_shards: int, *, vnodes: int = 256) -> None:
        if num_shards <= 0:
            raise ExecutionError("num_shards must be positive")
        if vnodes <= 0:
            raise ExecutionError("vnodes must be positive")
        self.num_shards = num_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                points.append((self._point(f"shard:{shard}:vnode:{vnode}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _point(label: str) -> int:
        return int.from_bytes(
            hashlib.blake2b(label.encode(), digest_size=8).digest(), "big"
        )

    def shard_for(self, session_id: int) -> int:
        """The shard owning ``session_id`` (deterministic, stable)."""
        point = self._point(f"session:{session_id}")
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def shard_of(self, request: Request) -> int:
        return self.shard_for(session_key(request))


# -- shared invocation cache with per-shard attribution -----------------------


class ShardedInvocationCache(InvocationCache):
    """One cross-shard invocation memo with per-shard attribution views.

    The inherited ``stats`` remain the **single source of truth**: every
    lookup is counted exactly once there, whichever shard (or
    single-flight-coalesced waiter) issued it.  ``shard_stats`` only
    *attributes* each of those counts to the shard whose event was being
    dispatched (``current_shard``, set by the merged loop before every
    dispatch), so the per-shard views always sum to the global totals —
    the reconciliation the regression tests pin down.

    Coalescing: the merged loop dispatches one event at a time, so a
    *completed* fetch of a key serves every later lookup — one put, many
    hits, and each lookup counted exactly once (never double: the global
    counters increment in :meth:`InvocationCache.get` alone, the shard
    views merely attribute those same increments).  Because execution is
    chunk-granular, a second session may begin fetching a key whose
    multi-chunk fetch is still in flight; both are honest misses and the
    later ``put`` idempotently overwrites with the identical value (the
    substrate is deterministic per key).  The asyncio parallel path
    closes even that window via
    :class:`~repro.engine.async_runner.AsyncExecutionContext`'s real
    single-flight coalescing.
    """

    def __init__(self, num_shards: int, max_size: int | None = 1024) -> None:
        super().__init__(max_size=max_size)
        self.shard_stats = [InvocationCacheStats() for _ in range(num_shards)]
        self.current_shard = 0

    def get(
        self, key: tuple, stats: InvocationCacheStats | None = None
    ) -> tuple[list, bool] | None:
        entry = super().get(key, stats)
        view = self.shard_stats[self.current_shard]
        if entry is not None:
            view.hits += 1
        else:
            view.misses += 1
        return entry

    def put(
        self,
        key: tuple,
        value: tuple[list, bool],
        stats: InvocationCacheStats | None = None,
    ) -> None:
        before = self.stats.evictions
        super().put(key, value, stats)
        self.shard_stats[self.current_shard].evictions += (
            self.stats.evictions - before
        )


# -- the sharded scheduler ----------------------------------------------------


class ShardedServeScheduler:
    """N per-session-partitioned scheduler shards on one merged timeline."""

    def __init__(
        self,
        sessions: SessionManager,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        *,
        num_shards: int,
        ring: HashRing | None = None,
        steal: bool = True,
        global_concurrency: int | None = None,
        digest_fn: "Callable[[Sequence[CompositeTuple]], str] | None" = None,
        table: SessionTable | None = None,
        checkpointer: Any = None,
        slo: "SloTracker | None" = None,
        sample_metrics: bool = False,
    ) -> None:
        self.sessions = sessions
        self.config = config or ServeConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = coerce_tracer(tracer)
        self.slo = slo
        self.ring = ring if ring is not None else HashRing(num_shards)
        self.steal = steal
        # A durability resume passes a pre-seeded table (pre-crash
        # outcomes + known runs); fresh runs build their own.
        self.table = table if table is not None else SessionTable()
        self.admission = AdmissionController(global_concurrency)
        #: The merged timeline: (time, shard_index, seq, action, payload).
        self._events: list[tuple[float, int, int, str, Any]] = []
        self.shards = [
            ServeScheduler(
                sessions,
                self.config,
                self.metrics,
                tracer,
                shard_index=index,
                table=self.table,
                admission=self.admission,
                events=self._events,
                router=self._route,
                digest_fn=digest_fn,
                emit_shard_metrics=True,
                checkpointer=checkpointer,
                slo=slo,
                sample_metrics=sample_metrics,
            )
            for index in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _route(self, request: Request, at: float) -> None:
        """Schedule an arrival on the session's home shard."""
        self.shards[self.ring.shard_of(request)]._schedule(at, "arrival", request)

    def _set_cache_shard(self, index: int) -> None:
        cache = self.sessions.invocation_cache
        if isinstance(cache, ShardedInvocationCache):
            cache.current_shard = index

    def run(self, workload: Sequence[Request]) -> ServeReport:
        """Serve the workload across all shards; returns the merged report."""
        # Union (see ServeScheduler.run): a durability resume pre-seeds
        # pre-crash completed runs into the table.
        self.table.known_runs |= {r.request_id for r in workload if r.kind == "run"}
        plan_base, invocation_base = snapshot_cache_stats(self.sessions)
        for request in sorted(workload, key=lambda r: (r.arrival, r.request_id)):
            self._route(request, request.arrival)
        while self._events:
            at, shard_index, _, action, payload = heapq.heappop(self._events)
            shard = self.shards[shard_index]
            shard.clock.advance_to(at)
            self._set_cache_shard(shard_index)
            shard.dispatch(action, payload, at)
            if self.admission.limit is not None:
                self._grant_pass(at)
            if self.steal:
                self._steal_pass(at)
        for shard in self.shards:
            if shard._queue:
                raise ExecutionError(
                    f"shard {shard.shard_index} drained with "
                    f"{len(shard._queue)} requests still queued — "
                    "admission grant pass failed to wake them"
                )
        makespan = max(shard.clock.now for shard in self.shards)
        # Follow-ups still parked at drain time targeted a run that never
        # completed: reject them on their home shard.
        for parked in self.table.parked.values():
            for request in parked:
                self.shards[self.ring.shard_of(request)]._reject(request, makespan)
        self.table.parked.clear()
        missing = [
            request.request_id
            for request in workload
            if request.request_id not in self.table.outcomes
        ]
        if missing:
            raise ExecutionError(
                f"{len(missing)} workload requests drained without an "
                f"outcome (first: {missing[:5]}) — stranded in the runtime"
            )
        plan_stats, invocation_stats = build_cache_stats(
            self.sessions, plan_base, invocation_base
        )
        record_cache_gauges(self.metrics, plan_stats, invocation_stats)
        self.metrics.gauge("serve.admission.peak").set(self.admission.peak)
        return ServeReport(
            outcomes=dict(sorted(self.table.outcomes.items())),
            makespan=makespan,
            total_round_trips=self.sessions.total_round_trips(),
            metrics=self.metrics,
            plan_cache_stats=plan_stats,
            invocation_cache_stats=invocation_stats,
            shard_stats=self._shard_stats(),
            num_shards=self.num_shards,
            admission_peak=self.admission.peak,
            slo=self.slo,
        )

    # -- admission granting --------------------------------------------------

    def _grant_pass(self, now: float) -> None:
        """Grant freed global slots to *any* shard's queue, FIFO per shard.

        A shard's ``_on_finish`` drains only its own queue, which is
        complete for per-shard bounds: a request queues on shard ``i``
        because ``i`` was at ``max_concurrency``, and only a finish on
        ``i`` can free that.  Under a *global* admission cap the freeing
        finish can happen on another shard, so the merged loop must
        re-run the grant over every shard after each event — otherwise
        requests queued at the global cap strand forever (work stealing
        is an optimisation, not a liveness guarantee: thieves require an
        empty local queue).  Runs in shard-index order, so grants stay
        deterministic; with one shard it is a no-op after the shard's
        own drain, preserving instruction-for-instruction equality.
        """
        for shard in self.shards:
            while (
                shard._queue
                and shard._active < self.config.max_concurrency
                and self.admission.try_acquire()
            ):
                # Remaining heap events are all >= now, so jumping the
                # shard's clock forward cannot reorder anything.
                shard.clock.advance_to(now)
                self._set_cache_shard(shard.shard_index)
                shard._start(shard._queue.popleft(), now)

    # -- work stealing -------------------------------------------------------

    def _steal_pass(self, now: float) -> None:
        """Let idle-capacity shards drain the most-loaded shard's queue.

        Runs after every dispatched event, so a shard going idle (its
        last finish) steals at the exact virtual instant the plain
        runtime would have started the victim's request locally — no
        polling events needed.  Deterministic: thieves iterate in shard
        index order; the victim is the longest queue (lowest index on
        ties).  A steal only happens when the thief can *start* the
        request immediately — moving queued work between queues would
        churn accounting without reducing latency.
        """
        while True:
            stolen_any = False
            for thief in self.shards:
                if thief._queue or thief._active >= self.config.max_concurrency:
                    continue
                victim = max(
                    (s for s in self.shards if s is not thief and s._queue),
                    key=lambda s: (len(s._queue), -s.shard_index),
                    default=None,
                )
                if victim is None:
                    continue
                if self._steal_one(thief, victim, now):
                    stolen_any = True
            if not stolen_any:
                return

    def _steal_one(
        self, thief: ServeScheduler, victim: ServeScheduler, now: float
    ) -> bool:
        if not self.admission.try_acquire():
            return False
        request = victim._queue.popleft()  # FIFO head: the oldest wait
        thief._queued_at[request.request_id] = victim._queued_at.pop(
            request.request_id, now
        )
        # Remaining heap events are all >= now, so jumping the thief's
        # clock forward cannot reorder anything already scheduled.
        thief.clock.advance_to(now)
        self._set_cache_shard(thief.shard_index)
        # _start expects the caller to hold the global admission slot
        # (acquired above) and claims the thief-local slot itself.
        thief._start(request, now)
        outcome = self.table.outcomes[request.request_id]
        outcome.stolen = True
        outcome.stolen_from = victim.shard_index
        if self.tracer.enabled:
            # Instantaneous event marker: the steal itself takes no
            # virtual time; the stolen request's own span tree carries
            # the ``stolen`` attribute.
            self.tracer.record_span(
                "serve.steal",
                start=now,
                end=now,
                request=request.request_id,
                shard=thief.shard_index,
                victim=victim.shard_index,
            )
        self.metrics.counter("serve.steals").inc()
        self.metrics.counter(f"serve.shard.{thief.shard_index}.steals").inc()
        self.metrics.counter(
            f"serve.shard.{victim.shard_index}.stolen_from"
        ).inc()
        return True

    # -- reporting -----------------------------------------------------------

    def _shard_stats(self) -> list[dict[str, Any]]:
        cache = self.sessions.invocation_cache
        stats: list[dict[str, Any]] = []
        for shard in self.shards:
            index = shard.shard_index

            def count(name: str) -> int:
                counter = self.metrics.counters.get(
                    f"serve.shard.{index}.{name}"
                )
                return int(counter.value) if counter is not None else 0

            entry: dict[str, Any] = {
                "shard": index,
                "started": count("started"),
                "completed": count("completed"),
                "failed": count("failed"),
                "rejected": count("rejected"),
                "steals": count("steals"),
                "stolen_from": count("stolen_from"),
                "max_queue_depth": int(
                    self.metrics.gauges.get(
                        f"serve.shard.{index}.max_queue_depth",
                    ).value
                    if f"serve.shard.{index}.max_queue_depth" in self.metrics.gauges
                    else 0
                ),
                "makespan": shard.clock.now,
            }
            if isinstance(cache, ShardedInvocationCache):
                view = cache.shard_stats[index]
                entry["invocation_cache"] = {
                    "hits": view.hits,
                    "misses": view.misses,
                    "hit_rate": view.hit_rate,
                }
            stats.append(entry)
        return stats


# -- workload partitioning & serving entry points -----------------------------


def partition_workload(
    workload: Sequence[Request], ring: HashRing
) -> list[list[Request]]:
    """Split a workload into per-shard subsets by home shard.

    Subsets are self-contained: a follow-up carries its target's session
    id, so the whole interaction chain of a session lands on one shard —
    which is what lets the parallel path run each subset in isolation.
    """
    subsets: list[list[Request]] = [[] for _ in range(ring.num_shards)]
    for request in workload:
        subsets[ring.shard_of(request)].append(request)
    return subsets


def _build_manager(
    templates: Sequence[QueryTemplate],
    *,
    seed: int,
    cache_mode: str,
    num_shards: int,
    ring: HashRing,
    cache_size: int | None,
    plan_cache_size: int | None = None,
    backend: str = "virtual",
    join_kernel: str = "binary",
) -> SessionManager:
    if cache_mode not in ("shared", "private", "isolated"):
        raise ExecutionError(
            f"unknown cache_mode {cache_mode!r}; "
            "expected shared, private, or isolated"
        )
    manager = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        optimizer_config=OptimizerConfig(join_kernel=join_kernel),
        backend=backend,
    )
    if cache_mode == "isolated":
        return manager
    manager.plan_cache = PlanCache(max_size=plan_cache_size)
    if cache_mode == "shared":
        manager.invocation_cache = ShardedInvocationCache(
            num_shards, max_size=cache_size
        )
    else:  # private: one cache per shard, routed by the session's home
        per_shard = [InvocationCache(max_size=cache_size) for _ in range(num_shards)]
        manager.invocation_cache_selector = (
            lambda request: per_shard[ring.shard_of(request)]
        )
    return manager


def serve_workload_sharded(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    num_shards: int,
    cache_mode: str = "shared",
    steal: bool = True,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    queue_limit: int = 1_000_000,
    default_service_rate: float | None = 4.0,
    session_space: int = 1_000_000,
    cache_size: int | None = None,
    plan_cache_size: int | None = None,
    global_concurrency: int | None = None,
    templates: Sequence[QueryTemplate] | None = None,
    workload: Sequence[Request] | None = None,
    digest_fn: "Callable[[Sequence[CompositeTuple]], str] | None" = None,
    tracer: "Tracer | NullTracer | None" = None,
    slo: "SloTracker | None" = None,
    sample_metrics: bool = False,
    join_kernel: str = "binary",
) -> tuple[ServeReport, dict[int, str]]:
    """Serve one seeded workload on ``num_shards`` shards.

    Returns the merged report and per-request result digests (the
    equality witness across shard counts and cache modes).  With
    ``digest_fn`` set (the benchmark does this) outcomes carry digests
    instead of materialised result lists, keeping 100k-request runs
    memory-bounded; otherwise digests are computed here from the
    results.  ``max_concurrency``/``queue_limit`` are per-shard, so the
    execution capacity scales with the shard count — that is the scaling
    being measured.
    """
    from repro.serve.bench import result_digest

    templates = tuple(templates or default_templates())
    if workload is None:
        workload = generate_workload(
            templates,
            WorkloadConfig(
                num_requests=num_requests,
                rate=rate,
                skew=skew,
                seed=seed,
                followup_fraction=followup_fraction,
                session_space=max(session_space, num_requests),
            ),
        )
    ring = HashRing(num_shards)
    sessions = _build_manager(
        templates,
        seed=seed,
        cache_mode=cache_mode,
        num_shards=num_shards,
        ring=ring,
        cache_size=cache_size,
        plan_cache_size=plan_cache_size,
        join_kernel=join_kernel,
    )
    scheduler = ShardedServeScheduler(
        sessions,
        ServeConfig(
            max_concurrency=max_concurrency,
            queue_limit=queue_limit,
            default_service_rate=default_service_rate,
        ),
        tracer=tracer,
        num_shards=num_shards,
        ring=ring,
        steal=steal,
        global_concurrency=global_concurrency,
        digest_fn=digest_fn,
        slo=slo,
        sample_metrics=sample_metrics,
    )
    report = scheduler.run(workload)
    digests: dict[int, str] = {}
    for outcome in report.completed():
        if outcome.digest is not None:
            digests[outcome.request.request_id] = outcome.digest
        else:
            digests[outcome.request.request_id] = result_digest(
                outcome.results or ()
            )
    return report, digests


# -- parallel path: shard subsets in worker processes -------------------------


def _parallel_worker(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Serve one shard's subset in a worker process.

    Each worker owns a full private runtime (its own SessionManager and
    caches — cross-shard cache sharing needs shared memory the parallel
    path deliberately avoids), so results still match every serial mode:
    the substrate is deterministic per ``(data seed, interface,
    bindings)`` regardless of which process fetches.
    """
    from repro.serve.bench import result_digest

    subset: Sequence[Request] = payload["subset"]
    templates: Sequence[QueryTemplate] = payload["templates"]
    seed: int = payload["seed"]
    backend: str = payload["backend"]
    manager = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        optimizer_config=OptimizerConfig(
            join_kernel=payload.get("join_kernel", "binary")
        ),
        plan_cache=PlanCache() if payload["caches"] else None,
        invocation_cache=(
            InvocationCache(max_size=payload["cache_size"])
            if payload["caches"]
            else None
        ),
        backend=backend,
    )
    if backend == "asyncio":
        import asyncio

        from repro.serve.async_serve import _serve_async

        report = asyncio.run(
            _serve_async(
                subset,
                manager,
                max_concurrency=payload["max_concurrency"],
                time_scale=payload["time_scale"],
            )
        )
        return {
            "shard": payload["shard"],
            "backend": backend,
            "outcomes": [
                {
                    "request_id": o.request.request_id,
                    "status": "completed" if o.completed else "failed",
                    "digest": (
                        result_digest(o.results or ()) if o.completed else None
                    ),
                    "latency": o.wall_latency,
                    "error": o.error,
                }
                for o in report.outcomes
            ],
            "makespan": report.wall_time,
            "round_trips": manager.total_round_trips(),
        }
    scheduler = ServeScheduler(
        manager,
        ServeConfig(
            max_concurrency=payload["max_concurrency"],
            queue_limit=payload["queue_limit"],
            default_service_rate=payload["default_service_rate"],
        ),
        digest_fn=result_digest,
    )
    report = scheduler.run(subset)
    return {
        "shard": payload["shard"],
        "backend": backend,
        "outcomes": [
            {
                "request_id": o.request.request_id,
                "status": o.status,
                "digest": o.digest,
                "latency": o.latency if o.status == "completed" else 0.0,
                "error": o.error,
            }
            for o in report.outcomes.values()
        ],
        "makespan": report.makespan,
        "round_trips": report.total_round_trips,
    }


def serve_workload_parallel(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    num_shards: int,
    backend: str = "virtual",
    caches: bool = True,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    queue_limit: int = 1_000_000,
    default_service_rate: float | None = 4.0,
    session_space: int = 1_000_000,
    cache_size: int | None = None,
    time_scale: float = 0.001,
    templates: Sequence[QueryTemplate] | None = None,
    workload: Sequence[Request] | None = None,
    join_kernel: str = "binary",
) -> dict[str, Any]:
    """Serve the workload with one real worker process per shard.

    The ring partitions the workload into self-contained subsets; each
    worker serves its subset on a private runtime (virtual scheduler or
    the asyncio backend), and the parent merges digests and accounting.
    Digest-equivalent to the serial sharded runtime in ``private`` cache
    mode — the parallel analogue of the determinism argument.  Templates
    must be picklable (the built-ins are).
    """
    import multiprocessing

    if backend not in ("virtual", "asyncio"):
        raise ExecutionError(f"unknown parallel backend {backend!r}")
    templates = tuple(templates or default_templates())
    if workload is None:
        workload = generate_workload(
            templates,
            WorkloadConfig(
                num_requests=num_requests,
                rate=rate,
                skew=skew,
                seed=seed,
                followup_fraction=followup_fraction,
                session_space=max(session_space, num_requests),
            ),
        )
    ring = HashRing(num_shards)
    subsets = partition_workload(workload, ring)
    payloads = [
        {
            "shard": index,
            "subset": subset,
            "templates": templates,
            "seed": seed,
            "backend": backend,
            "caches": caches,
            "cache_size": cache_size,
            "max_concurrency": max_concurrency,
            "queue_limit": queue_limit,
            "default_service_rate": default_service_rate,
            "time_scale": time_scale,
            "join_kernel": join_kernel,
        }
        for index, subset in enumerate(subsets)
    ]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context("spawn")
    with context.Pool(processes=num_shards) as pool:
        worker_reports = pool.map(_parallel_worker, payloads)
    digests: dict[int, str] = {}
    by_status: dict[str, int] = {}
    latencies: list[float] = []
    for worker in worker_reports:
        for outcome in worker["outcomes"]:
            by_status[outcome["status"]] = by_status.get(outcome["status"], 0) + 1
            if outcome["status"] == "completed":
                digests[outcome["request_id"]] = outcome["digest"]
                latencies.append(outcome["latency"])
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "backend": backend,
        "num_shards": num_shards,
        "digests": digests,
        "by_status": by_status,
        "makespan": max((w["makespan"] for w in worker_reports), default=0.0),
        "total_round_trips": sum(w["round_trips"] for w in worker_reports),
        "latency_p50": pct(0.50),
        "latency_p95": pct(0.95),
        "shards": [
            {
                "shard": w["shard"],
                "requests": len(w["outcomes"]),
                "makespan": w["makespan"],
                "round_trips": w["round_trips"],
            }
            for w in worker_reports
        ],
    }
