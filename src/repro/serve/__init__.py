"""Multi-query serving runtime over the virtual clock.

The single-query engine answers *one* liquid query; this package is the
runtime above it that serves *traffic* — the concurrent, production-scale
regime the ROADMAP's north star calls for:

* :mod:`repro.serve.workload` — parameterized query templates sampled
  into seeded arrival streams (rates, Zipf parameter skew, follow-up
  interactions);
* :mod:`repro.serve.scheduler` — a cooperative discrete-event scheduler
  with admission control, bounded concurrency, and per-service token
  buckets, interleaving chunk-granular execution steps of many queries
  on one server clock;
* :mod:`repro.serve.plancache` — optimizer reuse across requests keyed
  by normalized plan signature;
* :mod:`repro.serve.sessions` — liquid-query sessions
  (``more``/``rerank``/``resubmit``) routed through the same scheduler,
  optionally sharing one cross-query invocation cache;
* :mod:`repro.serve.bench` — the shared-vs-isolated serving benchmark
  behind ``repro serve-bench`` and ``BENCH_serving.json``;
* :mod:`repro.serve.async_serve` — the same seeded workload served on
  the asyncio real-execution backend (``serve-bench --backend asyncio``),
  digest-comparable request by request with the virtual scheduler.
"""

from repro.serve.async_serve import (
    AsyncServeOutcome,
    AsyncServeReport,
    serve_workload_async,
)
from repro.serve.bench import (
    combined_digest,
    result_digest,
    run_serving_benchmark,
    run_sharding_benchmark,
    serve_workload,
)
from repro.serve.plancache import PlanCache, PlanCacheStats
from repro.serve.scheduler import (
    AdmissionController,
    RequestOutcome,
    ServeConfig,
    ServeReport,
    ServeScheduler,
    SessionTable,
)
from repro.serve.sessions import SessionManager
from repro.serve.sharding import (
    HashRing,
    ShardedInvocationCache,
    ShardedServeScheduler,
    partition_workload,
    serve_workload_parallel,
    serve_workload_sharded,
)
from repro.serve.workload import (
    QueryTemplate,
    Request,
    WorkloadConfig,
    default_templates,
    generate_workload,
    scenario_names,
    scenario_templates,
    session_key,
)

__all__ = [
    "AdmissionController",
    "AsyncServeOutcome",
    "AsyncServeReport",
    "serve_workload_async",
    "HashRing",
    "PlanCache",
    "PlanCacheStats",
    "QueryTemplate",
    "Request",
    "RequestOutcome",
    "ServeConfig",
    "ServeReport",
    "ServeScheduler",
    "SessionManager",
    "SessionTable",
    "ShardedInvocationCache",
    "ShardedServeScheduler",
    "WorkloadConfig",
    "combined_digest",
    "default_templates",
    "generate_workload",
    "partition_workload",
    "result_digest",
    "run_serving_benchmark",
    "run_sharding_benchmark",
    "scenario_names",
    "scenario_templates",
    "serve_workload",
    "serve_workload_parallel",
    "serve_workload_sharded",
    "session_key",
]
