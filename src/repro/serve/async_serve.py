"""Asyncio serving: the seeded workload on really concurrent execution.

The virtual-clock :class:`~repro.serve.scheduler.ServeScheduler` steps
many in-flight queries on one deterministic timeline — the oracle for
admission, fairness, and rate-limit behaviour.  This module is its
wall-clock counterpart: the *same* seeded workload
(:func:`~repro.serve.workload.generate_workload`) is served on an
asyncio event loop, each request executing through the
:mod:`~repro.engine.async_runner` backend with genuinely overlapping
service calls.

Correspondence with the virtual scheduler:

* arrivals are paced by the workload's virtual arrival times scaled by
  ``time_scale`` (the same factor that scales service latencies);
* interactions on one session are **chained in arrival order** — a
  follow-up awaits its parent chain before executing, so every session
  sees the identical interaction sequence the virtual scheduler would
  deliver, and per-request result digests match the virtual run's;
* a global admission semaphore bounds concurrently *executing* requests
  (the analogue of ``ServeConfig.max_concurrency``); excess arrivals
  queue — there is no rejection path, matching the benchmark's
  effectively unbounded queue;
* all sessions share one :class:`~repro.engine.async_runner.AsyncExecutionContext`,
  making the per-service connection pools a server-wide bound and
  coalescing concurrent identical invocations across queries.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.optimizer import OptimizerConfig
from repro.engine.async_runner import AsyncExecutionContext
from repro.engine.executor import InvocationCache
from repro.model.tuples import CompositeTuple
from repro.obs.tracer import coerce_tracer
from repro.serve.bench import result_digest
from repro.serve.plancache import PlanCache
from repro.serve.sessions import SessionManager
from repro.serve.workload import (
    QueryTemplate,
    Request,
    WorkloadConfig,
    default_templates,
    generate_workload,
)

__all__ = ["AsyncServeOutcome", "AsyncServeReport", "serve_workload_async"]


@dataclass
class AsyncServeOutcome:
    """Terminal state of one request served on the asyncio backend."""

    request: Request
    results: list[CompositeTuple] | None = None
    #: Wall seconds from admission to completion (queueing excluded).
    wall_latency: float = 0.0
    error: str | None = None

    @property
    def completed(self) -> bool:
        return self.error is None


@dataclass
class AsyncServeReport:
    """Outcomes plus wall-clock accounting of one async serving run."""

    outcomes: list[AsyncServeOutcome] = field(default_factory=list)
    #: Wall seconds from first arrival to last completion.
    wall_time: float = 0.0

    def completed(self) -> list[AsyncServeOutcome]:
        return [o for o in self.outcomes if o.completed]

    def digests(self) -> dict[int, str]:
        """Per-request result digests — the equivalence witness against
        the virtual scheduler's run of the same workload."""
        return {
            o.request.request_id: result_digest(o.results or ())
            for o in self.completed()
        }

    @property
    def throughput(self) -> float:
        """Completed requests per wall second."""
        done = len(self.completed())
        return done / self.wall_time if self.wall_time > 0 else 0.0


async def _serve_async(
    workload: Sequence[Request],
    sessions: SessionManager,
    *,
    max_concurrency: int,
    time_scale: float,
    tracer=None,
    metrics=None,
    slo=None,
) -> AsyncServeReport:
    admission = asyncio.Semaphore(max_concurrency)
    # One chain per session: request_id for a run, its target for
    # follow-ups.  Chaining serialises a session's interactions in
    # arrival order — the order the virtual scheduler delivers them.
    chains: dict[int, asyncio.Task] = {}
    outcomes: list[AsyncServeOutcome] = []
    tracer = coerce_tracer(tracer)
    context = sessions.async_context
    if context is not None:
        # Bind the shared context to this loop *now* so its wall epoch is
        # the serve start: engine spans (service.invoke, pool.wait) and
        # the request spans below then share one timeline.
        context.attach_loop()
    started = (
        context.wall_epoch
        if context is not None and context.wall_epoch
        else time.perf_counter()
    )

    def axis() -> float:
        """Elapsed wall seconds rescaled to the virtual-time span axis."""
        elapsed = time.perf_counter() - started
        return elapsed / time_scale if time_scale > 0 else elapsed

    async def handle(
        request: Request, predecessor: asyncio.Task | None
    ) -> AsyncServeOutcome:
        arrived = axis()
        unparked = arrived
        if predecessor is not None:
            # The parent chain must settle first; its failure surfaces
            # below as a missing session, not as our exception.
            await asyncio.gather(predecessor, return_exceptions=True)
            unparked = axis()
        outcome = AsyncServeOutcome(request=request)
        async with admission:
            admitted_axis = axis()
            admitted = time.perf_counter()
            try:
                outcome.results = await sessions.perform_async(request)
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.wall_latency = time.perf_counter() - admitted
        done = axis()
        status = "completed" if outcome.completed else "failed"
        if metrics is not None:
            metrics.counter(f"serve.{status}").inc()
            name = "serve.latency" if outcome.completed else "serve.latency_failed"
            metrics.histogram(name).observe(done - arrived)
        if slo is not None and outcome.completed:
            slo.observe(done - arrived, at=done)
        if tracer.enabled:
            session = (
                request.request_id if request.kind == "run" else request.target
            )
            root = tracer.record_span(
                "serve.request",
                start=arrived,
                end=done,
                request=request.request_id,
                kind=request.kind,
                template=request.template,
                session=session,
                status=status,
                backend="asyncio",
            )
            if predecessor is not None:
                tracer.record_span(
                    "serve.park",
                    start=arrived,
                    end=unparked,
                    parent_id=root.span_id,
                    reason="target",
                )
            tracer.record_span(
                "serve.queue",
                start=unparked,
                end=admitted_axis,
                parent_id=root.span_id,
            )
            tracer.record_span(
                "serve.execute",
                start=admitted_axis,
                end=done,
                parent_id=root.span_id,
            )
        outcomes.append(outcome)
        return outcome

    tasks: list[asyncio.Task] = []
    for request in sorted(workload, key=lambda r: (r.arrival, r.request_id)):
        due = started + request.arrival * time_scale
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        session_key = (
            request.request_id if request.kind == "run" else request.target
        )
        predecessor = chains.get(session_key) if session_key is not None else None
        task = asyncio.ensure_future(handle(request, predecessor))
        if session_key is not None:
            chains[session_key] = task
        tasks.append(task)
    try:
        await asyncio.gather(*tasks)
    except BaseException:  # pragma: no cover - defensive unwind
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return AsyncServeReport(
        outcomes=sorted(outcomes, key=lambda o: o.request.request_id),
        wall_time=time.perf_counter() - started,
    )


def serve_workload_async(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    shared: bool,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    time_scale: float = 0.001,
    max_connections: int = 8,
    templates: Sequence[QueryTemplate] | None = None,
    context: AsyncExecutionContext | None = None,
    tracer: Any = None,
    metrics: Any = None,
    slo: Any = None,
    trace_engine: bool = False,
    join_kernel: str = "binary",
) -> AsyncServeReport:
    """Serve one seeded workload on the asyncio backend.

    Mirrors :func:`~repro.serve.bench.serve_workload` (same workload
    generator, same sharing switch) so the two runs are comparable
    request by request via :meth:`AsyncServeReport.digests`.

    ``tracer`` records per-request span trees on the wall clock rescaled
    to the virtual axis (``/ time_scale``), on the same timeline the
    engine's ``service.invoke``/``pool.wait`` spans use; pass
    ``trace_engine=True`` to also hand the tracer to every session's
    executor for those inner spans.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) and ``slo`` (an
    :class:`~repro.obs.serving.SloTracker`) accumulate outcome counters
    and completed-latency quantiles.  All are off by default and never
    affect results.
    """
    templates = tuple(templates or default_templates())
    workload = generate_workload(
        templates,
        WorkloadConfig(
            num_requests=num_requests,
            rate=rate,
            skew=skew,
            seed=seed,
            followup_fraction=followup_fraction,
        ),
    )
    if context is None:
        context = AsyncExecutionContext(
            time_scale=time_scale, default_connections=max_connections
        )
    sessions = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        optimizer_config=OptimizerConfig(join_kernel=join_kernel),
        plan_cache=PlanCache() if shared else None,
        invocation_cache=(InvocationCache(max_size=None) if shared else None),
        backend="asyncio",
        async_context=context,
        tracer=tracer if trace_engine else None,
    )
    return asyncio.run(
        _serve_async(
            workload,
            sessions,
            max_concurrency=max_concurrency,
            time_scale=time_scale,
            tracer=tracer,
            metrics=metrics,
            slo=slo,
        )
    )
