"""Session management: liquid-query sessions behind the scheduler.

The :class:`SessionManager` is the bridge between serving requests and
the single-query machinery: for each ``run`` request it compiles the
template's query (memoised per query text), obtains a plan (through the
shared :class:`~repro.serve.plancache.PlanCache` when sharing is on,
else a fresh optimizer search), builds a **per-request**
:class:`~repro.services.simulated.ServicePool`, and opens a
:class:`~repro.engine.liquid.LiquidQuerySession`.  Follow-up requests
(``more`` / ``rerank`` / ``resubmit``) resolve their target's session
and flow through its step-generator twins, so every service round trip a
session interaction issues is scheduled exactly like a fresh query's.

Each session's pool has its **own** virtual clock and call log: a
request's service time and round trips stay attributable to it, and
per-session results are exactly what a single-user run with the same
data seed would produce.  What *is* shared — when the manager is given a
cross-query :class:`~repro.engine.executor.InvocationCache` — is the
invocation memo, which is safe precisely because the simulated substrate
derives results, latencies, and fault draws from
``(data seed, interface, bindings)`` alone, never from clock state or
call order (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.engine.async_runner import BACKENDS, AsyncExecutionContext
from repro.engine.executor import InvocationCache
from repro.engine.liquid import LiquidQuerySession
from repro.engine.retry import Degradation, RetryPolicy
from repro.errors import ExecutionError, OptimizationError
from repro.model.registry import ServiceRegistry
from repro.model.tuples import CompositeTuple
from repro.query.compile import CompiledQuery, compile_query
from repro.query.parser import parse_query
from repro.serve.plancache import PlanCache
from repro.serve.workload import QueryTemplate, Request
from repro.services.simulated import FaultModel, ServicePool

__all__ = ["SessionManager"]


@dataclass
class SessionManager:
    """Opens and resolves liquid-query sessions for serving requests.

    Parameters
    ----------
    templates:
        The workload's templates, by name (supplies query text, schema,
        and registry factory).
    data_seed:
        Global seed of every per-request service pool.  One seed for the
        whole server is what makes cross-query coalescing sound: two
        pools with the same seed are the *same* simulated world.
    plan_cache:
        Shared optimizer memo; ``None`` re-optimizes every request
        (isolated mode).
    invocation_cache:
        Shared cross-query invocation memo; ``None`` gives every
        execution its private memo (isolated mode).
    invocation_cache_selector:
        Optional per-request override: a callable mapping a request to
        the invocation cache its session should use (or ``None`` for a
        private memo).  A sharded runtime in *private-cache* mode routes
        each session to its home shard's cache this way; when set it
        takes precedence over ``invocation_cache``.
    retry / degradation / fault_model:
        Fault-tolerance posture applied uniformly to every session.
    backend:
        Execution backend for every session: ``"virtual"`` (default,
        step-resumable, scheduled on the shared virtual timeline) or
        ``"asyncio"`` (really concurrent service calls; driven through
        :func:`~repro.serve.async_serve.serve_workload_async` instead of
        the step scheduler).
    async_context:
        Shared wall-clock context for the asyncio backend — one context
        across all sessions makes the per-service connection pools a
        *server-wide* bound and coalesces concurrent identical
        invocations across queries.  Defaults to a private context when
        the backend is asyncio.
    tracer:
        Optional engine-level tracer handed to every session's executor
        (node spans, ``service.invoke``, ``pool.wait``).  ``None`` keeps
        the no-op path — executors fall back to :data:`~repro.obs.tracer.NULL_TRACER`.
    """

    templates: Mapping[str, QueryTemplate]
    data_seed: int = 2009
    optimizer_config: OptimizerConfig = field(default_factory=OptimizerConfig)
    plan_cache: PlanCache | None = None
    invocation_cache: InvocationCache | None = None
    invocation_cache_selector: (
        "Callable[[Request], InvocationCache | None] | None"
    ) = None
    retry: RetryPolicy | None = None
    degradation: Degradation | str = Degradation.FAIL
    fault_model: FaultModel = field(default_factory=FaultModel)
    backend: str = "virtual"
    async_context: AsyncExecutionContext | None = None
    tracer: Any = None
    _registries: dict[str, ServiceRegistry] = field(default_factory=dict)
    _compiled: dict[str, CompiledQuery] = field(default_factory=dict)
    _sessions: dict[int, LiquidQuerySession] = field(default_factory=dict)
    _session_templates: dict[int, QueryTemplate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.backend == "asyncio" and self.async_context is None:
            self.async_context = AsyncExecutionContext()

    # -- plumbing ------------------------------------------------------------

    def _template(self, name: str) -> QueryTemplate:
        template = self.templates.get(name)
        if template is None:
            raise ExecutionError(f"unknown template {name!r}")
        return template

    def _registry(self, template: QueryTemplate) -> ServiceRegistry:
        registry = self._registries.get(template.schema)
        if registry is None:
            registry = self._registries[template.schema] = (
                template.registry_factory()
            )
        return registry

    def _compile(self, template: QueryTemplate) -> CompiledQuery:
        compiled = self._compiled.get(template.name)
        if compiled is None:
            compiled = self._compiled[template.name] = compile_query(
                parse_query(template.query_text), self._registry(template)
            )
        return compiled

    def _plan(self, template: QueryTemplate, compiled: CompiledQuery):
        if self.plan_cache is not None:
            return self.plan_cache.plan(
                template.schema, compiled, self.optimizer_config
            )
        outcome = Optimizer(compiled, self.optimizer_config).optimize()
        if outcome.best is None:
            raise OptimizationError("no feasible plan found")
        return outcome.best

    def _executor_options(self, request: Request) -> dict[str, Any]:
        options: dict[str, Any] = {
            "retry": self.retry,
            "degradation": self.degradation,
        }
        if self.invocation_cache_selector is not None:
            cache = self.invocation_cache_selector(request)
        else:
            cache = self.invocation_cache
        if cache is not None:
            options["invocation_cache"] = cache
        if self.tracer is not None:
            options["tracer"] = self.tracer
        return options

    # -- request entry points ------------------------------------------------

    def open(self, request: Request) -> LiquidQuerySession:
        """Create (and register) the session for a ``run`` request."""
        template = self._template(request.template)
        compiled = self._compile(template)
        candidate = self._plan(template, compiled)
        pool = ServicePool(
            self._registry(template),
            global_seed=self.data_seed,
            fault_model=self.fault_model,
        )
        session = LiquidQuerySession(
            candidate=candidate,
            query=compiled,
            pool=pool,
            inputs=dict(request.inputs or {}),
            executor_options=self._executor_options(request),
            backend=self.backend,
            async_context=self.async_context,
        )
        self._sessions[request.request_id] = session
        self._session_templates[request.request_id] = template
        return session

    def adopt(
        self,
        request_id: int,
        session: LiquidQuerySession,
        template: QueryTemplate,
    ) -> None:
        """Register an externally restored session under ``request_id``.

        The durability resume path rebuilds sessions from checkpoints and
        hands them back here so follow-up requests resolve their targets
        exactly as if the original ``run`` had executed in this process.
        """
        self._sessions[request_id] = session
        self._session_templates[request_id] = template

    def template_of(self, request_id: int) -> QueryTemplate:
        """The template whose ``run`` request opened this session."""
        template = self._session_templates.get(request_id)
        if template is None:
            raise ExecutionError(f"no session for request {request_id}")
        return template

    def session_for(self, request_id: int) -> LiquidQuerySession:
        session = self._sessions.get(request_id)
        if session is None:
            raise ExecutionError(f"no session for request {request_id}")
        return session

    def stepper(self, request: Request) -> Iterator:
        """The step generator executing ``request`` (not for ``rerank``)."""
        if request.kind == "run":
            return self.open(request).run_steps(request.k)
        session = self.session_for(self._target_of(request))
        if request.kind == "more":
            return session.more_steps(request.k)
        if request.kind == "resubmit":
            return session.resubmit_steps(dict(request.inputs or {}), request.k)
        raise ExecutionError(f"request kind {request.kind!r} has no steps")

    async def perform_async(self, request: Request) -> list[CompositeTuple]:
        """Execute one request to completion on the asyncio backend.

        The coroutine counterpart of :meth:`stepper` + :meth:`rerank`:
        ``run`` opens a session, follow-ups resolve their target; service
        round trips overlap on the event loop instead of being stepped.
        """
        if request.kind == "run":
            return await self.open(request).run_async(request.k)
        if request.kind == "rerank":
            return self.rerank(request)
        session = self.session_for(self._target_of(request))
        if request.kind == "more":
            return await session.more_async(request.k)
        if request.kind == "resubmit":
            return await session.resubmit_async(
                dict(request.inputs or {}), request.k
            )
        raise ExecutionError(f"cannot execute request kind {request.kind!r}")

    def rerank(self, request: Request) -> list[CompositeTuple]:
        """Apply a ``rerank`` follow-up — synchronous, no service calls."""
        if request.kind != "rerank":
            raise ExecutionError(f"cannot rerank a {request.kind!r} request")
        session = self.session_for(self._target_of(request))
        return session.rerank(dict(request.weights or {}), request.k)

    def pool_for(self, request: Request) -> ServicePool:
        """The service pool the request's round trips are logged to."""
        if request.kind == "run":
            return self.session_for(request.request_id).pool
        return self.session_for(self._target_of(request)).pool

    @staticmethod
    def _target_of(request: Request) -> int:
        if request.target is None:
            raise ExecutionError(
                f"{request.kind!r} request {request.request_id} names no target"
            )
        return request.target

    # -- accounting ----------------------------------------------------------

    def total_round_trips(self) -> int:
        """Service round trips across every distinct session pool."""
        pools = {id(s.pool): s.pool for s in self._sessions.values()}
        return sum(pool.log.total_calls() for pool in pools.values())

    @property
    def session_count(self) -> int:
        return len(self._sessions)
