"""Workload generation: query templates sampled into arrival streams.

A serving benchmark needs *traffic*, not one query: a stream of requests
drawn from parameterized **query templates** (the Fig. 3 movie-night and
Fig. 10 conference-trip schemas), arriving over virtual time at a
configurable rate, with parameter values drawn from a skewed (Zipf-like)
distribution so that popular parameter combinations repeat — the regime
where cross-query sharing pays off, exactly as popular keywords repeat in
a real multi-domain search service.

Everything is a pure function of the workload seed: arrival times come
from a seeded exponential inter-arrival draw, template choice and
parameter picks from the same generator.  The same
:class:`WorkloadConfig` therefore yields the *identical* request stream
for the shared and isolated serving modes, making their comparison
apples-to-apples.

A fraction of requests are **follow-up interactions** on an earlier
request's session — ``more`` (grow the fetch factors), ``rerank``
(re-weight the ranking function; costs no service calls), ``resubmit``
(new INPUT bindings, same plan) — so the liquid-query surface of
Section 3.2 flows through the scheduler alongside fresh queries.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ExecutionError
from repro.services.marts import (
    CONFERENCE_QUERY,
    RUNNING_EXAMPLE_QUERY,
    conference_trip_registry,
    movie_night_registry,
)
from repro.services.scenarios import SCENARIOS, ScenarioPack, scenario_pack

__all__ = [
    "QueryTemplate",
    "Request",
    "WorkloadConfig",
    "default_templates",
    "generate_workload",
    "scenario_names",
    "scenario_templates",
    "session_key",
]


@lru_cache(maxsize=1024)
def _zipf_cdf(n: int, skew: float) -> tuple[float, ...]:
    """Cumulative Zipf weights for ``n`` options at exponent ``skew``.

    Accumulated left-to-right exactly like the historical per-draw scan,
    so memoisation changes no draw: the running sums are bit-identical to
    ``sum(weights[:i+1])``.
    """
    acc = 0.0
    cdf: list[float] = []
    for i in range(n):
        acc += 1.0 / (i + 1) ** skew
        cdf.append(acc)
    return tuple(cdf)


def zipf_index(rng: random.Random, n: int, skew: float) -> int:
    """Draw an index in ``[0, n)`` with probability ∝ ``1/(i+1)**skew``.

    ``skew=0`` is uniform; larger values concentrate mass on the first
    few options (the "popular keywords" of the workload).  The weight
    CDF is memoised per ``(n, skew)`` and searched with :func:`bisect`,
    so drawing is O(log n) instead of rebuilding an O(n) weight vector
    per draw — at 100k-request workload generation the rebuild was the
    dominant cost.
    """
    if n <= 0:
        raise ExecutionError("cannot draw from an empty option list")
    cdf = _zipf_cdf(n, float(skew))
    point = rng.random() * cdf[-1]
    return min(bisect_right(cdf, point), n - 1)


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterized query: fixed text, sampled INPUT bindings.

    ``parameter_space`` maps each INPUT variable to its candidate values,
    ordered most-popular first — :meth:`sample_inputs` draws each
    independently with Zipf skew.  ``rerank_weights`` are the alternative
    ranking-weight sets a ``rerank`` follow-up may switch to.
    """

    name: str
    schema: str
    query_text: str
    registry_factory: Callable[[], Any]
    parameter_space: Mapping[str, Sequence[Any]]
    rerank_weights: Sequence[Mapping[str, float]] = ()

    def sample_inputs(self, rng: random.Random, skew: float) -> dict[str, Any]:
        return {
            name: options[zipf_index(rng, len(options), skew)]
            for name, options in sorted(self.parameter_space.items())
        }


@dataclass(frozen=True)
class Request:
    """One arrival in the serving workload.

    ``kind`` is ``run`` (a fresh query), or a follow-up interaction —
    ``more`` / ``rerank`` / ``resubmit`` — on the session opened by the
    ``run`` request named in ``target``.
    """

    request_id: int
    kind: str
    template: str
    schema: str
    arrival: float
    inputs: Mapping[str, Any] | None = None
    weights: Mapping[str, float] | None = None
    target: int | None = None
    k: int | None = None
    #: Stable session identity drawn from the workload's (sparse) session
    #: id space — what the sharding ring hashes.  ``None`` (hand-built
    #: requests) falls back to ``target``/``request_id``.
    session_id: int | None = None


def session_key(request: Request) -> int:
    """The session identity a request belongs to (the sharding key).

    A ``run`` opens its own session; follow-ups belong to their target's.
    Workload-generated requests carry an explicit sparse ``session_id``;
    hand-built ones fall back to the request/target id.
    """
    if request.session_id is not None:
        return request.session_id
    if request.target is not None:
        return request.target
    return request.request_id


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the arrival stream (all consumed by one seeded RNG)."""

    num_requests: int = 40
    rate: float = 1.0  # mean arrivals per virtual second
    skew: float = 1.3  # Zipf exponent over parameter popularity
    seed: int = 2009
    followup_fraction: float = 0.25
    #: Relative odds of each follow-up kind when a follow-up is drawn.
    followup_mix: Mapping[str, float] = field(
        default_factory=lambda: {"more": 0.4, "rerank": 0.35, "resubmit": 0.25}
    )
    #: Size of the sparse session-id universe run requests draw their
    #: :attr:`Request.session_id` from (the space the sharding ring
    #: hashes — ~1M ids at production scale).
    session_space: int = 1_000_000

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ExecutionError("num_requests must be positive")
        if self.rate <= 0:
            raise ExecutionError("arrival rate must be positive")
        if not 0.0 <= self.followup_fraction < 1.0:
            raise ExecutionError("followup_fraction must be in [0, 1)")
        if self.session_space < self.num_requests:
            raise ExecutionError(
                "session_space must be at least num_requests "
                "(every run needs a distinct session id)"
            )


def _scaled_options(options: Sequence[Any], scale: int) -> list[Any]:
    """Extend a most-popular-first option list to ``scale ×`` its length.

    The base options keep their head positions (their Zipf popularity
    only grows relative to the appended tail), so a scaled workload
    still concentrates mass on the same popular bindings while adding a
    long tail of fresh ones.  Generated values follow the base value's
    shape — ``prefix#n`` strings get new suffixes, numbers extend the
    numeric range — and the simulated substrate derives data from the
    binding value alone, so any generated value is servable.
    """
    extended = list(options)
    head = extended[0]
    for j in range(len(extended) * (scale - 1)):
        if isinstance(head, float):
            extended.append(round(float(head) + (j + 1) * 0.25, 2))
        elif isinstance(head, int) and not isinstance(head, bool):
            extended.append(int(head) + j + 1)
        else:
            prefix = str(head).split("#")[0]
            extended.append(f"{prefix}#x{j}")
    return extended


def default_templates(param_scale: int = 1) -> tuple[QueryTemplate, ...]:
    """The two built-in templates over the chapter's example schemas.

    Parameter universes are deliberately small and head-heavy: under the
    default skew many requests bind the same (genre, country, date) for
    ``Movie1`` or the same (topic, city, date) for the conference trip,
    so concurrent queries issue *identical* service invocations — the
    sharing opportunity the serving runtime exploits.

    ``param_scale`` multiplies every parameter universe (base options
    keep their head positions; see :func:`_scaled_options`).  At
    population scale — the sharding sweep's 100k requests over ~1M
    sessions — the unscaled universes degenerate: ~100 distinct binding
    combos all go resident in the shared cache, every request completes
    in zero virtual time, and there is no load left for shards to
    absorb.  Scaling keeps the Zipf head hot while the tail sustains a
    steady miss stream of real service traffic.
    """
    if param_scale < 1:
        raise ExecutionError("param_scale must be at least 1")
    templates = (
        QueryTemplate(
            name="movie-night",
            schema="movie",
            query_text=RUNNING_EXAMPLE_QUERY,
            registry_factory=movie_night_registry,
            parameter_space={
                "INPUT1": [f"genre#{i}" for i in (3, 1, 5)],
                "INPUT2": ["country#1", "country#2"],
                "INPUT3": ["2009-03-01", "2009-06-01"],
                "INPUT4": [f"address#{i}" for i in (17, 3)],
                "INPUT5": [f"city#{i}" for i in (4, 2)],
                "INPUT6": ["category#2", "category#1"],
            },
            rerank_weights=(
                {"M": 0.6, "T": 0.2, "R": 0.2},
                {"M": 0.2, "T": 0.3, "R": 0.5},
            ),
        ),
        QueryTemplate(
            name="conference-trip",
            schema="conference",
            query_text=CONFERENCE_QUERY,
            registry_factory=conference_trip_registry,
            parameter_space={
                "INPUT1": [f"topic#{i}" for i in (5, 2)],
                "INPUT2": [26.0, 20.0],
                "INPUT3": ["city#0", "city#7"],
                "INPUT4": ["2009-06-15", "2009-09-01"],
            },
            rerank_weights=(
                {"F": 0.8, "H": 0.2},
                {"F": 0.3, "H": 0.7},
            ),
        ),
    )
    if param_scale == 1:
        return templates
    return tuple(
        QueryTemplate(
            name=template.name,
            schema=template.schema,
            query_text=template.query_text,
            registry_factory=template.registry_factory,
            parameter_space={
                name: _scaled_options(options, param_scale)
                for name, options in template.parameter_space.items()
            },
            rerank_weights=template.rerank_weights,
        )
        for template in templates
    )


def _scale_template(template: QueryTemplate, param_scale: int) -> QueryTemplate:
    if param_scale == 1:
        return template
    return QueryTemplate(
        name=template.name,
        schema=template.schema,
        query_text=template.query_text,
        registry_factory=template.registry_factory,
        parameter_space={
            name: _scaled_options(options, param_scale)
            for name, options in template.parameter_space.items()
        },
        rerank_weights=template.rerank_weights,
    )


def _pack_template(pack: ScenarioPack) -> QueryTemplate:
    """Build a workload template from a scenario pack's plain data."""
    return QueryTemplate(
        name=pack.name,
        schema=pack.schema,
        query_text=pack.query_text,
        registry_factory=pack.registry_factory,
        parameter_space=pack.parameter_space,
        rerank_weights=pack.rerank_weights,
    )


def scenario_names() -> tuple[str, ...]:
    """Valid ``scenario`` arguments for :func:`scenario_templates`."""
    return ("default", "all", *sorted(SCENARIOS))


def scenario_templates(
    scenario: str = "default", param_scale: int = 1
) -> tuple[QueryTemplate, ...]:
    """Workload templates for a named scenario selection.

    ``"default"`` is the chapter's two example schemas
    (:func:`default_templates`); a pack name from
    :data:`repro.services.scenarios.SCENARIOS` serves that pack alone;
    ``"all"`` mixes the defaults with every pack — five heterogeneous
    schemas in one arrival stream.  ``param_scale`` widens every
    parameter universe exactly as in :func:`default_templates`.
    """
    if param_scale < 1:
        raise ExecutionError("param_scale must be at least 1")
    if scenario == "default":
        return default_templates(param_scale)
    if scenario == "all":
        packs = tuple(
            _scale_template(_pack_template(SCENARIOS[name]), param_scale)
            for name in sorted(SCENARIOS)
        )
        return default_templates(param_scale) + packs
    return (_scale_template(_pack_template(scenario_pack(scenario)), param_scale),)


def generate_workload(
    templates: Sequence[QueryTemplate], config: WorkloadConfig
) -> list[Request]:
    """Sample a deterministic arrival stream from the templates.

    Inter-arrival gaps are exponential with mean ``1/rate`` (a Poisson
    process on virtual time).  Template choice is Zipf over the template
    list; follow-ups target a uniformly drawn earlier ``run`` request of
    the stream (the scheduler parks a follow-up until its target
    completes, so generation never needs completion knowledge).
    """
    if not templates:
        raise ExecutionError("workload needs at least one template")
    by_name = {template.name: template for template in templates}
    if len(by_name) != len(templates):
        raise ExecutionError("template names must be unique")
    rng = random.Random(config.seed)
    # Session ids come from a *separate* seeded stream so the arrival /
    # parameter draws stay bit-identical to workloads generated before
    # sharding existed (same main-rng consumption).
    sid_rng = random.Random((config.seed << 1) ^ 0x5E5510)
    used_sids: set[int] = set()

    def next_session_id() -> int:
        while True:
            sid = sid_rng.randrange(config.session_space)
            if sid not in used_sids:
                used_sids.add(sid)
                return sid

    kinds = sorted(config.followup_mix)
    kind_weights = [config.followup_mix[kind] for kind in kinds]
    now = 0.0
    requests: list[Request] = []
    runs: list[Request] = []
    for request_id in range(config.num_requests):
        now += rng.expovariate(config.rate)
        if runs and rng.random() < config.followup_fraction:
            target = runs[rng.randrange(len(runs))]
            template = by_name[target.template]
            kind = rng.choices(kinds, weights=kind_weights)[0]
            if kind == "rerank" and not template.rerank_weights:
                kind = "more"
            if kind == "rerank":
                weights = template.rerank_weights[
                    rng.randrange(len(template.rerank_weights))
                ]
                request = Request(
                    request_id=request_id,
                    kind="rerank",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    weights=dict(weights),
                    target=target.request_id,
                    session_id=target.session_id,
                )
            elif kind == "resubmit":
                request = Request(
                    request_id=request_id,
                    kind="resubmit",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    inputs=template.sample_inputs(rng, config.skew),
                    target=target.request_id,
                    session_id=target.session_id,
                )
            else:
                request = Request(
                    request_id=request_id,
                    kind="more",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    target=target.request_id,
                    session_id=target.session_id,
                )
        else:
            template = templates[zipf_index(rng, len(templates), config.skew)]
            request = Request(
                request_id=request_id,
                kind="run",
                template=template.name,
                schema=template.schema,
                arrival=now,
                inputs=template.sample_inputs(rng, config.skew),
                session_id=next_session_id(),
            )
            runs.append(request)
        requests.append(request)
    return requests
