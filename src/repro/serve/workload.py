"""Workload generation: query templates sampled into arrival streams.

A serving benchmark needs *traffic*, not one query: a stream of requests
drawn from parameterized **query templates** (the Fig. 3 movie-night and
Fig. 10 conference-trip schemas), arriving over virtual time at a
configurable rate, with parameter values drawn from a skewed (Zipf-like)
distribution so that popular parameter combinations repeat — the regime
where cross-query sharing pays off, exactly as popular keywords repeat in
a real multi-domain search service.

Everything is a pure function of the workload seed: arrival times come
from a seeded exponential inter-arrival draw, template choice and
parameter picks from the same generator.  The same
:class:`WorkloadConfig` therefore yields the *identical* request stream
for the shared and isolated serving modes, making their comparison
apples-to-apples.

A fraction of requests are **follow-up interactions** on an earlier
request's session — ``more`` (grow the fetch factors), ``rerank``
(re-weight the ranking function; costs no service calls), ``resubmit``
(new INPUT bindings, same plan) — so the liquid-query surface of
Section 3.2 flows through the scheduler alongside fresh queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ExecutionError
from repro.services.marts import (
    CONFERENCE_QUERY,
    RUNNING_EXAMPLE_QUERY,
    conference_trip_registry,
    movie_night_registry,
)

__all__ = [
    "QueryTemplate",
    "Request",
    "WorkloadConfig",
    "default_templates",
    "generate_workload",
]


def zipf_index(rng: random.Random, n: int, skew: float) -> int:
    """Draw an index in ``[0, n)`` with probability ∝ ``1/(i+1)**skew``.

    ``skew=0`` is uniform; larger values concentrate mass on the first
    few options (the "popular keywords" of the workload).
    """
    if n <= 0:
        raise ExecutionError("cannot draw from an empty option list")
    weights = [1.0 / (i + 1) ** skew for i in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if point < acc:
            return index
    return n - 1  # pragma: no cover - float-edge fallback


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterized query: fixed text, sampled INPUT bindings.

    ``parameter_space`` maps each INPUT variable to its candidate values,
    ordered most-popular first — :meth:`sample_inputs` draws each
    independently with Zipf skew.  ``rerank_weights`` are the alternative
    ranking-weight sets a ``rerank`` follow-up may switch to.
    """

    name: str
    schema: str
    query_text: str
    registry_factory: Callable[[], Any]
    parameter_space: Mapping[str, Sequence[Any]]
    rerank_weights: Sequence[Mapping[str, float]] = ()

    def sample_inputs(self, rng: random.Random, skew: float) -> dict[str, Any]:
        return {
            name: options[zipf_index(rng, len(options), skew)]
            for name, options in sorted(self.parameter_space.items())
        }


@dataclass(frozen=True)
class Request:
    """One arrival in the serving workload.

    ``kind`` is ``run`` (a fresh query), or a follow-up interaction —
    ``more`` / ``rerank`` / ``resubmit`` — on the session opened by the
    ``run`` request named in ``target``.
    """

    request_id: int
    kind: str
    template: str
    schema: str
    arrival: float
    inputs: Mapping[str, Any] | None = None
    weights: Mapping[str, float] | None = None
    target: int | None = None
    k: int | None = None


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the arrival stream (all consumed by one seeded RNG)."""

    num_requests: int = 40
    rate: float = 1.0  # mean arrivals per virtual second
    skew: float = 1.3  # Zipf exponent over parameter popularity
    seed: int = 2009
    followup_fraction: float = 0.25
    #: Relative odds of each follow-up kind when a follow-up is drawn.
    followup_mix: Mapping[str, float] = field(
        default_factory=lambda: {"more": 0.4, "rerank": 0.35, "resubmit": 0.25}
    )

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ExecutionError("num_requests must be positive")
        if self.rate <= 0:
            raise ExecutionError("arrival rate must be positive")
        if not 0.0 <= self.followup_fraction < 1.0:
            raise ExecutionError("followup_fraction must be in [0, 1)")


def default_templates() -> tuple[QueryTemplate, ...]:
    """The two built-in templates over the chapter's example schemas.

    Parameter universes are deliberately small and head-heavy: under the
    default skew many requests bind the same (genre, country, date) for
    ``Movie1`` or the same (topic, city, date) for the conference trip,
    so concurrent queries issue *identical* service invocations — the
    sharing opportunity the serving runtime exploits.
    """
    return (
        QueryTemplate(
            name="movie-night",
            schema="movie",
            query_text=RUNNING_EXAMPLE_QUERY,
            registry_factory=movie_night_registry,
            parameter_space={
                "INPUT1": [f"genre#{i}" for i in (3, 1, 5)],
                "INPUT2": ["country#1", "country#2"],
                "INPUT3": ["2009-03-01", "2009-06-01"],
                "INPUT4": [f"address#{i}" for i in (17, 3)],
                "INPUT5": [f"city#{i}" for i in (4, 2)],
                "INPUT6": ["category#2", "category#1"],
            },
            rerank_weights=(
                {"M": 0.6, "T": 0.2, "R": 0.2},
                {"M": 0.2, "T": 0.3, "R": 0.5},
            ),
        ),
        QueryTemplate(
            name="conference-trip",
            schema="conference",
            query_text=CONFERENCE_QUERY,
            registry_factory=conference_trip_registry,
            parameter_space={
                "INPUT1": [f"topic#{i}" for i in (5, 2)],
                "INPUT2": [26.0, 20.0],
                "INPUT3": ["city#0", "city#7"],
                "INPUT4": ["2009-06-15", "2009-09-01"],
            },
            rerank_weights=(
                {"F": 0.8, "H": 0.2},
                {"F": 0.3, "H": 0.7},
            ),
        ),
    )


def generate_workload(
    templates: Sequence[QueryTemplate], config: WorkloadConfig
) -> list[Request]:
    """Sample a deterministic arrival stream from the templates.

    Inter-arrival gaps are exponential with mean ``1/rate`` (a Poisson
    process on virtual time).  Template choice is Zipf over the template
    list; follow-ups target a uniformly drawn earlier ``run`` request of
    the stream (the scheduler parks a follow-up until its target
    completes, so generation never needs completion knowledge).
    """
    if not templates:
        raise ExecutionError("workload needs at least one template")
    by_name = {template.name: template for template in templates}
    if len(by_name) != len(templates):
        raise ExecutionError("template names must be unique")
    rng = random.Random(config.seed)
    kinds = sorted(config.followup_mix)
    kind_weights = [config.followup_mix[kind] for kind in kinds]
    now = 0.0
    requests: list[Request] = []
    runs: list[Request] = []
    for request_id in range(config.num_requests):
        now += rng.expovariate(config.rate)
        if runs and rng.random() < config.followup_fraction:
            target = runs[rng.randrange(len(runs))]
            template = by_name[target.template]
            kind = rng.choices(kinds, weights=kind_weights)[0]
            if kind == "rerank" and not template.rerank_weights:
                kind = "more"
            if kind == "rerank":
                weights = template.rerank_weights[
                    rng.randrange(len(template.rerank_weights))
                ]
                request = Request(
                    request_id=request_id,
                    kind="rerank",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    weights=dict(weights),
                    target=target.request_id,
                )
            elif kind == "resubmit":
                request = Request(
                    request_id=request_id,
                    kind="resubmit",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    inputs=template.sample_inputs(rng, config.skew),
                    target=target.request_id,
                )
            else:
                request = Request(
                    request_id=request_id,
                    kind="more",
                    template=template.name,
                    schema=template.schema,
                    arrival=now,
                    target=target.request_id,
                )
        else:
            template = templates[zipf_index(rng, len(templates), config.skew)]
            request = Request(
                request_id=request_id,
                kind="run",
                template=template.name,
                schema=template.schema,
                arrival=now,
                inputs=template.sample_inputs(rng, config.skew),
            )
            runs.append(request)
        requests.append(request)
    return requests
