"""Session checkpoints: versioned, seed-stable serialization by replay.

A :class:`~repro.engine.liquid.LiquidQuerySession` cannot be pickled
mid-plan: its execution state lives in a suspended step generator.  But
it does not need to be.  The simulated substrate derives *every* source
of nondeterminism — tuple data, latency draws, fault draws, retry
jitter, availability gates — from seeds and binding values alone, so a
session is fully determined by

* its **construction recipe** (schema, query text, optimizer metric,
  data seed, fault model, retry policy, growth factor, backend), and
* its **interaction journal** (the ordered ``run``/``more``/``rerank``/
  ``resubmit`` calls it has served, plus the in-flight interaction's
  step count).

A checkpoint stores exactly that, and restore *replays* it: rebuild the
session from the recipe, re-drive every journaled interaction, then
advance the in-flight stepper to its recorded step.  Chunk cursors,
retry attempt counters, backoff waits, RNG states, and the virtual-clock
offset all reappear bit-for-bit because they were never stored — they
are recomputed by the same deterministic machinery that produced them.

What is deliberately **not** captured: shared cross-query caches (their
content belongs to the serving runtime, and a cache hit advances no
clock — replaying one would corrupt the timeline), tracers, and asyncio
wall-clock context.  Callers reattach those at restore.

**Witnesses.**  Each checkpoint records integrity witnesses — plan
signature and render hash, result digest, fetch vector, ranking
weights, and (for exactly replayable sessions: virtual backend, private
invocation cache) the clock offset, call count, and a call-log digest.
Restore verifies them and raises
:class:`~repro.errors.CheckpointIntegrityError` on divergence, so a
stale registry or a changed seed fails loudly instead of silently
serving different data.

**Store.**  :class:`CheckpointStore` is an atomic file backend: write
to a temp file, fsync, ``os.replace`` — a crash mid-write leaves the
previous checkpoint intact, never a torn one.  Payloads carry a schema
``version`` and a content hash; :func:`register_migration` installs
hooks that upgrade older payloads on load.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.cost import DEFAULT_METRICS
from repro.core.optimizer import Optimizer, OptimizerConfig, plan_signature
from repro.engine.liquid import LiquidQuerySession
from repro.engine.retry import Degradation, RetryPolicy
from repro.errors import (
    CheckpointError,
    CheckpointIntegrityError,
    SearchComputingError,
)
from repro.query.compile import compile_query
from repro.query.parser import parse_query
from repro.services.marts import conference_trip_registry, movie_night_registry
from repro.services.scenarios import SCENARIOS
from repro.services.simulated import (
    FaultModel,
    FaultProfile,
    LatencyModel,
    ServicePool,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "REGISTRY_FACTORIES",
    "checkpoint_session",
    "decode_value",
    "encode_value",
    "register_migration",
    "register_registry_factory",
    "restore_session",
]

#: Current checkpoint payload schema version.
CHECKPOINT_VERSION = 1

#: Registries resolvable by schema name at restore time.
REGISTRY_FACTORIES: dict[str, Callable[[], Any]] = {
    "movie": movie_night_registry,
    "conference": conference_trip_registry,
    **{pack.schema: pack.registry_factory for pack in SCENARIOS.values()},
}

#: Payload migrations: version N -> callable upgrading an N payload to N+1.
_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}


def register_registry_factory(schema: str, factory: Callable[[], Any]) -> None:
    """Make a registry resolvable by schema name at restore time."""
    REGISTRY_FACTORIES[schema] = factory


def register_migration(from_version: int, migrate: Callable[[dict], dict]) -> None:
    """Install a payload migration hook (``from_version`` → next).

    On load, a payload older than :data:`CHECKPOINT_VERSION` is passed
    through the chain of migrations until current; a gap in the chain
    raises :class:`~repro.errors.CheckpointError`.
    """
    _MIGRATIONS[from_version] = migrate


def _migrate(payload: dict) -> dict:
    version = payload.get("version")
    if not isinstance(version, int):
        raise CheckpointError("checkpoint payload has no integer 'version'")
    while version < CHECKPOINT_VERSION:
        migrate = _MIGRATIONS.get(version)
        if migrate is None:
            raise CheckpointError(
                f"no migration registered from checkpoint version {version}"
            )
        payload = migrate(payload)
        new_version = payload.get("version")
        if not isinstance(new_version, int) or new_version <= version:
            raise CheckpointError(
                f"migration from version {version} did not advance the payload"
            )
        version = new_version
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version} is newer than this build "
            f"({CHECKPOINT_VERSION})"
        )
    return payload


# -- value codec ---------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """JSON-encode a binding/tuple value, preserving tuple-ness.

    Frozen tuple values (:func:`repro.model.tuples.freeze_value` turns
    repeating groups into nested tuples) round-trip through a tagged
    form; scalars pass through untouched.
    """
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v) for v in value]}
    if isinstance(value, Mapping):
        return {"__map__": [[k, encode_value(v)] for k, v in value.items()]}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__list__" in value:
            return [decode_value(v) for v in value["__list__"]]
        if "__map__" in value:
            return {k: decode_value(v) for k, v in value["__map__"]}
    return value


def _encode_mapping(mapping: Mapping[str, Any] | None) -> dict | None:
    if mapping is None:
        return None
    return {key: encode_value(value) for key, value in mapping.items()}


def _decode_mapping(mapping: Mapping[str, Any] | None) -> dict | None:
    if mapping is None:
        return None
    return {key: decode_value(value) for key, value in mapping.items()}


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# -- store ---------------------------------------------------------------------

_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")
_SUFFIX = ".ckpt.json"


@dataclass
class CheckpointStore:
    """Atomic, content-hashed file store for checkpoint payloads.

    One file per key under ``root``.  Writes go to a temp file in the
    same directory and are published with ``os.replace`` after fsync, so
    a reader (or a crash) never observes a torn checkpoint — at worst
    the previous one.  ``load`` verifies the content hash and applies
    registered migrations.
    """

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise CheckpointError(f"invalid checkpoint key {key!r}")
        return self.root / f"{key}{_SUFFIX}"

    def save(self, key: str, payload: dict) -> Path:
        path = self.path_for(key)
        record = {"checksum": content_hash(payload), "payload": payload}
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        data = json.dumps(record, sort_keys=True, indent=1)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def load(self, key: str) -> dict:
        path = self.path_for(key)
        if not path.exists():
            raise CheckpointError(f"no checkpoint {key!r} in {self.root}")
        with open(path, encoding="utf-8") as handle:
            try:
                record = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CheckpointIntegrityError(
                    f"checkpoint {key!r} is not valid JSON: {exc}"
                ) from exc
        payload = record.get("payload")
        checksum = record.get("checksum")
        if payload is None or checksum is None:
            raise CheckpointIntegrityError(
                f"checkpoint {key!r} is missing payload or checksum"
            )
        if content_hash(payload) != checksum:
            raise CheckpointIntegrityError(
                f"checkpoint {key!r} failed its content-hash check"
            )
        return _migrate(payload)

    def keys(self, prefix: str = "") -> list[str]:
        found = []
        for path in self.root.iterdir():
            if path.name.endswith(_SUFFIX) and not path.name.startswith("."):
                key = path.name[: -len(_SUFFIX)]
                if key.startswith(prefix):
                    found.append(key)
        return sorted(found)

    def latest(self, prefix: str = "") -> str | None:
        """Highest-sorting key with the prefix (keys embed a sequence)."""
        keys = self.keys(prefix)
        return keys[-1] if keys else None

    def delete(self, key: str) -> None:
        path = self.path_for(key)
        if path.exists():
            path.unlink()


# -- checkpoint / restore ------------------------------------------------------


def _result_digest(tuples) -> str:
    from repro.serve.bench import result_digest

    return result_digest(tuples)


def _log_digest(records) -> str:
    joined = "\n".join(repr(record) for record in records)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _encode_profile(profile: FaultProfile) -> dict:
    return {
        "failure_rate": profile.failure_rate,
        "timeout_rate": profile.timeout_rate,
        "slow_factor": profile.slow_factor,
        "outage": profile.outage,
    }


def _decode_profile(data: Mapping[str, Any]) -> FaultProfile:
    return FaultProfile(
        failure_rate=data["failure_rate"],
        timeout_rate=data["timeout_rate"],
        slow_factor=data["slow_factor"],
        outage=data["outage"],
    )


def _encode_fault_model(model: FaultModel) -> dict:
    return {
        "default": _encode_profile(model.default),
        "per_interface": {
            name: _encode_profile(profile)
            for name, profile in sorted(model.per_interface.items())
        },
    }


def _decode_fault_model(data: Mapping[str, Any]) -> FaultModel:
    return FaultModel(
        default=_decode_profile(data["default"]),
        per_interface={
            name: _decode_profile(profile)
            for name, profile in data["per_interface"].items()
        },
    )


def _encode_retry(policy: RetryPolicy | None) -> dict | None:
    if policy is None:
        return None
    return {
        "max_attempts": policy.max_attempts,
        "base_backoff": policy.base_backoff,
        "backoff_multiplier": policy.backoff_multiplier,
        "jitter_fraction": policy.jitter_fraction,
        "call_timeout": policy.call_timeout,
    }


def _decode_retry(data: Mapping[str, Any] | None) -> RetryPolicy | None:
    if data is None:
        return None
    return RetryPolicy(
        max_attempts=data["max_attempts"],
        base_backoff=data["base_backoff"],
        backoff_multiplier=data["backoff_multiplier"],
        jitter_fraction=data["jitter_fraction"],
        call_timeout=data["call_timeout"],
    )


def _metric_name(metric) -> str:
    name = getattr(metric, "name", None)
    if name not in DEFAULT_METRICS:
        raise CheckpointError(
            f"optimizer metric {metric!r} is not one of the named metrics; "
            "checkpoints can only record metrics from DEFAULT_METRICS"
        )
    return name


def _encode_entry(entry: Mapping[str, Any]) -> dict:
    encoded: dict[str, Any] = {
        "kind": entry["kind"],
        "k": entry.get("k"),
        "steps": entry.get("steps", 0),
        "failed": bool(entry.get("failed", False)),
    }
    if "inputs" in entry:
        encoded["inputs"] = _encode_mapping(entry["inputs"])
    if "weights" in entry:
        encoded["weights"] = _encode_mapping(entry["weights"])
    return encoded


def checkpoint_session(
    session: LiquidQuerySession,
    *,
    schema: str,
    query_text: str,
    template: str | None = None,
    metric: str = "execution-time",
) -> dict:
    """Serialize a session into a versioned, replayable payload.

    ``schema`` must resolve through :data:`REGISTRY_FACTORIES` (or a
    registry must be passed to :func:`restore_session` explicitly);
    ``query_text`` is the session's original query string (a compiled
    query keeps no source text); ``metric`` names the optimizer metric
    the plan was derived with.
    """
    if metric not in DEFAULT_METRICS:
        raise CheckpointError(
            f"unknown metric {metric!r}; expected one of {sorted(DEFAULT_METRICS)}"
        )
    pool = session.pool
    options = session.executor_options
    shared_cache = options.get("invocation_cache") is not None
    exact = session.backend == "virtual" and not shared_cache
    signature = plan_signature(session.query, metric=DEFAULT_METRICS[metric])
    witness = {
        "plan_signature": repr(signature),
        "plan_render": hashlib.sha256(
            session.candidate.render().encode("utf-8")
        ).hexdigest(),
        "fetch_vector": dict(session.candidate.fetch_vector()),
        "fetches": dict(session.fetch_factors),
        "ranking": dict(session._ranking.weights),
        "result_digest": _result_digest(session._raw),
        "result_count": session.result_count,
        "exact": exact,
        "clock": pool.clock.now if exact else None,
        "total_calls": pool.log.total_calls() if exact else None,
        "log_digest": _log_digest(pool.log.records) if exact else None,
    }
    retry = options.get("retry")
    degradation = options.get("degradation")
    payload: dict[str, Any] = {
        "version": CHECKPOINT_VERSION,
        "kind": "liquid-session",
        "schema": schema,
        "template": template,
        "query_text": query_text,
        "metric": metric,
        "backend": session.backend,
        "growth": session.growth,
        "data_seed": pool.global_seed,
        "latency_jitter": pool.latency_model.jitter_fraction,
        "fault_model": _encode_fault_model(pool.fault_model),
        "retry": _encode_retry(retry),
        "degradation": (
            Degradation.coerce(degradation).value if degradation is not None else None
        ),
        "invocation_cache_size": options.get("invocation_cache_size"),
        "shared_cache": shared_cache,
        "inputs": _encode_mapping(session.initial_inputs),
        "journal": [_encode_entry(entry) for entry in session.interaction_journal],
        "inflight": (
            _encode_entry(session.inflight_interaction)
            if session.inflight_interaction is not None
            else None
        ),
        "witness": witness,
    }
    return payload


def _replay_entry(session: LiquidQuerySession, entry: Mapping[str, Any]) -> None:
    kind = entry["kind"]
    k = entry.get("k")
    try:
        if kind == "run":
            session.run(k)
        elif kind == "more":
            session.more(k)
        elif kind == "rerank":
            session.rerank(_decode_mapping(entry["weights"]), k)
        elif kind == "resubmit":
            session.resubmit(_decode_mapping(entry["inputs"]), k)
        else:
            raise CheckpointError(f"unknown journal entry kind {kind!r}")
    except SearchComputingError:
        if not entry.get("failed"):
            raise
        return
    if entry.get("failed"):
        raise CheckpointIntegrityError(
            f"journaled {kind!r} interaction failed originally but "
            "succeeded on replay — the substrate diverged"
        )


def _start_inflight(session: LiquidQuerySession, entry: Mapping[str, Any]):
    kind = entry["kind"]
    k = entry.get("k")
    if kind == "run":
        return session.run_steps(k)
    if kind == "more":
        return session.more_steps(k)
    if kind == "resubmit":
        return session.resubmit_steps(_decode_mapping(entry["inputs"]), k)
    raise CheckpointError(f"cannot resume an in-flight {kind!r} interaction")


def restore_session(
    payload: dict,
    *,
    registry=None,
    optimizer_config: OptimizerConfig | None = None,
    candidate=None,
    invocation_cache=None,
    tracer=None,
    verify: bool = True,
) -> LiquidQuerySession:
    """Rebuild a session from a checkpoint payload by journal replay.

    The restored session is returned with
    :attr:`~repro.engine.liquid.LiquidQuerySession.pending_stepper` set
    to the re-suspended mid-interaction step generator when the
    checkpoint captured one (``None`` otherwise).

    ``registry``/``optimizer_config``/``candidate`` override the recipe
    (e.g. a custom registry not in :data:`REGISTRY_FACTORIES`);
    ``invocation_cache``/``tracer`` reattach the shared state that
    checkpoints deliberately do not capture.  With ``verify`` (default)
    the replayed state is checked against the recorded witnesses.
    """
    payload = _migrate(dict(payload))
    if payload.get("kind") != "liquid-session":
        raise CheckpointError(
            f"payload kind {payload.get('kind')!r} is not a session checkpoint"
        )
    schema = payload["schema"]
    if registry is None:
        factory = REGISTRY_FACTORIES.get(schema)
        if factory is None:
            raise CheckpointError(
                f"no registry factory for schema {schema!r}; pass registry= "
                "or register one via register_registry_factory"
            )
        registry = factory()
    compiled = compile_query(parse_query(payload["query_text"]), registry)
    metric = DEFAULT_METRICS[payload["metric"]]
    if optimizer_config is None:
        optimizer_config = OptimizerConfig(metric=metric)
    if candidate is None:
        candidate = Optimizer(compiled, optimizer_config).optimize().best
    if candidate is None:
        raise CheckpointError("re-optimization produced no plan candidate")
    witness = payload.get("witness") or {}
    if verify and witness:
        signature = plan_signature(compiled, metric=metric)
        if repr(signature) != witness["plan_signature"]:
            raise CheckpointIntegrityError(
                "plan signature mismatch: the registry or query no longer "
                "matches the checkpointed session"
            )
        render_hash = hashlib.sha256(candidate.render().encode("utf-8")).hexdigest()
        if render_hash != witness["plan_render"]:
            raise CheckpointIntegrityError(
                "re-optimized plan differs from the checkpointed plan "
                "(optimizer config mismatch?)"
            )
        if dict(candidate.fetch_vector()) != witness["fetch_vector"]:
            raise CheckpointIntegrityError(
                "re-optimized fetch vector differs from the checkpointed one"
            )
    pool = ServicePool(
        registry,
        global_seed=payload["data_seed"],
        latency_model=LatencyModel(jitter_fraction=payload["latency_jitter"]),
        fault_model=_decode_fault_model(payload["fault_model"]),
    )
    executor_options: dict[str, Any] = {}
    retry = _decode_retry(payload.get("retry"))
    if retry is not None:
        executor_options["retry"] = retry
    if payload.get("degradation") is not None:
        executor_options["degradation"] = Degradation(payload["degradation"])
    if payload.get("invocation_cache_size") is not None:
        executor_options["invocation_cache_size"] = payload["invocation_cache_size"]
    if invocation_cache is not None:
        executor_options["invocation_cache"] = invocation_cache
    if tracer is not None:
        executor_options["tracer"] = tracer
    session = LiquidQuerySession(
        candidate=candidate,
        query=compiled,
        pool=pool,
        inputs=_decode_mapping(payload["inputs"]),
        growth=payload["growth"],
        executor_options=executor_options,
        backend=payload["backend"],
    )
    for entry in payload["journal"]:
        _replay_entry(session, entry)
    stepper = None
    inflight = payload.get("inflight")
    if inflight is not None:
        stepper = _start_inflight(session, inflight)
        for _ in range(int(inflight.get("steps", 0))):
            try:
                next(stepper)
            except StopIteration:
                # The replay had fewer steps than the original consumed
                # (possible only for non-exact sessions, where a shared
                # cache absorbed round trips) — the interaction simply
                # completed; nothing is left in flight.
                stepper = None
                break
    session.pending_stepper = stepper
    if verify and witness:
        _verify_replay(session, witness)
    return session


def _verify_replay(session: LiquidQuerySession, witness: Mapping[str, Any]) -> None:
    problems: list[str] = []
    if _result_digest(session._raw) != witness["result_digest"]:
        problems.append("result digest")
    if dict(session.fetch_factors) != witness["fetches"]:
        problems.append("fetch factors")
    if dict(session._ranking.weights) != witness["ranking"]:
        problems.append("ranking weights")
    if witness.get("exact"):
        pool = session.pool
        if pool.clock.now != witness["clock"]:
            problems.append(
                f"virtual clock ({pool.clock.now} != {witness['clock']})"
            )
        if pool.log.total_calls() != witness["total_calls"]:
            problems.append(
                f"call count ({pool.log.total_calls()} != {witness['total_calls']})"
            )
        if _log_digest(pool.log.records) != witness["log_digest"]:
            problems.append("call-log digest")
    if problems:
        raise CheckpointIntegrityError(
            "replayed session diverged from checkpoint witnesses: "
            + ", ".join(problems)
        )
