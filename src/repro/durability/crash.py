"""Crash-injection harness: SIGKILL a serving worker, resume, compare.

The durability claim is end-to-end: a worker killed *without warning* —
``SIGKILL``, no handlers, no flushing — must lose nothing a checkpoint
already covered, and the resumed run's merged digests must be
byte-identical to an uninterrupted run of the same seeded workload.

The kill point is deterministic and race-free: the worker subprocess
serves with :func:`~repro.durability.serve.serve_workload_durable` and
an ``on_write`` hook that sends itself ``SIGKILL`` immediately after
the N-th checkpoint is durably published (``os.replace`` has returned),
so the harness never depends on timing and the surviving checkpoint is
never torn.  The parent then:

1. computes the **uninterrupted baseline** in-process (same workload,
   checkpointing off),
2. runs the worker and waits for it to die mid-run (exit code must be
   ``-SIGKILL``),
3. **resumes** in-process from the surviving checkpoint and serves the
   remainder,
4. gates ``combined_digest(resumed) == combined_digest(baseline)``.

Run as a module for the worker entry point::

    python -m repro.durability.crash --worker --dir CKPTDIR ...
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro.durability.serve import ServeCheckpointer, serve_workload_durable

__all__ = ["run_crash_resume"]


def _serve_args(options: dict[str, Any]) -> dict[str, Any]:
    return {
        "rate": options["rate"],
        "num_requests": options["num_requests"],
        "seed": options["seed"],
        "scenario": options["scenario"],
        "num_shards": options["num_shards"],
        "skew": options["skew"],
        "followup_fraction": options["followup_fraction"],
        "max_concurrency": options["max_concurrency"],
        "default_service_rate": options["default_service_rate"],
        "session_space": options["session_space"],
    }


def run_crash_resume(
    *,
    num_requests: int = 2_000,
    rate: float = 4.0,
    seed: int = 2009,
    scenario: str = "default",
    num_shards: int = 1,
    checkpoint_every: int = 50,
    kill_after_checkpoints: int = 3,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    default_service_rate: float | None = 4.0,
    session_space: int = 1_000_000,
    workdir: "str | Path | None" = None,
    timeout: float = 1_200.0,
) -> dict[str, Any]:
    """Kill a serving worker mid-run, resume it, gate digest equality.

    Returns a JSON-serialisable report with the baseline and resumed
    combined digests and the gates: ``worker_killed`` (the subprocess
    really died to SIGKILL, not completion), ``checkpoint_survived``,
    and ``digests_equal``.
    """
    from repro.serve.bench import combined_digest

    options = {
        "rate": rate,
        "num_requests": num_requests,
        "seed": seed,
        "scenario": scenario,
        "num_shards": num_shards,
        "skew": skew,
        "followup_fraction": followup_fraction,
        "max_concurrency": max_concurrency,
        "default_service_rate": default_service_rate,
        "session_space": session_space,
    }
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-crash-")
        workdir = own_tmp.name
    workdir = Path(workdir)
    try:
        # 1. Uninterrupted baseline (checkpointing off — pure serving).
        _, baseline_digests, _ = serve_workload_durable(
            checkpoint_dir=workdir / "baseline",
            checkpoint_every=0,
            **_serve_args(options),
        )
        baseline = combined_digest(baseline_digests)

        # 2. The worker, killed after its N-th checkpoint write.
        checkpoint_dir = workdir / "checkpoints"
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable,
            "-m",
            "repro.durability.crash",
            "--worker",
            "--dir", str(checkpoint_dir),
            "--num-requests", str(num_requests),
            "--rate", str(rate),
            "--seed", str(seed),
            "--scenario", scenario,
            "--num-shards", str(num_shards),
            "--checkpoint-every", str(checkpoint_every),
            "--kill-after", str(kill_after_checkpoints),
            "--skew", str(skew),
            "--followup-fraction", str(followup_fraction),
            "--max-concurrency", str(max_concurrency),
            "--session-space", str(session_space),
        ]
        if default_service_rate is not None:
            command += ["--default-service-rate", str(default_service_rate)]
        worker = subprocess.run(
            command, env=env, capture_output=True, text=True, timeout=timeout
        )
        worker_killed = worker.returncode == -signal.SIGKILL
        surviving = sorted(
            p.name for p in checkpoint_dir.glob("*.ckpt.json")
        ) if checkpoint_dir.exists() else []

        # 3. Resume from the surviving checkpoint, serve the rest.
        report, resumed_digests, info = serve_workload_durable(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=True,
            **_serve_args(options),
        )
        resumed = combined_digest(resumed_digests)

        return {
            "harness": "crash-resume",
            **options,
            "checkpoint_every": checkpoint_every,
            "kill_after_checkpoints": kill_after_checkpoints,
            "worker_returncode": worker.returncode,
            "worker_stderr_tail": worker.stderr[-2000:],
            "surviving_checkpoints": surviving,
            "baseline_digest": baseline,
            "resumed_digest": resumed,
            "baseline_completed": len(baseline_digests),
            "resumed_completed": len(resumed_digests),
            "resume_info": info,
            "resumed_makespan": report.makespan,
            "gates": {
                "worker_killed": worker_killed,
                "checkpoint_survived": info["resumed"],
                "digests_equal": resumed == baseline
                and len(resumed_digests) == len(baseline_digests),
            },
        }
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def _worker_main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-harness serving worker (self-SIGKILLs)"
    )
    parser.add_argument("--worker", action="store_true", required=True)
    parser.add_argument("--dir", required=True)
    parser.add_argument("--num-requests", type=int, required=True)
    parser.add_argument("--rate", type=float, required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--scenario", default="default")
    parser.add_argument("--num-shards", type=int, default=1)
    parser.add_argument("--checkpoint-every", type=int, required=True)
    parser.add_argument("--kill-after", type=int, required=True)
    parser.add_argument("--skew", type=float, default=1.3)
    parser.add_argument("--followup-fraction", type=float, default=0.25)
    parser.add_argument("--max-concurrency", type=int, default=4)
    parser.add_argument("--default-service-rate", type=float, default=None)
    parser.add_argument("--session-space", type=int, default=1_000_000)
    args = parser.parse_args(argv)

    def kill_self(checkpointer: ServeCheckpointer) -> None:
        if args.kill_after and checkpointer.written >= args.kill_after:
            # The N-th checkpoint is on disk (os.replace returned): die
            # the hard way, exactly like a power cut would.
            os.kill(os.getpid(), signal.SIGKILL)

    serve_workload_durable(
        rate=args.rate,
        num_requests=args.num_requests,
        seed=args.seed,
        scenario=args.scenario,
        num_shards=args.num_shards,
        checkpoint_dir=args.dir,
        checkpoint_every=args.checkpoint_every,
        skew=args.skew,
        followup_fraction=args.followup_fraction,
        max_concurrency=args.max_concurrency,
        default_service_rate=args.default_service_rate,
        session_space=args.session_space,
        on_checkpoint=kill_self,
    )
    # Reaching here means the run finished before the kill threshold —
    # the harness treats that as a gate failure (worker_killed False).
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(_worker_main())
