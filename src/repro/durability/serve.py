"""Scheduler-level durability: periodic checkpoints and crash resume.

The serving runtime reaches a *consistent* durable state only at
interaction boundaries: a session checkpoint is replay-based (see
:mod:`repro.durability.checkpoint`), so it can be taken exactly when a
session is quiescent — no suspended step generator, journal complete.
The :class:`ServeCheckpointer` exploits the scheduler's own structure to
find those boundaries for free:

* every time a request reaches a **terminal outcome**, its session has
  just finished an interaction (per-session serialization guarantees no
  other interaction of that session is mid-flight), so the checkpointer
  refreshes that one session's payload in an in-memory cache;
* every N-th terminal outcome, it atomically writes a ``serve``
  checkpoint: the cached session payloads plus every terminal outcome's
  ``(status, digest)``.

Sessions that are mid-interaction at write time appear with the state
of their *last completed* interaction; the in-flight request's outcome
is still ``running`` (not terminal), so on resume it simply re-runs
from arrival against exactly the state it originally started from — the
deterministic substrate makes the re-run byte-identical.  The same
argument covers queued and parked requests.  The one special case is a
``rerank`` journaled in ``_start`` but whose finish event has not fired
yet: it is *not yet* in the cached payload (refresh happens at finish),
so like any running request it re-runs on resume — reranking is
idempotent and call-free, so digests are unaffected either way.

Resume (:func:`resume_state_from`) pre-seeds a
:class:`~repro.serve.scheduler.SessionTable` with the pre-crash
terminal outcomes and known runs, restores every checkpointed session
into the :class:`~repro.serve.sessions.SessionManager`, and serves only
the requests without a terminal outcome.  The merged report then covers
the full workload — pre-crash digests come from the checkpoint, the
rest from the resumed run — and must equal an uninterrupted run's
(:func:`repro.durability.crash.run_crash_resume` gates exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.durability.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    checkpoint_session,
    restore_session,
)
from repro.core.optimizer import OptimizerConfig
from repro.engine.executor import InvocationCache
from repro.errors import CheckpointError
from repro.serve.plancache import PlanCache
from repro.serve.scheduler import (
    RequestOutcome,
    ServeConfig,
    ServeReport,
    ServeScheduler,
    SessionTable,
)
from repro.serve.sessions import SessionManager
from repro.serve.workload import (
    QueryTemplate,
    Request,
    WorkloadConfig,
    generate_workload,
    scenario_templates,
)

__all__ = [
    "ResumeState",
    "ServeCheckpointer",
    "resume_state_from",
    "serve_workload_durable",
]

#: Outcome statuses that will never change again.
_TERMINAL = ("completed", "failed", "rejected")


@dataclass
class ServeCheckpointer:
    """Periodic serve-level checkpointing, driven by terminal outcomes.

    Attach one to a :class:`~repro.serve.scheduler.ServeScheduler` (or
    to every shard of a :class:`~repro.serve.sharding.ShardedServeScheduler`
    — they share the session table, so one checkpointer serves all
    shards).  ``every=0`` disables periodic writes; :meth:`write` can
    still be called explicitly.
    """

    store: CheckpointStore
    sessions: SessionManager
    #: Write a checkpoint every N-th terminal outcome (0 = never).
    every: int = 25
    #: Run fingerprint stored in every checkpoint and verified on
    #: resume (seed, workload size, scenario, shard count, ...).
    meta: dict = field(default_factory=dict)
    #: Key prefix in the store; keys are ``{prefix}-{seq:06d}``.
    prefix: str = "serve"
    #: Called after each durable write with this checkpointer — the
    #: crash harness injects its SIGKILL here, *after* ``os.replace``
    #: published the file, so a kill never races a half-written state.
    on_write: "Callable[[ServeCheckpointer], None] | None" = None
    terminal_seen: int = 0
    written: int = 0
    _payloads: dict[int, dict] = field(default_factory=dict)

    def on_terminal(self, scheduler: Any, outcome: RequestOutcome) -> None:
        """Scheduler hook: one request just reached a terminal outcome."""
        self.terminal_seen += 1
        self._refresh(outcome)
        if self.every > 0 and self.terminal_seen % self.every == 0:
            self.write(scheduler.table)

    def _refresh(self, outcome: RequestOutcome) -> None:
        """Re-snapshot the finished request's session payload.

        At this instant the session is quiescent and its journal ends
        with exactly this interaction, so the payload's witnesses are
        consistent with its journal — the invariant the resume path
        relies on.  Failed *runs* are skipped: their follow-ups are
        rejected on arrival, so the session can never be needed again.
        """
        request = outcome.request
        if request.kind == "run":
            if outcome.status != "completed":
                return
            root = request.request_id
        else:
            if outcome.status not in ("completed", "failed"):
                return
            root = request.target
            if root is None:
                return
        session = self.sessions._sessions.get(root)
        if session is None or session.inflight_interaction is not None:
            return
        template = self.sessions.template_of(root)
        self._payloads[root] = checkpoint_session(
            session,
            schema=template.schema,
            query_text=template.query_text,
            template=template.name,
            metric=self.sessions.optimizer_config.metric.name,
        )

    def write(self, table: SessionTable) -> str:
        """Atomically persist the current durable state; returns the key."""
        self.written += 1
        key = f"{self.prefix}-{self.written:06d}"
        outcomes = {
            str(rid): {
                "status": outcome.status,
                "digest": outcome.digest,
                "error": outcome.error,
                # Telemetry: everything the observability layer needs to
                # re-emit this outcome's span tree and re-absorb its
                # metrics after a resume (repro.obs.serving.
                # replay_outcome_telemetry).  Results/digests above stay
                # the durable contract; these fields only feed traces.
                "finished_at": outcome.finished_at,
                "started_at": outcome.started_at,
                "queue_wait": outcome.queue_wait,
                "rate_wait": outcome.rate_wait,
                "rate_hits": outcome.rate_hits,
                "round_trips": outcome.round_trips,
                "steps": outcome.steps,
                "shard": outcome.shard,
                "stolen": outcome.stolen,
                "stolen_from": outcome.stolen_from,
                "unparked_at": outcome.unparked_at,
                "wake_reason": outcome.wake_reason,
                "plan_cached": outcome.plan_cached,
            }
            for rid, outcome in table.outcomes.items()
            if outcome.status in _TERMINAL
        }
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "serve",
            "meta": dict(self.meta),
            "outcomes": outcomes,
            "sessions": {str(rid): p for rid, p in self._payloads.items()},
        }
        self.store.save(key, payload)
        if self.on_write is not None:
            self.on_write(self)
        return key


@dataclass
class ResumeState:
    """What :func:`resume_state_from` recovered from the store."""

    key: str
    #: Pre-seeded table (terminal outcomes + known runs) for the
    #: resumed scheduler.
    table: SessionTable
    #: Requests without a terminal outcome — what still needs serving.
    remaining: list[Request]
    #: The checkpointed session payloads, keyed by root request id —
    #: seeded back into the resumed run's checkpointer so a *second*
    #: crash still has every session, touched again or not.
    session_payloads: dict[int, dict]
    restored_sessions: int
    pre_terminal: int


def resume_state_from(
    store: CheckpointStore,
    workload: Sequence[Request],
    manager: SessionManager,
    *,
    prefix: str = "serve",
    expected_meta: Mapping[str, Any] | None = None,
) -> ResumeState | None:
    """Rebuild serving state from the newest checkpoint in ``store``.

    Restores every checkpointed session into ``manager`` (reattaching
    its shared invocation cache) and returns the pre-seeded table plus
    the remaining workload.  ``None`` when the store holds no
    checkpoint — the caller serves the full workload fresh.  A
    ``expected_meta`` mismatch (different seed/workload/scenario) fails
    loudly instead of merging incompatible runs.
    """
    key = store.latest(prefix)
    if key is None:
        return None
    payload = store.load(key)
    if payload.get("kind") != "serve":
        raise CheckpointError(
            f"checkpoint {key!r} is a {payload.get('kind')!r} payload, "
            "not a serve checkpoint"
        )
    if expected_meta is not None and payload.get("meta") != dict(expected_meta):
        raise CheckpointError(
            f"checkpoint {key!r} fingerprint {payload.get('meta')!r} does not "
            f"match this run {dict(expected_meta)!r} — refusing to resume"
        )
    by_id = {request.request_id: request for request in workload}
    table = SessionTable()
    for rid_str, data in payload["outcomes"].items():
        rid = int(rid_str)
        request = by_id.get(rid)
        if request is None:
            raise CheckpointError(
                f"checkpoint {key!r} records request {rid} absent from the "
                "workload — workload/seed mismatch"
            )
        # Telemetry fields default to zero/None when absent (checkpoints
        # written before they were persisted): resume still works, the
        # replayed spans just sit at t=0.
        table.outcomes[rid] = RequestOutcome(
            request=request,
            status=data["status"],
            digest=data.get("digest"),
            error=data.get("error"),
            finished_at=data.get("finished_at", 0.0),
            started_at=data.get("started_at", 0.0),
            queue_wait=data.get("queue_wait", 0.0),
            rate_wait=data.get("rate_wait", 0.0),
            rate_hits=data.get("rate_hits", 0),
            round_trips=data.get("round_trips", 0),
            steps=data.get("steps", 0),
            shard=data.get("shard", 0),
            stolen=data.get("stolen", False),
            stolen_from=data.get("stolen_from"),
            unparked_at=data.get("unparked_at", 0.0),
            wake_reason=data.get("wake_reason"),
            plan_cached=data.get("plan_cached"),
        )
        if request.kind == "run":
            table.known_runs.add(rid)
    restored = 0
    session_payloads: dict[int, dict] = {}
    for rid_str, session_payload in payload["sessions"].items():
        rid = int(rid_str)
        template_name = session_payload.get("template")
        template = manager.templates.get(template_name)
        if template is None:
            raise CheckpointError(
                f"checkpoint {key!r} session {rid} names unknown template "
                f"{template_name!r}"
            )
        session = restore_session(
            session_payload,
            invocation_cache=manager.invocation_cache,
        )
        manager.adopt(rid, session, template)
        session_payloads[rid] = session_payload
        restored += 1
    remaining = [
        request
        for request in workload
        if request.request_id not in table.outcomes
    ]
    return ResumeState(
        key=key,
        table=table,
        remaining=remaining,
        session_payloads=session_payloads,
        restored_sessions=restored,
        pre_terminal=len(table.outcomes),
    )


def serve_workload_durable(
    *,
    rate: float,
    num_requests: int,
    seed: int,
    checkpoint_dir,
    checkpoint_every: int = 25,
    resume: bool = False,
    scenario: str = "default",
    num_shards: int = 1,
    shared: bool = True,
    skew: float = 1.3,
    followup_fraction: float = 0.25,
    max_concurrency: int = 4,
    queue_limit: int = 1_000_000,
    default_service_rate: float | None = 4.0,
    session_space: int = 1_000_000,
    plan_cache_size: int | None = None,
    invocation_cache_size: int | None = None,
    templates: Sequence[QueryTemplate] | None = None,
    workload: Sequence[Request] | None = None,
    on_checkpoint: "Callable[[ServeCheckpointer], None] | None" = None,
    tracer: Any = None,
    slo: Any = None,
    sample_metrics: bool = False,
    join_kernel: str = "binary",
) -> tuple[ServeReport, dict[int, str], dict[str, Any]]:
    """Serve a seeded workload with periodic durable checkpoints.

    The durable twin of :func:`repro.serve.bench.serve_workload` /
    :func:`repro.serve.sharding.serve_workload_sharded`: same seeded
    workload and scheduler semantics, plus a :class:`ServeCheckpointer`
    writing to ``checkpoint_dir`` every ``checkpoint_every`` terminal
    outcomes.  With ``resume=True`` the newest checkpoint (if any) is
    loaded first and only the unfinished requests are served; the
    returned digests always cover the *whole* workload either way.

    ``tracer``/``slo``/``sample_metrics`` thread the observability layer
    through (see :func:`repro.serve.bench.serve_workload`).  On resume,
    pre-crash terminal outcomes are **replayed** into the telemetry
    first (:func:`repro.obs.serving.replay_outcome_telemetry`), so the
    resumed run's trace and metrics cover the whole workload — span
    trees and counters continue across the crash, not restart at it.

    Returns ``(report, digests, info)`` — ``info`` records whether a
    resume happened and from which key.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.serving import replay_outcome_telemetry
    from repro.serve.bench import result_digest

    templates = tuple(templates or scenario_templates(scenario))
    if workload is None:
        workload = generate_workload(
            templates,
            WorkloadConfig(
                num_requests=num_requests,
                rate=rate,
                skew=skew,
                seed=seed,
                followup_fraction=followup_fraction,
                session_space=max(session_space, num_requests),
            ),
        )
    store = CheckpointStore(checkpoint_dir)
    meta = {
        "seed": seed,
        "num_requests": num_requests,
        "rate": rate,
        "scenario": scenario,
        "num_shards": num_shards,
        "skew": skew,
        "followup_fraction": followup_fraction,
    }
    manager = SessionManager(
        templates={template.name: template for template in templates},
        data_seed=seed,
        optimizer_config=OptimizerConfig(join_kernel=join_kernel),
    )
    if shared:
        manager.plan_cache = PlanCache(max_size=plan_cache_size)
        if num_shards > 1:
            from repro.serve.sharding import ShardedInvocationCache

            manager.invocation_cache = ShardedInvocationCache(
                num_shards, max_size=invocation_cache_size
            )
        else:
            manager.invocation_cache = InvocationCache(
                max_size=invocation_cache_size
            )
    checkpointer = ServeCheckpointer(
        store=store,
        sessions=manager,
        every=checkpoint_every,
        meta=meta,
        on_write=on_checkpoint,
    )
    state = None
    if resume:
        state = resume_state_from(
            store, workload, manager, expected_meta=meta
        )
        if state is not None:
            # Continue the durable state, don't restart it: keep every
            # restored session in the payload cache (a second crash must
            # still find sessions untouched since the first), and number
            # new checkpoints after the one we resumed from.
            checkpointer._payloads.update(state.session_payloads)
            checkpointer.written = int(state.key.rsplit("-", 1)[1])
    config = ServeConfig(
        max_concurrency=max_concurrency,
        queue_limit=queue_limit,
        default_service_rate=default_service_rate,
    )
    table = state.table if state is not None else None
    to_serve = state.remaining if state is not None else list(workload)
    metrics = MetricsRegistry()
    telemetry_replayed = 0
    if state is not None:
        # Trace/metric continuity across the crash: re-emit the
        # checkpointed outcomes' span trees and counters before the
        # resumed scheduler adds the live ones.
        telemetry_replayed = replay_outcome_telemetry(
            state.table.outcomes.values(),
            metrics=metrics,
            tracer=tracer,
            slo=slo,
            emit_shard_metrics=(num_shards > 1),
        )
    if num_shards > 1:
        from repro.serve.sharding import ShardedServeScheduler

        scheduler: Any = ShardedServeScheduler(
            manager,
            config,
            metrics,
            tracer,
            num_shards=num_shards,
            digest_fn=result_digest,
            table=table,
            checkpointer=checkpointer,
            slo=slo,
            sample_metrics=sample_metrics,
        )
    else:
        scheduler = ServeScheduler(
            manager,
            config,
            metrics,
            tracer,
            table=table,
            digest_fn=result_digest,
            checkpointer=checkpointer,
            slo=slo,
            sample_metrics=sample_metrics,
        )
    report = scheduler.run(to_serve)
    # The table was shared (and pre-seeded on resume), so the report's
    # outcomes already cover the full workload: pre-crash digests from
    # the checkpoint, the rest from this run.
    digests = {
        outcome.request.request_id: (
            outcome.digest
            if outcome.digest is not None
            else result_digest(outcome.results or ())
        )
        for outcome in report.completed()
    }
    info = {
        "resumed": state is not None,
        "resume_key": state.key if state is not None else None,
        "restored_sessions": state.restored_sessions if state is not None else 0,
        "pre_terminal": state.pre_terminal if state is not None else 0,
        "served": len(to_serve),
        "checkpoints_written": checkpointer.written,
        "terminal_seen": checkpointer.terminal_seen,
        "telemetry_replayed": telemetry_replayed,
    }
    return report, digests, info
