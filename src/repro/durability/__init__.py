"""Durability subsystem: checkpoints, crash recovery, record/replay.

Liquid-query sessions are long-lived — a user asks for *more*, reranks,
resubmits, over minutes or days — so the serving runtime must survive a
crash without losing them.  This package provides:

* :mod:`repro.durability.checkpoint` — versioned, seed-stable session
  checkpoints (replay-based: the journal of interactions is stored, the
  execution state is recomputed deterministically on restore) and the
  atomic, content-hashed :class:`CheckpointStore`;
* :mod:`repro.durability.serve` — scheduler-level periodic
  checkpointing for :class:`~repro.serve.scheduler.ServeScheduler` /
  :class:`~repro.serve.sharding.ShardedServeScheduler`, plus the resume
  path that reloads sessions and serves the remaining workload;
* :mod:`repro.durability.crash` — a crash-injection harness: run a
  serving worker in a subprocess, SIGKILL it mid-run, resume from the
  surviving checkpoint, and gate digest equality against an
  uninterrupted run.

The record/replay service adapter lives with the other service layers
as :mod:`repro.services.recorded`.
"""

from repro.durability.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    REGISTRY_FACTORIES,
    checkpoint_session,
    register_migration,
    register_registry_factory,
    restore_session,
)
from repro.durability.serve import (
    ServeCheckpointer,
    resume_state_from,
    serve_workload_durable,
)
from repro.durability.crash import run_crash_resume

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "REGISTRY_FACTORIES",
    "ServeCheckpointer",
    "checkpoint_session",
    "register_migration",
    "register_registry_factory",
    "restore_session",
    "resume_state_from",
    "run_crash_resume",
    "serve_workload_durable",
]
