"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``registry``  — print a built-in schema catalogue (marts, interfaces,
  patterns).
* ``plan``      — optimize a query and render the chosen fully
  instantiated plan, with optimizer statistics.
* ``run``       — optimize and execute a query on the simulator; print
  the top-k combinations and the call/time accounting.  ``--trace`` /
  ``--trace-format`` export the span tree (JSONL or Chrome
  ``trace_event`` JSON); ``--metrics json`` prints the unified metrics
  snapshot.  ``--backend asyncio`` executes the same plan with really
  concurrent service calls (digest-identical results, wall-clock
  overlap reported).
* ``explain``   — optimize, execute, and print the per-node explain
  tree: estimated vs. actual cardinality, calls, cache hits, probe
  counts, and bottleneck attribution.
* ``topologies``— enumerate the admissible topologies of a query.
* ``serve-bench`` — run the multi-query serving benchmark: the same
  seeded workload with and without plan/invocation sharing, reporting
  throughput, latency percentiles, and round-trip savings; ``--output``
  writes the full ``BENCH_serving.json`` report.  Exits nonzero when a
  sharing gate fails (shared mode issuing more round trips than
  isolated, or per-request results diverging), so CI can gate on it.
  ``--backend asyncio`` serves the same workload on the asyncio
  real-execution backend and gates per-request digests against the
  virtual scheduler's.  ``--scenario`` swaps the workload for a
  heterogeneous scenario pack; ``--checkpoint-every``/``--resume``
  turn the run into a durable serve with periodic checkpoints.
* ``scenarios`` — list the built-in scenario packs (schema, query,
  parameter universes) accepted by ``serve-bench --scenario``.
* ``checkpoint`` — run a query (optionally stopping mid-plan after
  ``--steps`` scheduler steps) and write the session to a checkpoint
  store.
* ``resume``    — restore a checkpointed session, finish any suspended
  interaction, and print the results; ``--list`` shows what a store
  holds.

``run`` exits 0 on success and, by default, also when execution
*degraded* (some services stayed down and results are best-effort
partial).  ``--strict`` turns degradation into exit code 3 with the
failed aliases on stderr — for scripts that must not mistake partial
answers for complete ones.

Built-in schemas: ``movie`` (the running example), ``conference``
(Figs. 2/3), and the scenario-pack schemas ``travel``, ``shopping``,
and ``scholar``.  Custom queries are accepted with ``--query``; INPUT
bindings with repeated ``--input NAME=VALUE`` flags (values are parsed as
Python literals when possible, else kept as strings).
"""

from __future__ import annotations

import argparse
import ast as python_ast
import json
import sys
from typing import Any

from repro.core.cost import DEFAULT_METRICS
from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.core.topology import enumerate_topologies
from repro.engine.async_runner import run_plan_async
from repro.engine.executor import execute_plan
from repro.engine.retry import RetryPolicy
from repro.errors import RetryExhaustedError, SearchComputingError
from repro.joins.wcoj import KNOWN_JOIN_KERNELS
from repro.obs.explain import build_explain
from repro.obs.export import TRACE_FORMATS, write_prometheus, write_trace
from repro.obs.metrics import snapshot_run
from repro.obs.serving import DEFAULT_SLO_THRESHOLDS as _DEFAULT_SLO
from repro.obs.serving import SloTracker, serving_metrics_summary
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.query.compile import compile_query
from repro.query.feasibility import enumerate_binding_choices
from repro.query.parser import parse_query
from repro.services.marts import (
    CONFERENCE_INPUTS,
    CONFERENCE_QUERY,
    RUNNING_EXAMPLE_INPUTS,
    RUNNING_EXAMPLE_QUERY,
    conference_trip_registry,
    movie_night_registry,
)
from repro.services.scenarios import SCENARIOS
from repro.services.simulated import FaultModel, ServicePool

__all__ = ["main", "build_parser"]

_SCHEMAS = {
    "movie": (movie_night_registry, RUNNING_EXAMPLE_QUERY, RUNNING_EXAMPLE_INPUTS),
    "conference": (conference_trip_registry, CONFERENCE_QUERY, CONFERENCE_INPUTS),
}
# The scenario packs expose themselves as schemas too, so plan/run/
# explain/checkpoint work against the serving workloads' registries.
_SCHEMAS.update(
    (pack.schema, (pack.registry_factory, pack.query_text, pack.default_inputs))
    for pack in SCENARIOS.values()
)

# Mirrors repro.serve.workload.scenario_names() without importing the
# serving stack at parse time.
_SCENARIO_CHOICES = ("default", "all", *sorted(SCENARIOS))


def _parse_value(text: str) -> Any:
    try:
        return python_ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _load(args) -> tuple:
    registry_factory, default_query, default_inputs = _SCHEMAS[args.schema]
    registry = registry_factory()
    query_text = args.query or default_query
    inputs = dict(default_inputs)
    for binding in args.input or ():
        name, _, value = binding.partition("=")
        if not name or not value:
            raise SystemExit(f"--input needs NAME=VALUE, got {binding!r}")
        inputs[name.upper()] = _parse_value(value)
    compiled = compile_query(parse_query(query_text), registry)
    return registry, compiled, inputs, query_text


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--schema",
        choices=sorted(_SCHEMAS),
        default="movie",
        help="built-in schema to use (default: movie)",
    )
    parser.add_argument("--query", help="query text (default: the schema's example)")
    parser.add_argument(
        "--input",
        action="append",
        metavar="NAME=VALUE",
        help="bind an INPUT variable (repeatable)",
    )
    parser.add_argument(
        "--metric",
        choices=sorted(DEFAULT_METRICS),
        default="execution-time",
        help="cost metric to optimize (default: execution-time)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        help="anytime expansion budget (default: run to exhaustion)",
    )
    parser.add_argument(
        "--join-kernel",
        choices=KNOWN_JOIN_KERNELS,
        default="binary",
        help="multiway equi-join kernel: binary (pairwise hash cascade, "
        "default), wcoj (worst-case-optimal leapfrog triejoin), or auto "
        "(wcoj for cyclic/multi-predicate join shapes, binary otherwise)",
    )


def _add_backend(parser: argparse.ArgumentParser) -> None:
    """Execution-backend knobs (shared by ``run``, ``explain``, ``serve-bench``)."""
    backend = parser.add_argument_group("execution backend")
    backend.add_argument(
        "--backend",
        choices=("virtual", "asyncio"),
        default="virtual",
        help="virtual: deterministic discrete-event simulation (default); "
        "asyncio: really concurrent service calls on an event loop — "
        "same results, real wall-clock overlap",
    )
    backend.add_argument(
        "--time-scale",
        type=float,
        default=0.001,
        help="asyncio backend: wall seconds slept per virtual second of "
        "simulated latency (default: 0.001)",
    )
    backend.add_argument(
        "--max-connections",
        type=int,
        default=8,
        help="asyncio backend: connection-pool size per service interface "
        "(default: 8)",
    )


def _add_execution(parser: argparse.ArgumentParser) -> None:
    """Simulator/fault knobs shared by ``run`` and ``explain``."""
    parser.add_argument("--seed", type=int, default=2009, help="simulator seed")
    parser.add_argument(
        "--fetch-boost",
        type=int,
        default=1,
        help="multiply every fetch factor (ask for more results)",
    )
    parser.add_argument(
        "--invocation-cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="LRU bound on memoised service invocations; 0 disables the "
        "bound (default: 1024)",
    )
    faults = parser.add_argument_group("fault injection & retries")
    faults.add_argument(
        "--failure-rate",
        type=float,
        default=0.0,
        help="per-call transient failure probability (default: 0)",
    )
    faults.add_argument(
        "--timeout-rate",
        type=float,
        default=0.0,
        help="per-call slow-response probability (default: 0)",
    )
    faults.add_argument(
        "--slow-factor",
        type=float,
        default=10.0,
        help="latency multiplier for slow calls (default: 10)",
    )
    faults.add_argument(
        "--outage",
        action="append",
        metavar="INTERFACE",
        help="mark an interface permanently down (repeatable)",
    )
    faults.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per service call before giving up (default: 3)",
    )
    faults.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base backoff before a retry, in virtual seconds (default: 0.5)",
    )
    faults.add_argument(
        "--call-timeout",
        type=float,
        help="per-call timeout in virtual seconds (default: none)",
    )
    faults.add_argument(
        "--degradation",
        choices=("fail", "partial"),
        default="fail",
        help="on exhausted retries: abort (fail) or return best-effort "
        "partial results (default: fail)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for shell-completion tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Search Computing: multi-domain query optimization & execution",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    registry_cmd = commands.add_parser("registry", help="print a schema catalogue")
    registry_cmd.add_argument(
        "--schema", choices=sorted(_SCHEMAS), default="movie"
    )

    plan_cmd = commands.add_parser("plan", help="optimize and render a plan")
    _add_common(plan_cmd)

    run_cmd = commands.add_parser("run", help="optimize and execute a query")
    _add_common(run_cmd)
    _add_execution(run_cmd)
    _add_backend(run_cmd)
    run_cmd.add_argument(
        "--strict",
        action="store_true",
        help="exit with code 3 (and print the degraded aliases to stderr) "
        "when execution completes but some services stayed down",
    )
    telemetry = run_cmd.add_argument_group("observability")
    telemetry.add_argument(
        "--trace",
        metavar="PATH",
        help="record a span trace of the run and write it to PATH "
        "('-' for stdout)",
    )
    telemetry.add_argument(
        "--trace-format",
        choices=TRACE_FORMATS,
        default="jsonl",
        help="trace encoding: one span per line (jsonl) or Chrome "
        "trace_event JSON loadable in Perfetto (default: jsonl)",
    )
    telemetry.add_argument(
        "--metrics",
        choices=("json",),
        help="print the unified metrics snapshot (optimizer + executor + "
        "call log) in the given format",
    )

    explain_cmd = commands.add_parser(
        "explain",
        help="optimize, execute, and print the per-node explain tree",
    )
    _add_common(explain_cmd)
    _add_execution(explain_cmd)
    _add_backend(explain_cmd)

    topo_cmd = commands.add_parser(
        "topologies", help="enumerate admissible plan topologies"
    )
    _add_common(topo_cmd)

    serve_cmd = commands.add_parser(
        "serve-bench",
        help="benchmark the multi-query serving runtime "
        "(shared vs. isolated caches)",
    )
    serve_cmd.add_argument(
        "--requests", type=int, default=40, help="requests per load level"
    )
    serve_cmd.add_argument(
        "--rates",
        default="0.5,2.0",
        help="comma-separated arrival rates (requests per virtual second)",
    )
    serve_cmd.add_argument("--seed", type=int, default=2009, help="workload/data seed")
    serve_cmd.add_argument(
        "--skew",
        type=float,
        default=1.3,
        help="Zipf exponent over parameter popularity (default: 1.3)",
    )
    serve_cmd.add_argument(
        "--followups",
        type=float,
        default=0.25,
        help="fraction of requests that are more/rerank/resubmit follow-ups",
    )
    serve_cmd.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="scheduler concurrency bound (default: 4)",
    )
    serve_cmd.add_argument(
        "--service-rate",
        type=float,
        default=4.0,
        help="per-service token-bucket rate in calls per virtual second; "
        "0 disables rate limiting (default: 4)",
    )
    serve_cmd.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="serve on N scheduler shards (consistent-hash partitioned "
        "sessions, merged deterministic timeline) instead of the "
        "shared-vs-isolated comparison",
    )
    serve_cmd.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="work stealing between shards (default: on)",
    )
    serve_cmd.add_argument(
        "--shared-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="one cross-shard invocation cache (default) vs. a private "
        "cache per shard (--no-shared-cache)",
    )
    serve_cmd.add_argument(
        "--parallel",
        action="store_true",
        help="run each shard in a real worker process (combine with "
        "--backend asyncio for wall-clock concurrency inside workers)",
    )
    serve_cmd.add_argument(
        "--session-space",
        type=int,
        default=1_000_000,
        help="size of the sparse session-id universe the ring hashes "
        "(default: 1000000)",
    )
    serve_cmd.add_argument(
        "--param-scale",
        type=int,
        default=1,
        help="multiply each template parameter universe (head options "
        "stay most popular) so large workloads keep a steady cache-miss "
        "stream of real service traffic (default: 1)",
    )
    serve_cmd.add_argument(
        "--scenario",
        choices=_SCENARIO_CHOICES,
        default="default",
        help="workload scenario: the chapter's two example schemas "
        "(default), one named pack, or 'all' five schemas mixed into "
        "one arrival stream (see `repro scenarios`)",
    )
    serve_cmd.add_argument(
        "--plan-cache-size",
        type=int,
        metavar="N",
        help="LRU bound on the shared plan cache (default: unbounded)",
    )
    serve_cmd.add_argument(
        "--join-kernel",
        choices=KNOWN_JOIN_KERNELS,
        default="binary",
        help="multiway equi-join kernel every served plan is compiled "
        "for: binary (default), wcoj, or auto; participates in the plan "
        "cache key, so flipping it mid-fleet never replays a plan "
        "compiled for the other kernel",
    )
    serve_cmd.add_argument(
        "--gates",
        choices=("hard", "all"),
        default="hard",
        help="which benchmark gates make the exit code nonzero: the "
        "correctness gates only (hard: identical results, sharing never "
        "costs round trips) or every reported gate including the "
        "performance ones (all)",
    )
    serve_cmd.add_argument(
        "--output",
        metavar="PATH",
        help="write the full benchmark report as JSON to PATH",
    )
    observability = serve_cmd.add_argument_group("observability")
    observability.add_argument(
        "--artifacts-dir",
        default="artifacts",
        metavar="DIR",
        help="directory relative observability artifact paths (--trace, "
        "--metrics-output, --prom, --output) are placed under; created "
        "on demand (default: artifacts)",
    )
    observability.add_argument(
        "--trace",
        metavar="PATH",
        help="record request span trees and write the trace to PATH "
        "('-' for stdout); needs a single --rates value",
    )
    observability.add_argument(
        "--trace-format",
        choices=TRACE_FORMATS,
        default="jsonl",
        help="trace encoding: one span per line (jsonl) or Chrome "
        "trace_event JSON loadable in Perfetto, one swimlane per shard "
        "(default: jsonl)",
    )
    observability.add_argument(
        "--metrics",
        choices=("json",),
        help="print the serving metrics snapshot (counters, gauges, "
        "latency histograms, SLO) as JSON on stdout",
    )
    observability.add_argument(
        "--metrics-output",
        metavar="PATH",
        help="write the metrics snapshot JSON to PATH (readable by "
        "`repro serve-report --metrics PATH`)",
    )
    observability.add_argument(
        "--prom",
        metavar="PATH",
        help="write the metrics in Prometheus text exposition format "
        "to PATH",
    )
    observability.add_argument(
        "--slo-thresholds",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated latency SLO thresholds in virtual seconds "
        f"(default: {','.join(f'{t:g}' for t in _DEFAULT_SLO)})",
    )
    durability = serve_cmd.add_argument_group("durability")
    durability.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="serve durably, checkpointing every N terminal requests "
        "(0 disables; needs --checkpoint-dir and a single rate)",
    )
    durability.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="checkpoint store directory for durable serving",
    )
    durability.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir "
        "(serves the whole workload from scratch when none exists)",
    )
    _add_backend(serve_cmd)

    scenarios_cmd = commands.add_parser(
        "scenarios",
        help="list the scenario packs accepted by serve-bench --scenario",
    )
    scenarios_cmd.add_argument(
        "--registry",
        action="store_true",
        help="also print each pack's full schema catalogue",
    )

    checkpoint_cmd = commands.add_parser(
        "checkpoint",
        help="run a query (optionally stopping mid-plan) and checkpoint "
        "the session",
    )
    _add_common(checkpoint_cmd)
    checkpoint_cmd.add_argument(
        "--seed", type=int, default=2009, help="simulator seed"
    )
    checkpoint_cmd.add_argument(
        "--k", type=int, default=None, help="top-k combinations to request"
    )
    checkpoint_cmd.add_argument(
        "--steps",
        type=int,
        metavar="N",
        help="advance the run only N scheduler steps, then checkpoint "
        "the suspended mid-plan state (default: run to completion)",
    )
    checkpoint_cmd.add_argument(
        "--dir", required=True, help="checkpoint store directory"
    )
    checkpoint_cmd.add_argument(
        "--key", default="session", help="checkpoint key (default: session)"
    )

    resume_cmd = commands.add_parser(
        "resume",
        help="restore a checkpointed session and finish the run",
    )
    resume_cmd.add_argument(
        "--dir", required=True, help="checkpoint store directory"
    )
    resume_cmd.add_argument(
        "--key",
        help="checkpoint key to restore (default: the newest in the store)",
    )
    resume_cmd.add_argument(
        "--list",
        action="store_true",
        help="list the store's checkpoints instead of restoring",
    )
    resume_cmd.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the replay witness checks (trust the checkpoint)",
    )

    serve_report_cmd = commands.add_parser(
        "serve-report",
        help="summarise a serving trace: outcome mix, latency quantiles, "
        "request-time attribution, per-shard balance, SLO violations",
    )
    serve_report_cmd.add_argument(
        "--trace",
        required=True,
        metavar="PATH",
        help="JSONL span trace written by `serve-bench --trace PATH`",
    )
    serve_report_cmd.add_argument(
        "--metrics",
        metavar="PATH",
        help="metrics snapshot JSON written by `serve-bench "
        "--metrics-output PATH` (adds cache hit rates, queue peaks, SLO)",
    )
    serve_report_cmd.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many templates to rank by total request time (default: 5)",
    )
    return parser


def _cmd_registry(args) -> int:
    registry_factory, _, _ = _SCHEMAS[args.schema]
    print(registry_factory().describe())
    return 0


def _optimize(args, tracer=NULL_TRACER):
    with tracer.span("compile.query", schema=args.schema) as span:
        registry, compiled, inputs, query_text = _load(args)
        span.set("aliases", len(compiled.aliases))
    config = OptimizerConfig(
        metric=DEFAULT_METRICS[args.metric],
        budget=args.budget,
        join_kernel=getattr(args, "join_kernel", "binary"),
    )
    outcome = Optimizer(compiled, config, tracer=tracer).optimize()
    if outcome.best is None:
        raise SystemExit("no feasible plan found")
    return registry, compiled, inputs, query_text, outcome


def _cmd_plan(args) -> int:
    _, _, _, query_text, outcome = _optimize(args)
    best = outcome.best
    print(f"query:   {query_text}")
    print(
        f"metric:  {args.metric}  cost: {best.cost:.2f}  "
        f"estimated results: {best.estimated_results:.1f}"
    )
    print(f"kernel:  {best.join_kernel} (requested: {args.join_kernel})")
    print(
        f"search:  {outcome.stats.expanded} expanded, "
        f"{outcome.stats.pruned} pruned, {outcome.stats.leaves} plans priced"
    )
    print(f"fetches: {best.fetch_vector()}")
    print()
    print(best.render())
    return 0


def _execute(args, registry, compiled, inputs, best, tracer=NULL_TRACER):
    """Run ``best`` on the simulator; returns ``(exit_code, result)``."""
    fetches = {
        alias: factor * args.fetch_boost
        for alias, factor in best.fetch_vector().items()
    }
    for name in args.outage or ():
        if not registry.has_interface(name):
            print(
                f"error: --outage: unknown interface {name!r} "
                f"(known: {', '.join(registry.interface_names)})",
                file=sys.stderr,
            )
            return 2, None
    try:
        fault_model = FaultModel.uniform(
            failure_rate=args.failure_rate,
            timeout_rate=args.timeout_rate,
            slow_factor=args.slow_factor,
        )
        if args.outage:
            fault_model = fault_model.with_outage(*args.outage)
        retry = RetryPolicy(
            max_attempts=args.max_attempts,
            base_backoff=args.backoff,
            call_timeout=args.call_timeout,
        )
    except SearchComputingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2, None
    pool = ServicePool(registry, global_seed=args.seed, fault_model=fault_model)
    backend = getattr(args, "backend", "virtual")
    if backend == "virtual":
        tracer.bind_clock(pool.clock)
    try:
        if backend == "asyncio":
            result = run_plan_async(
                best.plan,
                compiled,
                pool,
                inputs,
                fetches,
                retry=retry,
                degradation=args.degradation,
                invocation_cache_size=args.invocation_cache_size or None,
                tracer=tracer,
                time_scale=args.time_scale,
                max_connections=args.max_connections,
                join_kernel=getattr(best, "join_kernel", "binary"),
            )
        else:
            result = execute_plan(
                best.plan,
                compiled,
                pool,
                inputs,
                fetches,
                retry=retry,
                degradation=args.degradation,
                invocation_cache_size=args.invocation_cache_size or None,
                tracer=tracer,
                join_kernel=getattr(best, "join_kernel", "binary"),
            )
    except RetryExhaustedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: raise --max-attempts or use --degradation partial "
            "for best-effort results",
            file=sys.stderr,
        )
        return 1, None
    return 0, result


_LABEL_KEYS = (
    "Title", "Name", "HName", "CName", "Airline",
    "EName", "PName", "PTitle", "AName", "VName", "Reviewer",
)


def _print_combos(tuples) -> None:
    for rank, combo in enumerate(tuples, start=1):
        parts = []
        for alias in sorted(combo.aliases):
            values = combo.component(alias).values
            label = next(
                (
                    str(values[key])
                    for key in _LABEL_KEYS
                    if values.get(key) is not None
                ),
                "?",
            )
            parts.append(f"{alias}={label}")
        print(f"  {rank:2d}. score={combo.score:.3f}  " + "  ".join(parts))


def _cmd_run(args) -> int:
    tracer = Tracer() if args.trace else NULL_TRACER
    registry, compiled, inputs, _, outcome = _optimize(args, tracer)
    best = outcome.best
    code, result = _execute(args, registry, compiled, inputs, best, tracer)
    if code:
        return code
    kernel_note = (
        f", join kernel {result.join_kernel}"
        if getattr(result, "join_kernel", "binary") != "binary"
        else ""
    )
    print(
        f"{result.total_calls} service calls, "
        f"{result.execution_time:.2f} virtual seconds, "
        f"{len(result.tuples)} combinations"
        + kernel_note
    )
    if result.backend == "asyncio":
        serial = result.log.total_latency() * args.time_scale
        speedup = serial / result.wall_time if result.wall_time > 0 else 0.0
        print(
            f"backend asyncio: {result.wall_time:.3f}s wall "
            f"(serial would sleep {serial:.3f}s; {speedup:.2f}x overlap)"
        )
    failed = result.log.failed_calls()
    if failed or result.incomplete:
        print(
            f"faults: {failed} failed calls, {result.log.retries()} retries, "
            f"{result.log.retry_overhead():.2f}s retry overhead"
        )
    if result.incomplete:
        print(
            "WARNING: results are incomplete — services down for aliases "
            + ", ".join(result.failed_aliases)
        )
    _print_combos(result.tuples)
    if args.trace:
        if args.trace == "-":
            write_trace(tracer.spans, sys.stdout, fmt=args.trace_format)
        else:
            write_trace(tracer.spans, args.trace, fmt=args.trace_format)
            print(
                f"trace: {len(tracer.spans)} spans -> {args.trace} "
                f"({args.trace_format})"
            )
    if args.metrics == "json":
        snapshot = snapshot_run(
            outcome.stats,
            result,
            best_cost=best.cost,
            estimated_results=best.estimated_results,
        )
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    if args.strict and result.incomplete:
        print(
            "strict: execution degraded — services down for aliases "
            + ", ".join(result.failed_aliases),
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_explain(args) -> int:
    registry, compiled, inputs, query_text, outcome = _optimize(args)
    best = outcome.best
    code, result = _execute(args, registry, compiled, inputs, best)
    if code:
        return code
    print(f"query:   {query_text}")
    print(
        f"metric:  {args.metric}  cost: {best.cost:.2f}  "
        f"estimated results: {best.estimated_results:.1f}"
    )
    print()
    report = build_explain(best.plan, best.annotations, result)
    print(report.render())
    return 0


def _obs_requested(args) -> bool:
    """Did any serve-bench observability flag ask for telemetry output?"""
    return bool(
        args.trace or args.metrics or args.metrics_output or args.prom
    )


def _resolve_artifact_paths(args) -> None:
    """Place relative artifact paths under ``--artifacts-dir``.

    Applies to serve-bench's ``--trace``/``--metrics-output``/``--prom``/
    ``--output``: a bare filename like ``serve-trace.jsonl`` lands in the
    artifacts directory instead of littering the repository root.
    Absolute paths and ``-`` (stdout) pass through untouched; the
    directory is created on first use.
    """
    import os

    directory = getattr(args, "artifacts_dir", None)
    if not directory:
        return
    for attr in ("trace", "metrics_output", "prom", "output"):
        path = getattr(args, attr, None)
        if not path or path == "-" or os.path.isabs(path):
            continue
        os.makedirs(directory, exist_ok=True)
        setattr(args, attr, os.path.join(directory, path))


def _build_slo(args) -> "SloTracker":
    if args.slo_thresholds is None:
        return SloTracker()
    try:
        thresholds = tuple(
            float(token)
            for token in args.slo_thresholds.split(",")
            if token.strip()
        )
    except ValueError:
        raise SystemExit(
            "--slo-thresholds needs comma-separated numbers, got "
            f"{args.slo_thresholds!r}"
        )
    if not thresholds:
        raise SystemExit("--slo-thresholds needs at least one threshold")
    return SloTracker(thresholds=thresholds)


def _write_obs_artifacts(
    args, tracer, metrics, slo, *, serving=None, label="serve"
) -> None:
    """Emit the requested --trace/--metrics/--prom artifacts."""
    if args.trace:
        if args.trace == "-":
            write_trace(
                tracer.spans, sys.stdout, fmt=args.trace_format, label=label
            )
        else:
            write_trace(
                tracer.spans, args.trace, fmt=args.trace_format, label=label
            )
            print(
                f"trace: {len(tracer.spans)} spans -> {args.trace} "
                f"({args.trace_format})"
            )
    if args.metrics or args.metrics_output:
        payload: dict[str, Any] = {"metrics": metrics.snapshot()}
        if slo is not None:
            payload["slo"] = slo.snapshot()
        if serving is not None:
            payload["serving"] = serving
        if args.metrics == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        if args.metrics_output:
            with open(args.metrics_output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print(f"metrics -> {args.metrics_output}")
    if args.prom:
        write_prometheus(metrics, args.prom, slo=slo)
        print(f"prometheus -> {args.prom}")


def _cmd_serve_bench(args) -> int:
    from repro.serve import run_serving_benchmark
    from repro.serve.workload import scenario_templates

    try:
        rates = tuple(
            float(token) for token in args.rates.split(",") if token.strip()
        )
    except ValueError:
        raise SystemExit(f"--rates needs comma-separated numbers, got {args.rates!r}")
    if not rates:
        raise SystemExit("--rates needs at least one rate")
    _resolve_artifact_paths(args)
    observed = _obs_requested(args)
    if observed and len(rates) != 1:
        raise SystemExit(
            "--trace/--metrics/--prom take exactly one --rates value "
            "(one run, one trace)"
        )
    if args.checkpoint_every or args.resume:
        return _serve_bench_durable(args, rates)
    if args.shards:
        if args.backend == "asyncio" and not args.parallel:
            raise SystemExit(
                "--shards with --backend asyncio needs --parallel "
                "(serial sharding runs on the virtual clock)"
            )
        if observed and args.parallel:
            raise SystemExit(
                "--trace/--metrics/--prom need the in-process runtime "
                "(drop --parallel)"
            )
        if observed:
            return _serve_bench_observed(args, rates[0])
        return _serve_bench_sharded(args, rates)
    if args.backend == "asyncio":
        return _serve_bench_asyncio(args, rates)
    if observed:
        return _serve_bench_observed(args, rates[0])
    report = run_serving_benchmark(
        load_levels=rates,
        num_requests=args.requests,
        seed=args.seed,
        skew=args.skew,
        followup_fraction=args.followups,
        max_concurrency=args.concurrency,
        default_service_rate=args.service_rate or None,
        plan_cache_size=args.plan_cache_size,
        templates=scenario_templates(args.scenario, args.param_scale),
        join_kernel=args.join_kernel,
    )
    print(
        f"serving benchmark: {args.requests} requests per level, "
        f"seed {args.seed}, concurrency {args.concurrency}, "
        f"scenario {args.scenario}, join kernel {args.join_kernel}"
    )
    for level in report["levels"]:
        isolated, shared = level["isolated"], level["shared"]
        print(f"rate {level['rate']:g} req/s:")
        for mode, summary in (("isolated", isolated), ("shared", shared)):
            print(
                f"  {mode:9s} round trips {summary['total_round_trips']:5d}  "
                f"throughput {summary['throughput']:.3f}/s  "
                f"latency p50 {summary['latency_p50']:7.2f}  "
                f"p95 {summary['latency_p95']:7.2f}  "
                f"p99 {summary['latency_p99']:7.2f}"
            )
        print(
            f"  sharing saves {level['round_trip_reduction']:.1%} of round "
            f"trips; results identical: {level['results_identical']}"
        )
    gates = report["gates"]
    for name, passed in sorted(gates.items()):
        print(f"gate {name}: {'PASS' if passed else 'FAIL'}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    hard = ("results_identical", "shared_never_more_round_trips")
    requested = gates if args.gates == "all" else {
        name: gates[name] for name in hard
    }
    failed = sorted(name for name, passed in requested.items() if not passed)
    if failed:
        print(
            f"gate failure ({args.gates}): " + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_bench_sharded(args, rates) -> int:
    """Serve per rate on N shards; gate digests against 1-shard mode."""
    from repro.serve import serve_workload_parallel, serve_workload_sharded
    from repro.serve.workload import scenario_templates

    cache_mode = "shared" if args.shared_cache else "private"
    all_identical = True
    levels = []
    print(
        f"sharded serving: {args.requests} requests per rate, seed "
        f"{args.seed}, {args.shards} shards, cache {cache_mode}, "
        f"steal {'on' if args.steal else 'off'}, scenario {args.scenario}"
        + (f", parallel ({args.backend} workers)" if args.parallel else "")
    )
    common = dict(
        num_requests=args.requests,
        seed=args.seed,
        skew=args.skew,
        followup_fraction=args.followups,
        max_concurrency=args.concurrency,
        default_service_rate=args.service_rate or None,
        session_space=args.session_space,
        templates=scenario_templates(args.scenario, args.param_scale),
        join_kernel=args.join_kernel,
    )
    for rate in rates:
        _, reference = serve_workload_sharded(
            rate=rate, num_shards=1, cache_mode=cache_mode, steal=False,
            plan_cache_size=args.plan_cache_size, **common,
        )
        level: dict[str, Any] = {"rate": rate, "num_shards": args.shards}
        if args.parallel:
            result = serve_workload_parallel(
                rate=rate,
                num_shards=args.shards,
                backend=args.backend,
                caches=cache_mode != "isolated",
                time_scale=args.time_scale,
                **common,
            )
            digests = result["digests"]
            print(
                f"rate {rate:g} req/s: {len(digests)} completed across "
                f"{args.shards} workers, round trips "
                f"{result['total_round_trips']}, p95 {result['latency_p95']:.2f}"
            )
            level.update(
                parallel=True,
                backend=args.backend,
                total_round_trips=result["total_round_trips"],
                latency_p95=result["latency_p95"],
                by_status=result["by_status"],
            )
        else:
            report, digests = serve_workload_sharded(
                rate=rate, num_shards=args.shards, cache_mode=cache_mode,
                steal=args.steal, plan_cache_size=args.plan_cache_size,
                **common,
            )
            latency = report.latency_summary()
            steals = report.metrics.counters.get("serve.steals")
            print(
                f"rate {rate:g} req/s: {len(report.completed())} completed, "
                f"round trips {report.total_round_trips}, "
                f"p50 {latency.get('p50', 0.0):.2f}  "
                f"p95 {latency.get('p95', 0.0):.2f}, "
                f"steals {int(steals.value) if steals else 0}"
            )
            for stats in report.shard_stats or ():
                line = (
                    f"  shard {stats['shard']}: started {stats['started']:4d}  "
                    f"completed {stats['completed']:4d}  "
                    f"steals {stats['steals']:3d}  "
                    f"max queue {stats['max_queue_depth']:4d}"
                )
                cache = stats.get("invocation_cache")
                if cache:
                    line += f"  cache hit rate {cache['hit_rate']:.1%}"
                print(line)
            level.update(
                parallel=False,
                total_round_trips=report.total_round_trips,
                latency_p95=latency.get("p95", 0.0),
                by_status=report.by_status(),
                shards=report.shard_stats,
            )
        identical = digests == reference
        all_identical = all_identical and identical
        level["results_identical"] = identical
        levels.append(level)
        print(f"  digests identical to 1-shard mode: {identical}")
    print(f"gate results_identical: {'PASS' if all_identical else 'FAIL'}")
    if args.output:
        payload = {
            "benchmark": "serve-sharded",
            "seed": args.seed,
            "requests": args.requests,
            "shards": args.shards,
            "cache_mode": cache_mode,
            "steal": args.steal,
            "scenario": args.scenario,
            "levels": levels,
            "gates": {"results_identical": all_identical},
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    return 0 if all_identical else 1


def _serve_bench_observed(args, rate) -> int:
    """One traced serving run (plain or sharded) on the virtual clock.

    The same seeded workload is served twice: once bare, once with the
    tracer/SLO/metrics sampling on.  The two runs' per-request digests
    must be byte-identical — telemetry may never perturb results — and
    that gate guards the artifacts this path writes.
    """
    from repro.serve import serve_workload, serve_workload_sharded
    from repro.serve.bench import combined_digest, result_digest
    from repro.serve.workload import scenario_templates

    templates = scenario_templates(args.scenario, args.param_scale)
    shards = args.shards or 0

    def run_once(tracer=None, slo=None, sample_metrics=False):
        if shards:
            return serve_workload_sharded(
                rate=rate,
                num_requests=args.requests,
                seed=args.seed,
                num_shards=shards,
                cache_mode="shared" if args.shared_cache else "private",
                steal=args.steal,
                skew=args.skew,
                followup_fraction=args.followups,
                max_concurrency=args.concurrency,
                default_service_rate=args.service_rate or None,
                session_space=args.session_space,
                plan_cache_size=args.plan_cache_size,
                templates=templates,
                digest_fn=result_digest,
                tracer=tracer,
                slo=slo,
                sample_metrics=sample_metrics,
                join_kernel=args.join_kernel,
            )
        return serve_workload(
            rate=rate,
            num_requests=args.requests,
            seed=args.seed,
            shared=args.shared_cache,
            skew=args.skew,
            followup_fraction=args.followups,
            max_concurrency=args.concurrency,
            default_service_rate=args.service_rate or None,
            plan_cache_size=args.plan_cache_size,
            templates=templates,
            tracer=tracer,
            slo=slo,
            sample_metrics=sample_metrics,
            join_kernel=args.join_kernel,
        )

    print(
        f"observed serving: {args.requests} requests at rate {rate:g}, "
        f"seed {args.seed}, scenario {args.scenario}, "
        f"{shards or 1} shard(s)"
    )
    _, baseline_digests = run_once()
    tracer = Tracer()
    slo = _build_slo(args)
    report, digests = run_once(tracer=tracer, slo=slo, sample_metrics=True)
    identical = digests == baseline_digests
    latency = report.latency_summary()
    print(
        f"  {len(report.completed())} completed, "
        f"round trips {report.total_round_trips}, "
        f"p50 {latency.get('p50', 0.0):.2f}  p95 {latency.get('p95', 0.0):.2f}"
    )
    slo_state = slo.snapshot()
    violation_bits = ", ".join(
        f">{key}s {entry['fraction']:.1%}"
        for key, entry in slo_state["violations"].items()
    )
    print(f"  slo: {slo_state['count']} observed; violations {violation_bits}")
    print(
        "gate trace_noninterference: "
        + ("PASS" if identical else "FAIL")
        + " (digests identical with tracing on)"
    )
    serving = serving_metrics_summary(report)
    _write_obs_artifacts(args, tracer, report.metrics, slo, serving=serving)
    if args.output:
        payload = {
            "benchmark": "serve-observed",
            "seed": args.seed,
            "requests": args.requests,
            "rate": rate,
            "scenario": args.scenario,
            "shards": shards or 1,
            "spans": len(tracer.spans),
            "combined_digest": combined_digest(digests),
            "serving_metrics": serving,
            "slo": slo_state,
            "gates": {"trace_noninterference": identical},
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    return 0 if identical else 1


def _serve_bench_asyncio(args, rates) -> int:
    """Serve the seeded workload on the asyncio backend, per rate, and
    gate each request's result digest against the virtual scheduler's."""
    from repro.obs.metrics import MetricsRegistry
    from repro.serve import serve_workload
    from repro.serve.async_serve import serve_workload_async
    from repro.serve.workload import scenario_templates

    observed = _obs_requested(args)
    tracer = Tracer() if observed else None
    obs_metrics = MetricsRegistry() if observed else None
    slo = _build_slo(args) if observed else None
    levels = []
    all_identical = True
    print(
        f"async serving: {args.requests} requests per rate, seed {args.seed}, "
        f"concurrency {args.concurrency}, time scale {args.time_scale:g}, "
        f"scenario {args.scenario}"
    )
    templates = scenario_templates(args.scenario, args.param_scale)
    for rate in rates:
        kwargs = dict(
            rate=rate,
            num_requests=args.requests,
            seed=args.seed,
            shared=True,
            skew=args.skew,
            followup_fraction=args.followups,
            max_concurrency=args.concurrency,
            templates=templates,
            join_kernel=args.join_kernel,
        )
        _, virtual_digests = serve_workload(**kwargs)
        report = serve_workload_async(
            **kwargs,
            time_scale=args.time_scale,
            max_connections=args.max_connections,
            tracer=tracer,
            metrics=obs_metrics,
            slo=slo,
            trace_engine=observed,
        )
        async_digests = report.digests()
        identical = virtual_digests == async_digests
        all_identical = all_identical and identical
        errors = [o for o in report.outcomes if not o.completed]
        print(
            f"rate {rate:g} req/s: {len(report.completed())} completed in "
            f"{report.wall_time:.3f}s wall ({report.throughput:.1f} req/s); "
            f"digests match virtual scheduler: {identical}"
        )
        for outcome in errors:
            print(
                f"  request {outcome.request.request_id} "
                f"({outcome.request.kind}): {outcome.error}"
            )
        levels.append(
            {
                "rate": rate,
                "completed": len(report.completed()),
                "errors": len(errors),
                "wall_time": report.wall_time,
                "throughput": report.throughput,
                "results_identical": identical,
            }
        )
    print(f"gate results_identical: {'PASS' if all_identical else 'FAIL'}")
    if observed:
        _write_obs_artifacts(args, tracer, obs_metrics, slo, label="serve-async")
    if args.output:
        payload = {
            "benchmark": "serving-asyncio",
            "seed": args.seed,
            "num_requests": args.requests,
            "time_scale": args.time_scale,
            "max_concurrency": args.concurrency,
            "levels": levels,
            "gates": {"results_identical": all_identical},
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    return 0 if all_identical else 1


def _serve_bench_durable(args, rates) -> int:
    """Durable serving: periodic checkpoints, optional resume."""
    from repro.durability import serve_workload_durable
    from repro.serve.bench import combined_digest
    from repro.serve.workload import scenario_templates

    if len(rates) != 1:
        raise SystemExit(
            "durable serving (--checkpoint-every/--resume) takes exactly "
            "one --rates value"
        )
    if not args.checkpoint_dir:
        raise SystemExit("--checkpoint-every/--resume need --checkpoint-dir")
    if args.backend == "asyncio" or args.parallel:
        raise SystemExit(
            "durable serving runs in-process on the virtual backend "
            "(drop --backend asyncio / --parallel)"
        )
    rate = rates[0]
    shards = args.shards or 1
    observed = _obs_requested(args)
    tracer = Tracer() if observed else None
    slo = _build_slo(args) if observed else None
    report, digests, info = serve_workload_durable(
        rate=rate,
        num_requests=args.requests,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        scenario=args.scenario,
        num_shards=shards,
        shared=args.shared_cache,
        skew=args.skew,
        followup_fraction=args.followups,
        max_concurrency=args.concurrency,
        default_service_rate=args.service_rate or None,
        session_space=args.session_space,
        plan_cache_size=args.plan_cache_size,
        templates=scenario_templates(args.scenario, args.param_scale),
        tracer=tracer,
        slo=slo,
        sample_metrics=observed,
        join_kernel=args.join_kernel,
    )
    digest = combined_digest(digests)
    print(
        f"durable serving: {args.requests} requests at rate {rate:g}, "
        f"seed {args.seed}, scenario {args.scenario}, {shards} shard(s)"
    )
    if args.resume:
        if info["resumed"]:
            print(
                f"  resumed from {info['resume_key']}: "
                f"{info['pre_terminal']} already terminal, "
                f"{info['restored_sessions']} sessions restored, "
                f"{info['served']} served now"
            )
        else:
            print("  no checkpoint found — served from scratch")
    print(
        f"  checkpoints: {info['checkpoints_written']} written "
        f"(every {args.checkpoint_every or 'n/a'} terminals) "
        f"-> {args.checkpoint_dir}"
    )
    by_status = report.by_status()
    print(
        f"  completed {len(digests)}, statuses {by_status}, "
        f"combined digest {digest[:16]}"
    )
    if observed:
        if info["telemetry_replayed"]:
            print(
                f"  telemetry: {info['telemetry_replayed']} pre-crash "
                "outcomes replayed into the trace/metrics"
            )
        _write_obs_artifacts(
            args,
            tracer,
            report.metrics,
            slo,
            serving=serving_metrics_summary(report),
            label="serve-durable",
        )
    if args.output:
        payload = {
            "benchmark": "serve-durable",
            "seed": args.seed,
            "requests": args.requests,
            "rate": rate,
            "scenario": args.scenario,
            "shards": shards,
            "checkpoint_every": args.checkpoint_every,
            "resume": args.resume,
            "by_status": by_status,
            "combined_digest": digest,
            "info": info,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report -> {args.output}")
    # Failed or rejected requests surface as a nonzero exit so scripted
    # crash/resume drills can gate on the CLI.
    failures = by_status.get("failed", 0) + by_status.get("rejected", 0)
    return 0 if failures == 0 else 1


def _cmd_serve_report(args) -> int:
    """Render the post-run bottleneck summary from trace artifacts."""
    from repro.obs.serving import load_trace_jsonl, render_serve_report

    try:
        spans = load_trace_jsonl(args.trace)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.trace!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"{args.trace!r} is not a JSONL span trace ({exc}); "
            "serve-report reads --trace-format jsonl output"
        )
    metrics = slo = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise SystemExit(f"cannot read metrics {args.metrics!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"{args.metrics!r} is not a metrics snapshot JSON ({exc})"
            )
        metrics = payload.get("metrics", payload)
        slo = payload.get("slo")
    print(
        render_serve_report(spans, metrics=metrics, slo=slo, top=args.top),
        end="",
    )
    return 0


def _cmd_scenarios(args) -> int:
    print(
        "scenario packs (serve-bench --scenario NAME; 'default' is the "
        "chapter's two schemas, 'all' mixes everything):"
    )
    for name in sorted(SCENARIOS):
        pack = SCENARIOS[name]
        print(f"\n{name}: {pack.description}")
        print(f"  schema:  {pack.schema}")
        print(f"  query:   {pack.query_text}")
        print(
            "  inputs:  "
            + ", ".join(
                f"{key}={value!r}"
                for key, value in sorted(pack.default_inputs.items())
            )
        )
        space = {
            key: len(values) for key, values in pack.parameter_space.items()
        }
        print(
            f"  workload: parameter universe {space}, "
            f"{len(pack.rerank_weights)} rerank presets"
        )
        if args.registry:
            print()
            print(pack.registry_factory().describe())
    return 0


def _cmd_checkpoint(args) -> int:
    from repro.durability import CheckpointStore
    from repro.engine.liquid import LiquidQuerySession

    registry, compiled, inputs, query_text, outcome = _optimize(args)
    pool = ServicePool(registry, global_seed=args.seed)
    session = LiquidQuerySession(
        candidate=outcome.best,
        query=compiled,
        pool=pool,
        inputs=dict(inputs),
    )
    if args.steps is not None:
        stepper = session.run_steps(args.k)
        taken = 0
        try:
            for _ in range(args.steps):
                next(stepper)
                taken += 1
        except StopIteration:
            pass
    else:
        session.run(args.k)
    payload = session.checkpoint(
        schema=args.schema, query_text=query_text, metric=args.metric
    )
    store = CheckpointStore(args.dir)
    path = store.save(args.key, payload)
    print(f"checkpoint {args.key!r} -> {path}")
    print(
        f"  schema {args.schema}, clock {pool.clock.now:.2f}, "
        f"{pool.log.total_calls()} service calls"
    )
    inflight = session.inflight_interaction
    if inflight is not None:
        print(
            f"  mid-plan: {inflight['kind']!r} suspended after "
            f"{taken} of --steps {args.steps} scheduler steps"
        )
    else:
        print(
            f"  quiescent: {len(session.interaction_journal)} completed "
            "interaction(s)"
        )
    return 0


def _cmd_resume(args) -> int:
    from repro.durability import CheckpointStore, restore_session
    from repro.serve.bench import result_digest

    store = CheckpointStore(args.dir)
    if args.list:
        keys = store.keys()
        if not keys:
            print(f"no checkpoints in {args.dir}")
            return 0
        for key in keys:
            payload = store.load(key)
            if payload.get("kind") == "serve":
                print(
                    f"{key}: serving checkpoint, "
                    f"{len(payload.get('outcomes', {}))} terminal requests, "
                    f"{len(payload.get('sessions', {}))} live sessions"
                )
            else:
                print(
                    f"{key}: session checkpoint, schema "
                    f"{payload.get('schema')!r}, version "
                    f"{payload.get('version')}"
                )
        return 0
    key = args.key or store.latest()
    if key is None:
        print(f"error: no checkpoints in {args.dir}", file=sys.stderr)
        return 2
    payload = store.load(key)
    if payload.get("kind") == "serve":
        print(
            f"{key} is a serving checkpoint "
            f"({len(payload.get('outcomes', {}))} terminal requests); "
            "resume it with: repro serve-bench --resume --checkpoint-dir "
            f"{args.dir} ..."
        )
        return 2
    session = restore_session(payload, verify=not args.no_verify)
    if session.pending_stepper is not None:
        stepper = session.pending_stepper
        steps = 0
        try:
            while True:
                next(stepper)
                steps += 1
        except StopIteration as stop:
            results = stop.value
        print(f"resumed {key!r} mid-plan: {steps} further scheduler steps")
    else:
        results = session.run()
        print(f"resumed {key!r} at a quiescent interaction boundary")
    pool = session.pool
    print(
        f"  schema {payload.get('schema')!r}, clock {pool.clock.now:.2f}, "
        f"{pool.log.total_calls()} service calls"
    )
    print(
        f"  {len(results)} combinations, "
        f"digest {result_digest(results)[:16]}"
    )
    _print_combos(results)
    return 0


def _cmd_topologies(args) -> int:
    _, compiled, _, _ = _load(args)
    total = 0
    for index, choice in enumerate(enumerate_binding_choices(compiled)):
        deps = choice.dependencies_over(compiled.aliases)
        pipes = {a: sorted(d) for a, d in deps.items() if d}
        print(f"binding choice #{index}: pipe dependencies {pipes or 'none'}")
        for plan in enumerate_topologies(compiled, {}, choice):
            total += 1
            print(f"--- topology {total} ---")
            print(plan.render())
    print(f"\n{total} distinct topologies")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "registry": _cmd_registry,
        "plan": _cmd_plan,
        "run": _cmd_run,
        "explain": _cmd_explain,
        "topologies": _cmd_topologies,
        "serve-bench": _cmd_serve_bench,
        "serve-report": _cmd_serve_report,
        "scenarios": _cmd_scenarios,
        "checkpoint": _cmd_checkpoint,
        "resume": _cmd_resume,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    sys.exit(main())
