"""Exception hierarchy for the Search Computing reproduction.

All library-specific errors derive from :class:`SearchComputingError` so that
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes (schema problems, query problems,
planning problems, execution problems).
"""

from __future__ import annotations


class SearchComputingError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(SearchComputingError):
    """A service mart, interface, or connection pattern is ill-formed.

    Raised during schema construction and registration, e.g. for duplicate
    attribute names, adornments referring to unknown attributes, or
    connection patterns over attributes with incompatible types.
    """


class QueryError(SearchComputingError):
    """A query is syntactically or semantically invalid."""


class QueryParseError(QueryError):
    """The textual query could not be parsed.

    Attributes
    ----------
    position:
        Zero-based character offset in the query string where the
        problem was detected, or ``None`` when not applicable.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class UnfeasibleQueryError(QueryError):
    """No choice of access patterns makes every service reachable.

    Carries the set of services that could not be reached so callers can
    report precisely which inputs are missing bindings.
    """

    def __init__(self, message: str, unreachable: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.unreachable = unreachable


class PlanError(SearchComputingError):
    """A query plan is structurally invalid (cycles, arity violations...)."""


class OptimizationError(SearchComputingError):
    """The optimizer could not produce a plan."""


class ExecutionError(SearchComputingError):
    """Plan execution failed at runtime."""


class ServiceInvocationError(ExecutionError):
    """A (simulated) service call failed or was invoked incorrectly.

    Typical causes: missing input bindings, fetching past exhaustion on a
    non-resumable invocation, or an injected fault from the failure-injection
    test harness.
    """


class ServiceTimeoutError(ServiceInvocationError):
    """A service call exceeded its per-call timeout.

    The caller waited until the deadline, so the timed-out round trip still
    costs ``timeout`` virtual seconds of execution time.

    Attributes
    ----------
    service:
        Interface name of the service that timed out (or ``None``).
    timeout:
        The per-call deadline that was exceeded, in virtual seconds.
    """

    def __init__(
        self,
        message: str,
        service: str | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(message)
        self.service = service
        self.timeout = timeout


class ServiceUnavailableError(ServiceInvocationError):
    """A service call failed outright (transient fault or permanent outage).

    Attributes
    ----------
    service:
        Interface name of the failing service (or ``None``).
    permanent:
        ``True`` for a permanent outage — retrying is pointless and retry
        harnesses give up immediately; ``False`` for a transient fault
        that a later attempt may survive.
    """

    def __init__(
        self,
        message: str,
        service: str | None = None,
        permanent: bool = False,
    ) -> None:
        super().__init__(message)
        self.service = service
        self.permanent = permanent


class RetryExhaustedError(ServiceInvocationError):
    """A retried service call failed on every allowed attempt.

    Raised by the retry harness after ``max_attempts`` failures (or
    immediately on a permanent outage); chains from the last underlying
    fault.  Under ``partial`` degradation the executors catch this and
    degrade instead of propagating.

    Attributes
    ----------
    service:
        Interface name of the failing service (or ``None``).
    attempts:
        How many attempts were made before giving up.
    """

    def __init__(
        self,
        message: str,
        service: str | None = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.service = service
        self.attempts = attempts


class CheckpointError(SearchComputingError):
    """A durability checkpoint could not be written, read, or restored."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint failed verification.

    Raised when the stored content hash does not match the payload (the
    file was truncated or tampered with), or when the state rebuilt by
    journal replay diverges from the witnesses recorded at checkpoint
    time (plan signature, result digest, clock offset, call log).
    """


class CassetteError(SearchComputingError):
    """A record/replay cassette is missing, exhausted, or malformed.

    Raised when replay is asked for an invocation the cassette never
    recorded, for more chunks than the recording fetched, or when the
    cassette file fails its integrity check.
    """
