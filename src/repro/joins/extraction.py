"""Extraction-optimality analysis (Section 4.1).

A join strategy is **extraction-optimal** when it produces result elements
in decreasing order of the product of the two rankings ``rho_X * rho_Y``,
at minimum cost.  The notion "extends from tuples to tiles by using the
ranking of the first tuple of the tile as representative for the entire
tile", and can be read

* in the **global** sense — relative to *all* tiles of the search space: a
  trace is globally extraction-optimal when it enumerates tiles exactly in
  descending representative-score order over the whole (bounded) space;
* in the **local** sense — relative to the tiles *already loaded*: each
  processed tile must carry the best representative score among the
  loaded-but-unprocessed tiles at the moment of processing.

The analysers below replay an executor event log (fetch/process events)
against a :class:`~repro.joins.searchspace.SearchSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from repro.joins.searchspace import SearchSpace, Tile
from repro.joins.strategies import Axis

__all__ = [
    "JoinEvent",
    "is_globally_extraction_optimal",
    "count_local_violations",
    "adjacency_rule_holds",
]

_EPS = 1e-9


@dataclass(frozen=True)
class JoinEvent:
    """One executor event: a chunk fetch or a tile processing step."""

    kind: Literal["fetch", "process"]
    axis: Axis | None = None
    tile: Tile | None = None

    @classmethod
    def fetch(cls, axis: Axis) -> "JoinEvent":
        return cls("fetch", axis=axis)

    @classmethod
    def process(cls, tile: Tile) -> "JoinEvent":
        return cls("process", tile=tile)


def is_globally_extraction_optimal(
    trace: Sequence[Tile],
    space: SearchSpace,
    total_x: int,
    total_y: int,
) -> bool:
    """Is ``trace`` a prefix of the global descending-score tile order?

    ``total_x``/``total_y`` bound the full search space in chunks.  Ties in
    representative score may be broken arbitrarily, so the check compares
    score sequences, not tile identities.
    """
    all_tiles = [Tile(x, y) for x in range(total_x) for y in range(total_y)]
    if len(trace) > len(all_tiles):
        return False
    ideal = sorted(
        (space.representative_score(t) for t in all_tiles), reverse=True
    )
    actual = [space.representative_score(t) for t in trace]
    return all(abs(a - b) <= _EPS for a, b in zip(actual, ideal))


def count_local_violations(
    events: Iterable[JoinEvent], space: SearchSpace
) -> int:
    """Count processing steps that violate *local* extraction-optimality.

    Replays the event log: at each ``process`` event the processed tile
    must have the maximum representative score among loaded-unprocessed
    tiles.  Returns the number of violating steps (0 means the trace is
    locally extraction-optimal).
    """
    loaded_x = 0
    loaded_y = 0
    processed: set[Tile] = set()
    violations = 0
    for event in events:
        if event.kind == "fetch":
            assert event.axis is not None
            if event.axis is Axis.X:
                loaded_x += 1
            else:
                loaded_y += 1
            continue
        tile = event.tile
        assert tile is not None
        pending = [
            Tile(x, y)
            for x in range(loaded_x)
            for y in range(loaded_y)
            if Tile(x, y) not in processed
        ]
        if pending:
            best = max(space.representative_score(t) for t in pending)
            if space.representative_score(tile) < best - _EPS:
                violations += 1
        processed.add(tile)
    return violations


def adjacency_rule_holds(trace: Sequence[Tile]) -> bool:
    """Check Section 4.1's adjacency rule over a processing trace.

    "If two tiles are adjacent, then the one with smaller index sum is
    extracted first by extraction-optimal methods."  Returns True when no
    adjacent pair appears in the trace with the larger index sum first.
    """
    position = {tile: i for i, tile in enumerate(trace)}
    for tile, pos in position.items():
        for other, other_pos in position.items():
            if tile.is_adjacent(other) and tile.index_sum < other.index_sum:
                if other_pos < pos:
                    return False
    return True
