"""Join methods for Search Computing (Section 4).

Building blocks: the tile search-space model, invocation schedules
(nested-loop, merge-scan), completion policies (rectangular, triangular),
runnable pipe/parallel join executors, extraction-optimality analysers,
and the guaranteed top-k rank join extension — plus the multiway kernel
subsystem: worst-case-optimal leapfrog triejoin (:mod:`repro.joins.wcoj`),
lazy ranked enumeration (:mod:`repro.joins.ranked`), and the
kernel-agnostic :func:`~repro.joins.topk.topk_join` facade.
"""

from repro.joins.completion import (
    CompletionPolicy,
    RectangularCompletion,
    TileScheduler,
    TriangularCompletion,
)
from repro.joins.extraction import (
    JoinEvent,
    adjacency_rule_holds,
    count_local_violations,
    is_globally_extraction_optimal,
)
from repro.joins.methods import (
    ChunkSource,
    JoinResult,
    JoinStatistics,
    JoinedPair,
    ListChunkSource,
    ParallelJoinExecutor,
    PipeJoinExecutor,
    make_executor,
    product_score,
)
from repro.joins.ranked import (
    RankedEnumerationStatistics,
    RankedEnumerator,
    RankedResult,
)
from repro.joins.searchspace import SearchSpace, Tile
from repro.joins.spec import (
    ALL_METHODS,
    CompletionStrategy,
    InvocationStrategy,
    JoinMethodSpec,
    JoinTopology,
)
from repro.joins.strategies import (
    Axis,
    cost_aware_schedule,
    InvocationSchedule,
    MergeScanSchedule,
    NestedLoopSchedule,
    VariableRatioSchedule,
)
from repro.joins.topk import (
    RankJoinExecutor,
    TopKJoinOutcome,
    canonical_pair_key,
    tile_trace,
    topk_join,
)
from repro.joins.wcoj import (
    KNOWN_JOIN_KERNELS,
    BinaryCascadeExecutor,
    EquiPredicate,
    JoinGraph,
    JoinedRow,
    MultiwayJoinExecutor,
    MultiwayJoinResult,
    MultiwayJoinStatistics,
    Relation,
    TrieIterator,
    canonical_row_key,
    canonical_tuple_key,
    finalize_rows,
    orderable_key,
    score_components,
    triangle_graph,
)

__all__ = [
    "CompletionPolicy",
    "RectangularCompletion",
    "TileScheduler",
    "TriangularCompletion",
    "JoinEvent",
    "adjacency_rule_holds",
    "count_local_violations",
    "is_globally_extraction_optimal",
    "ChunkSource",
    "JoinResult",
    "JoinStatistics",
    "JoinedPair",
    "ListChunkSource",
    "ParallelJoinExecutor",
    "PipeJoinExecutor",
    "make_executor",
    "product_score",
    "SearchSpace",
    "Tile",
    "ALL_METHODS",
    "CompletionStrategy",
    "InvocationStrategy",
    "JoinMethodSpec",
    "JoinTopology",
    "Axis",
    "InvocationSchedule",
    "MergeScanSchedule",
    "NestedLoopSchedule",
    "VariableRatioSchedule",
    "cost_aware_schedule",
    "RankJoinExecutor",
    "TopKJoinOutcome",
    "canonical_pair_key",
    "tile_trace",
    "topk_join",
    "RankedEnumerationStatistics",
    "RankedEnumerator",
    "RankedResult",
    "KNOWN_JOIN_KERNELS",
    "BinaryCascadeExecutor",
    "EquiPredicate",
    "JoinGraph",
    "JoinedRow",
    "MultiwayJoinExecutor",
    "MultiwayJoinResult",
    "MultiwayJoinStatistics",
    "Relation",
    "TrieIterator",
    "canonical_row_key",
    "canonical_tuple_key",
    "finalize_rows",
    "orderable_key",
    "score_components",
    "triangle_graph",
]
