"""Executable join methods over chunked ranked sources (Sections 4.2-4.5).

This module turns the strategy/completion building blocks into runnable
binary joins:

* :class:`ListChunkSource` — a chunk source over a pre-ranked tuple list
  (the shape simulated services expose);
* :class:`ParallelJoinExecutor` — a parallel join: fetches chunks from the
  two sources following an invocation schedule, hands tiles to the join in
  completion-policy order, and emits scored result pairs until ``k``
  results are produced (or the sources are exhausted);
* :class:`PipeJoinExecutor` — a pipe join: for every upstream tuple,
  invokes the downstream service with piped bindings and fetches a fixed
  number of chunks ("retrieving the same number of fetches from the second
  service for each invocation originating from each tuple in output from
  the first service" — nested loop with rectangular completion);
* :func:`make_executor` — builds the executor configuration matching a
  :class:`~repro.joins.spec.JoinMethodSpec`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator, Sequence

from repro.errors import ExecutionError, RetryExhaustedError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.engine.retry import Retrier
from repro.joins.completion import (
    CompletionPolicy,
    RectangularCompletion,
    TileScheduler,
    TriangularCompletion,
)
from repro.joins.extraction import JoinEvent
from repro.joins.searchspace import SearchSpace, Tile
from repro.joins.spec import (
    CompletionStrategy,
    InvocationStrategy,
    JoinMethodSpec,
)
from repro.joins.strategies import (
    Axis,
    InvocationSchedule,
    MergeScanSchedule,
    NestedLoopSchedule,
)
from repro.model.scoring import ScoringFunction
from repro.model.tuples import ServiceTuple
from repro.obs.tracer import NullTracer, Tracer, coerce_tracer

__all__ = [
    "ChunkSource",
    "ListChunkSource",
    "JoinedPair",
    "JoinStatistics",
    "JoinResult",
    "ParallelJoinExecutor",
    "PipeJoinExecutor",
    "make_executor",
    "product_score",
]


class ChunkSource:
    """Protocol-ish base: a ranked service seen as a stream of chunks."""

    scoring: ScoringFunction
    chunk_size: int

    def next_chunk(self) -> list[ServiceTuple] | None:
        """Fetch the next chunk; ``None`` once exhausted."""
        raise NotImplementedError

    @property
    def calls(self) -> int:
        raise NotImplementedError


#: Tuple sequences already proven rank-ordered, keyed by id().  Holding a
#: strong reference to each validated sequence pins its id, so an entry
#: can never be shadowed by a recycled id; the identity check below makes
#: the memo exact.  Bounded LRU so long runs cannot grow it unboundedly.
_VALIDATED_SEQUENCES: "OrderedDict[int, Sequence[ServiceTuple]]" = OrderedDict()
_VALIDATED_CAP = 1024


@dataclass
class ListChunkSource(ChunkSource):
    """Chunk source over a pre-ranked in-memory tuple list."""

    tuples: Sequence[ServiceTuple]
    chunk_size: int
    scoring: ScoringFunction
    _cursor: int = 0
    _calls: int = 0

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ExecutionError("chunk_size must be positive")
        # The rank-order check is O(n); the engine re-wraps the same
        # materialised tuple list in a fresh source per invocation (one
        # per fetch-factor probe), so successful validations are memoized
        # by sequence identity.  Failures are never cached: an unranked
        # input must raise at every construction.
        key = id(self.tuples)
        cached = _VALIDATED_SEQUENCES.get(key)
        if cached is not None and cached is self.tuples:
            _VALIDATED_SEQUENCES.move_to_end(key)
            return
        scores = [t.score for t in self.tuples]
        if any(a < b - 1e-9 for a, b in zip(scores, scores[1:])):
            raise ExecutionError("source tuples must be in ranking order")
        if isinstance(self.tuples, (list, tuple)):
            _VALIDATED_SEQUENCES[key] = self.tuples
            while len(_VALIDATED_SEQUENCES) > _VALIDATED_CAP:
                _VALIDATED_SEQUENCES.popitem(last=False)

    def next_chunk(self) -> list[ServiceTuple] | None:
        if self._cursor >= len(self.tuples):
            return None
        chunk = list(self.tuples[self._cursor : self._cursor + self.chunk_size])
        self._cursor += self.chunk_size
        self._calls += 1
        return chunk

    @property
    def calls(self) -> int:
        return self._calls


@dataclass(frozen=True)
class JoinedPair:
    """One join result: the contributing tuples, score, and source tile."""

    left: ServiceTuple
    right: ServiceTuple
    score: float
    tile: Tile


@dataclass
class JoinStatistics:
    """Accounting of one join execution."""

    calls_x: int = 0
    calls_y: int = 0
    tiles_processed: int = 0
    #: Logical candidate-pair count: the full tile area, independent of the
    #: pairing kernel.  This is the paper's "candidate combinations" figure.
    candidates: int = 0
    #: Pairs the kernel actually evaluated the predicate on.  Equals
    #: ``candidates`` for the nested-loop kernel; with hash-indexed
    #: equi-joins only key-colliding pairs are probed.
    pairs_probed: int = 0
    results: int = 0
    trace: list[Tile] = field(default_factory=list)
    events: list[JoinEvent] = field(default_factory=list)

    @property
    def total_calls(self) -> int:
        return self.calls_x + self.calls_y


@dataclass
class JoinResult:
    """Join output plus execution statistics."""

    pairs: list[JoinedPair]
    stats: JoinStatistics

    def __iter__(self) -> Iterator[JoinedPair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)


def product_score(left: ServiceTuple, right: ServiceTuple) -> float:
    """Default combination score: the product ``rho_X * rho_Y`` of
    Section 4.1's extraction-optimality definition."""
    return left.score * right.score


def _coerce_degradation(value: object) -> str:
    """Normalise a degradation mode (enum member or string) to its name."""
    mode = getattr(value, "value", value)
    if mode not in ("fail", "partial"):
        raise ExecutionError(
            f"unknown degradation mode {value!r}; expected 'fail' or 'partial'"
        )
    return str(mode)


def _fetch_chunk(
    source: ChunkSource, retry: "Retrier | None"
) -> list[ServiceTuple] | None:
    """One (possibly retried) chunk fetch."""
    if retry is None:
        return source.next_chunk()
    return retry.call(source.next_chunk)


class ParallelJoinExecutor:
    """Parallel join of two chunked ranked sources.

    Parameters
    ----------
    source_x, source_y:
        The two chunk sources.
    predicate:
        Join predicate over a tuple pair.
    schedule:
        Invocation schedule (who gets called next).
    policy:
        Completion policy (which loaded tiles to process when).
    k:
        Stop once this many result pairs are emitted; ``None`` runs to
        exhaustion.
    scorer:
        Combined score for emitted pairs (defaults to the ranking product).
    max_calls:
        Safety bound on total service calls.
    retry:
        Optional retry harness (:class:`~repro.engine.retry.Retrier`)
        wrapping every chunk fetch; failing calls are re-issued per its
        policy, with backoff on virtual time.
    degradation:
        Once a source's retries are exhausted: ``"partial"`` (default)
        treats that axis as exhausted and joins what arrived; ``"fail"``
        propagates :class:`~repro.errors.RetryExhaustedError`.
    tracer:
        Observability context; each processed tile becomes a
        ``join.tile`` span (its probe batch: candidates, pairs probed,
        matches) on virtual time.  ``None`` uses the shared no-op tracer.
    equi_key_x, equi_key_y:
        Optional equi-join key extractors.  When both are supplied the
        tile kernel builds a hash index over each Y chunk (memoized per
        chunk, since triangular completion revisits the same chunk across
        many tiles) and probes it with X tuples, evaluating ``predicate``
        only on key-colliding pairs.  The caller must guarantee that
        ``equi_key_x(l) != equi_key_y(r)`` implies ``not predicate(l, r)``
        — the predicate stays authoritative on probed pairs, so a key
        that over-approximates the predicate is safe, one that
        under-approximates it silently drops results.  Without extractors
        the kernel is the plain nested loop over the tile.
    """

    def __init__(
        self,
        source_x: ChunkSource,
        source_y: ChunkSource,
        predicate: Callable[[ServiceTuple, ServiceTuple], bool],
        schedule: InvocationSchedule | None = None,
        policy: CompletionPolicy | None = None,
        k: int | None = None,
        scorer: Callable[[ServiceTuple, ServiceTuple], float] = product_score,
        max_calls: int = 10_000,
        retry: "Retrier | None" = None,
        degradation: str = "partial",
        equi_key_x: Callable[[ServiceTuple], Hashable] | None = None,
        equi_key_y: Callable[[ServiceTuple], Hashable] | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> None:
        self.source_x = source_x
        self.source_y = source_y
        self.predicate = predicate
        self.tracer = coerce_tracer(tracer)
        self.equi_key_x = equi_key_x
        self.equi_key_y = equi_key_y
        #: Hash indexes over Y chunks, keyed by chunk ordinal (built lazily,
        #: reused across every tile sharing that chunk).
        self._y_indexes: dict[int, dict[Hashable, list[ServiceTuple]]] = {}
        self.schedule = schedule or MergeScanSchedule()
        self.policy = policy or TriangularCompletion()
        self.k = k
        self.scorer = scorer
        self.max_calls = max_calls
        self.retry = retry
        self.degradation = _coerce_degradation(degradation)
        self.space = SearchSpace(
            chunk_size_x=source_x.chunk_size,
            chunk_size_y=source_y.chunk_size,
            scoring_x=source_x.scoring,
            scoring_y=source_y.scoring,
        )
        # Let the completion policy order batches by representative score
        # (Section 4.4's local extraction-optimality).
        if getattr(self.policy, "space", None) is None:
            self.policy.space = self.space

    def run(self) -> JoinResult:
        chunks_x: list[list[ServiceTuple]] = []
        chunks_y: list[list[ServiceTuple]] = []
        scheduler = TileScheduler(policy=self.policy)
        stats = JoinStatistics()
        pairs: list[JoinedPair] = []
        exhausted = {Axis.X: False, Axis.Y: False}

        def fetch(axis: Axis) -> bool:
            """Fetch one chunk on ``axis``; False when that axis is done."""
            source = self.source_x if axis is Axis.X else self.source_y
            try:
                chunk = _fetch_chunk(source, self.retry)
            except RetryExhaustedError:
                if self.degradation == "fail":
                    raise
                # The service is down: join what already arrived.
                exhausted[axis] = True
                return False
            if chunk is None or not chunk:
                exhausted[axis] = True
                return False
            if axis is Axis.X:
                chunks_x.append(chunk)
                stats.calls_x += 1
            else:
                chunks_y.append(chunk)
                stats.calls_y += 1
            stats.events.append(JoinEvent.fetch(axis))
            for tile in scheduler.on_fetch(axis):
                self._process_tile(tile, chunks_x, chunks_y, stats, pairs)
            return True

        def done() -> bool:
            return self.k is not None and len(pairs) >= self.k

        for axis in self.schedule:
            if done():
                break
            if stats.total_calls >= self.max_calls:
                break
            if exhausted[Axis.X] and exhausted[Axis.Y]:
                break
            target = axis
            if exhausted[target]:
                target = target.other
                if exhausted[target]:
                    break
            fetch(target)

        if not done():
            # Drain deferred (triangular) tiles before reporting exhaustion.
            for tile in scheduler.flush():
                if done():
                    break
                self._process_tile(tile, chunks_x, chunks_y, stats, pairs)

        stats.results = len(pairs)
        if self.k is not None:
            pairs = pairs[: self.k]
            stats.results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)

    def _process_tile(
        self,
        tile: Tile,
        chunks_x: list[list[ServiceTuple]],
        chunks_y: list[list[ServiceTuple]],
        stats: JoinStatistics,
        pairs: list[JoinedPair],
    ) -> None:
        if self.tracer.enabled:
            before_probed = stats.pairs_probed
            before_results = len(pairs)
            with self.tracer.span(
                "join.tile", x=tile.x, y=tile.y
            ) as span:
                self._process_tile_inner(tile, chunks_x, chunks_y, stats, pairs)
                span.set("candidates", len(chunks_x[tile.x]) * len(chunks_y[tile.y]))
                span.set("pairs_probed", stats.pairs_probed - before_probed)
                span.set("matches", len(pairs) - before_results)
            return
        self._process_tile_inner(tile, chunks_x, chunks_y, stats, pairs)

    def _process_tile_inner(
        self,
        tile: Tile,
        chunks_x: list[list[ServiceTuple]],
        chunks_y: list[list[ServiceTuple]],
        stats: JoinStatistics,
        pairs: list[JoinedPair],
    ) -> None:
        stats.events.append(JoinEvent.process(tile))
        stats.trace.append(tile)
        stats.tiles_processed += 1
        chunk_x = chunks_x[tile.x]
        chunk_y = chunks_y[tile.y]
        stats.candidates += len(chunk_x) * len(chunk_y)
        if self.equi_key_x is not None and self.equi_key_y is not None:
            index = self._y_indexes.get(tile.y)
            if index is None:
                index = {}
                for right in chunk_y:
                    index.setdefault(self.equi_key_y(right), []).append(right)
                self._y_indexes[tile.y] = index
            # Probing left-major with buckets in chunk order reproduces
            # the nested loop's match order exactly, so the stable sort
            # below yields byte-identical output.
            matches = []
            key_of = self.equi_key_x
            predicate = self.predicate
            scorer = self.scorer
            for left in chunk_x:
                bucket = index.get(key_of(left))
                if not bucket:
                    continue
                stats.pairs_probed += len(bucket)
                for right in bucket:
                    if predicate(left, right):
                        matches.append(
                            JoinedPair(left, right, scorer(left, right), tile)
                        )
        else:
            stats.pairs_probed += len(chunk_x) * len(chunk_y)
            matches = [
                JoinedPair(left, right, self.scorer(left, right), tile)
                for left in chunk_x
                for right in chunk_y
                if self.predicate(left, right)
            ]
        # Within a tile, emit best combinations first: results are then
        # presented "in the order in which they are computed, tile by tile".
        matches.sort(key=lambda pair: -pair.score)
        pairs.extend(matches)


class PipeJoinExecutor:
    """Pipe join: invoke the downstream service once per upstream tuple.

    ``invoke`` maps an upstream tuple to a fresh :class:`ChunkSource`
    (the downstream invocation with piped bindings); ``fetches`` chunks
    are drawn from each invocation — the nested-loop/rectangular shape the
    chapter prescribes for pipe joins.
    """

    def __init__(
        self,
        upstream: Iterable[ServiceTuple],
        invoke: Callable[[ServiceTuple], ChunkSource],
        fetches: int = 1,
        k: int | None = None,
        scorer: Callable[[ServiceTuple, ServiceTuple], float] = product_score,
        retry: "Retrier | None" = None,
        degradation: str = "partial",
    ) -> None:
        if fetches <= 0:
            raise ExecutionError("fetches must be positive")
        self.upstream = upstream
        self.invoke = invoke
        self.fetches = fetches
        self.k = k
        self.scorer = scorer
        self.retry = retry
        self.degradation = _coerce_degradation(degradation)

    def run(self) -> JoinResult:
        stats = JoinStatistics()
        pairs: list[JoinedPair] = []
        for row, left in enumerate(self.upstream):
            if self.k is not None and len(pairs) >= self.k:
                break
            source = self.invoke(left)
            for fetch_index in range(self.fetches):
                try:
                    chunk = _fetch_chunk(source, self.retry)
                except RetryExhaustedError:
                    if self.degradation == "fail":
                        raise
                    # This invocation is down; move to the next upstream
                    # tuple and join what already arrived.
                    break
                if chunk is None:
                    break
                stats.calls_y += 1
                tile = Tile(row, fetch_index)
                stats.trace.append(tile)
                stats.tiles_processed += 1
                stats.candidates += len(chunk)
                stats.pairs_probed += len(chunk)
                for right in chunk:
                    pairs.append(
                        JoinedPair(left, right, self.scorer(left, right), tile)
                    )
        stats.results = len(pairs)
        if self.k is not None:
            pairs = pairs[: self.k]
            stats.results = len(pairs)
        return JoinResult(pairs=pairs, stats=stats)


def make_executor(
    spec: JoinMethodSpec,
    source_x: ChunkSource,
    source_y: ChunkSource,
    predicate: Callable[[ServiceTuple, ServiceTuple], bool],
    k: int | None = None,
    scorer: Callable[[ServiceTuple, ServiceTuple], float] = product_score,
    max_calls: int = 10_000,
    retry: "Retrier | None" = None,
    degradation: str = "partial",
    equi_key_x: Callable[[ServiceTuple], Hashable] | None = None,
    equi_key_y: Callable[[ServiceTuple], Hashable] | None = None,
    tracer: "Tracer | NullTracer | None" = None,
) -> ParallelJoinExecutor:
    """Instantiate a parallel-join executor from a method specification."""
    if spec.invocation is InvocationStrategy.NESTED_LOOP:
        schedule: InvocationSchedule = NestedLoopSchedule(spec.step_chunks)
    else:
        schedule = MergeScanSchedule(spec.ratio)
    if spec.completion is CompletionStrategy.RECTANGULAR:
        policy: CompletionPolicy = RectangularCompletion()
    else:
        policy = TriangularCompletion(
            r1=spec.ratio.numerator, r2=spec.ratio.denominator
        )
    return ParallelJoinExecutor(
        source_x=source_x,
        source_y=source_y,
        predicate=predicate,
        schedule=schedule,
        policy=policy,
        k=k,
        scorer=scorer,
        max_calls=max_calls,
        retry=retry,
        degradation=degradation,
        equi_key_x=equi_key_x,
        equi_key_y=equi_key_y,
        tracer=tracer,
    )
