"""The tile model of the join search space (Section 4.1, Fig. 4).

Joining two search services ``SX`` and ``SY`` is modelled on a Cartesian
plane: each axis lists one service's results in decreasing ranking order.
Every point is a candidate pair ``(xi, yj)``; chunking divides the plane
into rectangular **tiles** of ``nX * nY`` points, tile ``t(i, j)`` holding
the pairs from ``SX``'s *i*-th chunk and ``SY``'s *j*-th chunk.  Two tiles
are *adjacent* when they share an edge.  After ``m`` request-responses to
``SX`` and ``n`` to ``SY`` the explorable region is the ``m x n`` rectangle
of tiles at the origin.

The tile's *representative score* is the ranking of its first (best) tuple
pair — the product ``rho_X * rho_Y`` of the chunk-leading scores — which is
what extraction-optimality is defined over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.model.scoring import ScoringFunction

__all__ = ["Tile", "SearchSpace"]


@dataclass(frozen=True, order=True)
class Tile:
    """One chunk-pair region of the search space; indexes are zero-based."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x < 0 or self.y < 0:
            raise PlanError("tile indexes must be non-negative")

    @property
    def index_sum(self) -> int:
        """Sum of chunk indexes; adjacency-ordering uses this (Section 4.1:
        "if two tiles are adjacent, then the one with smaller index sum is
        extracted first by extraction-optimal methods")."""
        return self.x + self.y

    def is_adjacent(self, other: "Tile") -> bool:
        """True when the two tiles share an edge."""
        dx = abs(self.x - other.x)
        dy = abs(self.y - other.y)
        return dx + dy == 1

    def __str__(self) -> str:
        return f"t({self.x},{self.y})"


@dataclass(frozen=True)
class SearchSpace:
    """Geometry and scoring of the join search space of two chunked services.

    Parameters
    ----------
    chunk_size_x, chunk_size_y:
        The chunk sizes ``nX`` and ``nY``.
    scoring_x, scoring_y:
        Scoring functions of the two services; drive representative scores.
    """

    chunk_size_x: int
    chunk_size_y: int
    scoring_x: ScoringFunction
    scoring_y: ScoringFunction

    def __post_init__(self) -> None:
        if self.chunk_size_x <= 0 or self.chunk_size_y <= 0:
            raise PlanError("chunk sizes must be positive")

    @property
    def points_per_tile(self) -> int:
        """Candidate pairs per tile: ``nX * nY``."""
        return self.chunk_size_x * self.chunk_size_y

    def representative_score(self, tile: Tile) -> float:
        """Score of the tile's best pair: product of chunk-leading scores.

        Section 4.4/4.1 extend extraction-optimality "from tuples to tiles
        by using the ranking of the first tuple of the tile as
        representative for the entire tile".
        """
        sx = self.scoring_x.chunk_representative(tile.x, self.chunk_size_x)
        sy = self.scoring_y.chunk_representative(tile.y, self.chunk_size_y)
        return sx * sy

    def rectangle(self, fetched_x: int, fetched_y: int) -> tuple[Tile, ...]:
        """All tiles explorable after the given fetch counts, row-major."""
        return tuple(
            Tile(x, y) for x in range(fetched_x) for y in range(fetched_y)
        )

    def best_unexplored(
        self, fetched_x: int, fetched_y: int, explored: frozenset[Tile]
    ) -> Tile | None:
        """Loaded-but-unexplored tile with the best representative score."""
        candidates = [
            tile
            for tile in self.rectangle(fetched_x, fetched_y)
            if tile not in explored
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda tile: (self.representative_score(tile), -tile.index_sum),
        )
