"""Join-method specification: the three orthogonal axes of Section 4.

A join method is characterised by

* **topology** — pipe (sequential, output of one service feeding the input
  of another) vs. parallel (independent invocations composed by an explicit
  join node);
* **invocation strategy** — nested-loop (exhaust the ``h`` high-score
  chunks of a *step* service first) vs. merge-scan (alternate calls,
  possibly with an inter-service ratio ``r = r1/r2``);
* **completion strategy** — rectangular (process every tile as soon as its
  chunks are available) vs. triangular (process tiles diagonally, bounded
  by ``x*r2 + y*r1 < c`` for growing ``c``).

The classification "gives rise to eight possible methods", not all of
which make practical sense (Section 4.5); :func:`JoinMethodSpec.is_sensible`
encodes the chapter's judgements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction

from repro.errors import PlanError

__all__ = [
    "JoinTopology",
    "InvocationStrategy",
    "CompletionStrategy",
    "JoinMethodSpec",
    "ALL_METHODS",
]


class JoinTopology(Enum):
    """How the two joined services are invoked relative to each other."""

    PIPE = "pipe"
    PARALLEL = "parallel"


class InvocationStrategy(Enum):
    """Order and frequency of calls to the two services (Section 4.3)."""

    NESTED_LOOP = "nested-loop"
    MERGE_SCAN = "merge-scan"


class CompletionStrategy(Enum):
    """Order in which tiles are processed by the join (Section 4.4)."""

    RECTANGULAR = "rectangular"
    TRIANGULAR = "triangular"


@dataclass(frozen=True)
class JoinMethodSpec:
    """A fully specified join method.

    Parameters
    ----------
    topology, invocation, completion:
        The three orthogonal choices.
    ratio:
        Merge-scan inter-service ratio ``r1/r2`` — calls to the first
        service per ``r2`` calls to the second (Section 4.3.2's example is
        ``r = 3/5``).  Ignored by nested-loop.
    step_chunks:
        Nested-loop plateau width ``h`` — chunks fetched from the step
        service before scanning the other.  Ignored by merge-scan.
    """

    topology: JoinTopology = JoinTopology.PARALLEL
    invocation: InvocationStrategy = InvocationStrategy.MERGE_SCAN
    completion: CompletionStrategy = CompletionStrategy.TRIANGULAR
    ratio: Fraction = Fraction(1, 1)
    step_chunks: int = 1

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise PlanError("inter-service ratio must be positive")
        if self.step_chunks <= 0:
            raise PlanError("step_chunks (h) must be positive")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``MS/tri`` (as annotated in Fig. 2)."""
        inv = "NL" if self.invocation is InvocationStrategy.NESTED_LOOP else "MS"
        comp = "rect" if self.completion is CompletionStrategy.RECTANGULAR else "tri"
        return f"{inv}/{comp}"

    def is_sensible(self) -> bool:
        """Whether the combination "makes sense in practice" (Section 4.5).

        The chapter singles out two judgements: merge-scan with rectangular
        completion and ratio 1 "typically makes sense for parallel joins";
        pipe joins "are better performed via nested loops with rectangular
        completion"; and "rectangular completion applied to nested loop"
        *in a parallel setting* "makes little sense" — the nested-loop
        exploration is inherently column-shaped, so pairing it with the
        diagonal-processing triangular completion wastes the step
        information.  We encode: pipe joins pair with nested-loop +
        rectangular; parallel joins accept everything except
        nested-loop + triangular.
        """
        if self.topology is JoinTopology.PIPE:
            return (
                self.invocation is InvocationStrategy.NESTED_LOOP
                and self.completion is CompletionStrategy.RECTANGULAR
            )
        return not (
            self.invocation is InvocationStrategy.NESTED_LOOP
            and self.completion is CompletionStrategy.TRIANGULAR
        )

    def __str__(self) -> str:
        parts = [self.topology.value, self.invocation.value, self.completion.value]
        if self.invocation is InvocationStrategy.MERGE_SCAN and self.ratio != 1:
            parts.append(f"r={self.ratio}")
        if self.invocation is InvocationStrategy.NESTED_LOOP:
            parts.append(f"h={self.step_chunks}")
        return "+".join(parts)


#: Every (topology, invocation, completion) combination — the "eight
#: possible methods" of Section 4.5 — with default parameters.
ALL_METHODS: tuple[JoinMethodSpec, ...] = tuple(
    JoinMethodSpec(topology=topo, invocation=inv, completion=comp)
    for topo in JoinTopology
    for inv in InvocationStrategy
    for comp in CompletionStrategy
)
