"""Worst-case-optimal multiway join kernel (Leapfrog Triejoin style).

The engine's binary-cascade joins (hash-indexed since PR 2) materialize
every intermediate relation, which blows up on the cyclic / multi-
predicate topologies search-computing queries naturally produce: a
triangle ``R(a,b) |><| S(b,c) |><| T(c,a)`` pays for ``|R |><| S|``
pairs even when the closed triangle count is tiny.  This module adds the
worst-case-optimal alternative (Veldhuizen 2012): sorted **trie
iterators** over each relation's tuples, one trie level per join
variable, intersected level-by-level with **leapfrog** seeks.  The
frontier of a leapfrog join is one key per iterator — no intermediate
relation ever exists — and the number of seeks is bounded by the
AGM-optimal worst case.

Building blocks
---------------
``Relation``
    An alias plus its ranked :class:`~repro.model.tuples.ServiceTuple`
    buffer (drainable from a :class:`~repro.joins.methods.ChunkSource`,
    remembering each tuple's chunk for tile-level accounting).
``JoinGraph``
    Equality predicates over aliases; union-find collapses transitively
    equal attribute occurrences into *join variables* and fixes a
    deterministic global variable order (highest degree first).
``TrieIterator``
    Array-backed sorted trie over one relation: ``open``/``up``/
    ``next``/``seek`` over distinct key prefixes, groups of tuples at
    the leaves.  Values order through :func:`orderable_key`, a total
    order over heterogeneous frozen values.
``MultiwayJoinExecutor``
    The leapfrog triejoin itself; enumerates the full join with
    ``pairs_probed``-style accounting and zero intermediate
    materialization, then finalizes deterministically.
``BinaryCascadeExecutor``
    The baseline it is benchmarked against: left-deep hash-join
    cascade materializing every intermediate, counting the pairs it
    forms.

Determinism contract (shared with ``joins/ranked.py`` and
``joins/topk.py``): every kernel scores components through
:func:`score_components` (alias-sorted summation, so float addition
associates identically) and finalizes through :func:`finalize_rows`
(sort by ``(-score, canonical_row_key)``, cut to ``k``) — equal-score
rows therefore enumerate in the same order under every kernel, and
top-k outputs are byte-identical across kernels.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ExecutionError
from repro.joins.methods import ChunkSource
from repro.model.tuples import RankingFunction, ServiceTuple

__all__ = [
    "KNOWN_JOIN_KERNELS",
    "BinaryCascadeExecutor",
    "EquiPredicate",
    "JoinGraph",
    "JoinedRow",
    "MultiwayJoinExecutor",
    "MultiwayJoinResult",
    "MultiwayJoinStatistics",
    "Relation",
    "TrieIterator",
    "canonical_row_key",
    "canonical_tuple_key",
    "finalize_rows",
    "orderable_key",
    "score_components",
    "triangle_graph",
]

#: The kernel knob's vocabulary, threaded through ``OptimizerConfig``,
#: ``PlanExecutor``, and the CLI.  ``auto`` resolves per plan: wcoj when
#: a merge node carries >= 2 equality predicates (the cyclic-closure
#: shape), binary otherwise.
KNOWN_JOIN_KERNELS = ("binary", "wcoj", "auto")


# ----------------------------------------------------------------------------- #
# Canonical ordering helpers
# ----------------------------------------------------------------------------- #


def orderable_key(value: Any) -> tuple:
    """A total order over heterogeneous frozen tuple values.

    Python refuses ``3 < "3"``; trie iterators need *every* pair of
    attribute values comparable so seeks are well-defined.  Values rank
    by type class first, then by value within the class; containers
    recurse; anything else falls back to ``repr`` (deterministic for
    the frozen value types :func:`~repro.model.tuples.freeze_value`
    produces).
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, tuple):
        return (4, tuple(orderable_key(v) for v in value))
    return (5, type(value).__qualname__, repr(value))


def canonical_tuple_key(tup: ServiceTuple) -> tuple:
    """Deterministic identity of one service tuple within its source."""
    return (tup.source, tup.position)


def canonical_row_key(components: Mapping[str, ServiceTuple]) -> tuple:
    """Alias-sorted identity of a joined row — the shared tie-breaker."""
    return tuple(
        (alias, *canonical_tuple_key(components[alias]))
        for alias in sorted(components)
    )


def score_components(
    ranking: RankingFunction, components: Mapping[str, ServiceTuple]
) -> float:
    """Weighted-sum score with alias-sorted summation order.

    Float addition is not associative; kernels build their component
    dicts in different orders, so scoring through this helper (rather
    than ``ranking.score_composite``) is what makes scores — and hence
    sort keys — bit-identical across kernels.
    """
    return sum(
        ranking.weight(alias) * components[alias].score
        for alias in sorted(components)
    )


@dataclass(frozen=True)
class JoinedRow:
    """One joined combination: alias -> component tuple, plus its score."""

    components: Mapping[str, ServiceTuple]
    score: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", dict(self.components))

    def key(self) -> tuple:
        return canonical_row_key(self.components)


def finalize_rows(
    rows: Iterable[JoinedRow], k: int | None = None
) -> list[JoinedRow]:
    """The shared deterministic emission order: best score first, ties by
    canonical row key, cut to ``k``."""
    ordered = sorted(rows, key=lambda r: (-r.score, r.key()))
    return ordered if k is None else ordered[:k]


# ----------------------------------------------------------------------------- #
# Relations and the join graph
# ----------------------------------------------------------------------------- #


@dataclass
class Relation:
    """An alias plus its ranked tuple buffer.

    ``chunk_of`` remembers which chunk each tuple arrived in when the
    relation was drained from a :class:`ChunkSource` — tile-level
    provenance for the extraction-optimality analysers in
    ``joins/extraction.py``.
    """

    alias: str
    tuples: list[ServiceTuple]
    chunk_of: dict[int, int] = field(default_factory=dict)
    calls: int = 0

    @classmethod
    def from_source(
        cls, alias: str, source: ChunkSource, max_chunks: int | None = None
    ) -> "Relation":
        """Drain ``source`` (fully, or ``max_chunks`` chunks) into a buffer."""
        tuples: list[ServiceTuple] = []
        chunk_of: dict[int, int] = {}
        calls = 0
        while max_chunks is None or calls < max_chunks:
            chunk = source.next_chunk()
            if not chunk:
                break
            for tup in chunk:
                chunk_of[len(tuples)] = calls
                tuples.append(tup)
            calls += 1
        return cls(alias=alias, tuples=tuples, chunk_of=chunk_of, calls=calls)

    def top_score(self) -> float:
        return self.tuples[0].score if self.tuples else 0.0

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass(frozen=True)
class EquiPredicate:
    """One equality predicate ``left_alias.left_attr = right_alias.right_attr``."""

    left_alias: str
    left_attr: str
    right_alias: str
    right_attr: str

    def occurrences(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return (
            (self.left_alias, self.left_attr),
            (self.right_alias, self.right_attr),
        )


@dataclass(frozen=True)
class JoinVariable:
    """One equivalence class of attribute occurrences."""

    name: str
    occurrences: tuple[tuple[str, str], ...]

    @property
    def aliases(self) -> tuple[str, ...]:
        seen: list[str] = []
        for alias, _ in self.occurrences:
            if alias not in seen:
                seen.append(alias)
        return tuple(seen)


class JoinGraph:
    """Aliases + equality predicates, collapsed into join variables.

    Union-find over ``(alias, attr)`` occurrences: transitively equal
    attributes become one *join variable* (one trie level).  The global
    variable order is deterministic — widest variable (most aliases)
    first, name as tie-break — which on cyclic graphs is exactly what
    lets leapfrog close cycles before enumerating their cross products.
    """

    def __init__(
        self, aliases: Sequence[str], predicates: Sequence[EquiPredicate]
    ) -> None:
        if len(set(aliases)) != len(aliases):
            raise ExecutionError("duplicate aliases in join graph")
        self.aliases = tuple(aliases)
        self.predicates = tuple(predicates)
        known = set(self.aliases)
        for pred in self.predicates:
            for alias, _ in pred.occurrences():
                if alias not in known:
                    raise ExecutionError(
                        f"predicate references unknown alias {alias!r}"
                    )
        self.variables = self._variables()

    def _variables(self) -> tuple[JoinVariable, ...]:
        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(x: tuple[str, str]) -> tuple[str, str]:
            parent.setdefault(x, x)
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for pred in self.predicates:
            left, right = pred.occurrences()
            parent[find(left)] = find(right)
        classes: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for occ in parent:
            classes.setdefault(find(occ), []).append(occ)
        variables = []
        for members in classes.values():
            ordered = tuple(sorted(members))
            name = "=".join(f"{a}.{attr}" for a, attr in ordered)
            variables.append(JoinVariable(name=name, occurrences=ordered))
        # Widest first so cyclic closures constrain the search early.
        variables.sort(key=lambda v: (-len(v.aliases), v.name))
        return tuple(variables)

    def is_cyclic(self) -> bool:
        """True when the alias-level join graph contains a cycle.

        Edges come from the predicates, not from variable-alias cliques:
        a star join (many aliases sharing one variable through a hub) is
        acyclic even though its variable spans three or more aliases.
        """
        edges = {
            frozenset((pred.left_alias, pred.right_alias))
            for pred in self.predicates
            if pred.left_alias != pred.right_alias
        }
        parent = {alias: alias for alias in self.aliases}

        def find(alias: str) -> str:
            while parent[alias] != alias:
                parent[alias] = parent[parent[alias]]
                alias = parent[alias]
            return alias

        for edge in sorted(tuple(sorted(e)) for e in edges):
            a, b = (find(x) for x in edge)
            if a == b:
                return True
            parent[a] = b
        return False

    def attrs_of(self, alias: str) -> list[tuple[int, str]]:
        """``(variable index, attr)`` pairs of ``alias`` in global order.

        A relation whose attrs land in two occurrences of the *same*
        variable (a self-equality) keeps one trie attr; the executor
        pre-filters its tuples to rows where the attrs agree.
        """
        out: list[tuple[int, str]] = []
        for index, var in enumerate(self.variables):
            attrs = [attr for a, attr in var.occurrences if a == alias]
            if attrs:
                out.append((index, attrs[0]))
        return out

    def self_equalities(self, alias: str) -> list[tuple[str, str]]:
        pairs: list[tuple[str, str]] = []
        for var in self.variables:
            attrs = sorted({attr for a, attr in var.occurrences if a == alias})
            pairs.extend((attrs[0], other) for other in attrs[1:])
        return pairs


def triangle_graph(a: str = "R", b: str = "S", c: str = "T") -> JoinGraph:
    """The canonical cyclic example: R(a,b) |><| S(b,c) |><| T(c,a)."""
    return JoinGraph(
        (a, b, c),
        (
            EquiPredicate(a, "b", b, "b"),
            EquiPredicate(b, "c", c, "c"),
            EquiPredicate(c, "a", a, "a"),
        ),
    )


# ----------------------------------------------------------------------------- #
# Trie iterators
# ----------------------------------------------------------------------------- #


class TrieIterator:
    """Array-backed sorted trie over one relation's key vectors.

    The relation's tuples are grouped by their key vector (one component
    per join variable the relation participates in, in global variable
    order) and the distinct vectors sorted once; the "trie" is then
    ranges over that sorted array.  ``open`` descends one level,
    ``next``/``seek`` move among the current level's distinct keys
    within the parent's range, ``group`` surfaces the tuples sharing the
    full vector at the deepest level.  ``seek`` is a binary search —
    the leapfrog step is O(log n) per move, as in Veldhuizen 2012.
    """

    def __init__(self, relation: Relation, attrs: Sequence[str]) -> None:
        self.relation = relation
        self.attrs = tuple(attrs)
        self.depth = -1
        self.seeks = 0
        grouped: dict[tuple, list[int]] = {}
        for index, tup in enumerate(relation.tuples):
            vector = tuple(
                orderable_key(tup.values.get(attr)) for attr in self.attrs
            )
            grouped.setdefault(vector, []).append(index)
        self._vectors = sorted(grouped)
        self._groups = [grouped[vector] for vector in self._vectors]
        # Per-level component arrays, bisectable within any parent range.
        self._components = [
            [vector[level] for vector in self._vectors]
            for level in range(len(self.attrs))
        ]
        # Stack of (parent_lo, parent_hi, segment_lo, segment_hi).
        self._stack: list[tuple[int, int, int, int]] = []
        self.at_end = not self._vectors

    # -- level navigation ----------------------------------------------------

    def _segment(self, level: int, start: int, parent_hi: int) -> tuple[int, int]:
        comps = self._components[level]
        key = comps[start]
        return start, bisect_right(comps, key, start, parent_hi)

    def open(self) -> None:
        """Descend to the first key of the next level."""
        if self._stack:
            _, _, seg_lo, seg_hi = self._stack[-1]
        else:
            seg_lo, seg_hi = 0, len(self._vectors)
        self.depth += 1
        lo, hi = self._segment(self.depth, seg_lo, seg_hi)
        self._stack.append((seg_lo, seg_hi, lo, hi))
        self.at_end = False

    def up(self) -> None:
        """Return to the parent level."""
        self._stack.pop()
        self.depth -= 1
        self.at_end = False

    def key(self) -> tuple:
        _, _, seg_lo, _ = self._stack[-1]
        return self._components[self.depth][seg_lo]

    def next(self) -> None:
        """Advance to the following distinct key at this level."""
        parent_lo, parent_hi, _, seg_hi = self._stack[-1]
        if seg_hi >= parent_hi:
            self.at_end = True
            return
        lo, hi = self._segment(self.depth, seg_hi, parent_hi)
        self._stack[-1] = (parent_lo, parent_hi, lo, hi)

    def seek(self, target: tuple) -> None:
        """Leapfrog to the first key ``>= target`` at this level."""
        parent_lo, parent_hi, seg_lo, _ = self._stack[-1]
        self.seeks += 1
        comps = self._components[self.depth]
        start = bisect_left(comps, target, seg_lo, parent_hi)
        if start >= parent_hi:
            self.at_end = True
            return
        lo, hi = self._segment(self.depth, start, parent_hi)
        self._stack[-1] = (parent_lo, parent_hi, lo, hi)

    def group(self) -> list[int]:
        """Tuple indexes sharing the full key vector (deepest level only)."""
        _, _, seg_lo, seg_hi = self._stack[-1]
        out: list[int] = []
        for entry in range(seg_lo, seg_hi):
            out.extend(self._groups[entry])
        return out


# ----------------------------------------------------------------------------- #
# Statistics
# ----------------------------------------------------------------------------- #


@dataclass
class MultiwayJoinStatistics:
    """Work accounting shared by the wcoj kernel and the binary baseline.

    ``pairs_probed`` counts candidate pairings *formed or examined*: for
    the cascade every materialized intermediate row plus every bucket
    entry inspected; for leapfrog every seek/advance plus every member
    of an emitted leaf product.  ``max_intermediate`` is the peak row
    count of any materialized intermediate relation — structurally zero
    for leapfrog, whose only state is one trie position per relation.
    """

    pairs_probed: int = 0
    seeks: int = 0
    results: int = 0
    max_intermediate: int = 0
    intermediate_rows: int = 0
    relations: int = 0
    calls: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "pairs_probed": self.pairs_probed,
            "seeks": self.seeks,
            "results": self.results,
            "max_intermediate": self.max_intermediate,
            "intermediate_rows": self.intermediate_rows,
            "relations": self.relations,
        }


@dataclass
class MultiwayJoinResult:
    rows: list[JoinedRow]
    stats: MultiwayJoinStatistics


# ----------------------------------------------------------------------------- #
# Leapfrog triejoin
# ----------------------------------------------------------------------------- #


class MultiwayJoinExecutor:
    """Leapfrog triejoin over ``relations`` under ``graph``.

    Enumerates the full join (optionally post-filtered) with no
    intermediate materialization, scores every row through the shared
    alias-sorted summation, and finalizes with the shared deterministic
    order.  ``k`` cuts the *output*, not the search — ranked (early-
    terminating) top-k is :class:`repro.joins.ranked.RankedEnumerator`.
    """

    def __init__(
        self,
        relations: Sequence[Relation],
        graph: JoinGraph,
        ranking: RankingFunction | None = None,
        k: int | None = None,
        post_filter: Callable[[Mapping[str, ServiceTuple]], bool] | None = None,
    ) -> None:
        if tuple(r.alias for r in relations) != graph.aliases:
            raise ExecutionError("relations must match the graph's aliases")
        self.relations = tuple(relations)
        self.graph = graph
        self.ranking = ranking or RankingFunction.uniform(graph.aliases)
        self.k = k
        self.post_filter = post_filter

    def _prepared(self, relation: Relation) -> Relation:
        equalities = self.graph.self_equalities(relation.alias)
        if not equalities:
            return relation
        kept = [
            tup
            for tup in relation.tuples
            if all(
                tup.values.get(a) == tup.values.get(b) for a, b in equalities
            )
        ]
        return Relation(alias=relation.alias, tuples=kept)

    def run(self) -> MultiwayJoinResult:
        stats = MultiwayJoinStatistics(relations=len(self.relations))
        variables = self.graph.variables
        # Per-relation trie iterators plus their (variable -> own level) map.
        iters: list[TrieIterator] = []
        levels_of: list[dict[int, int]] = []
        for relation in self.relations:
            attr_pairs = self.graph.attrs_of(relation.alias)
            iters.append(
                TrieIterator(
                    self._prepared(relation),
                    [attr for _, attr in attr_pairs],
                )
            )
            levels_of.append(
                {var: own for own, (var, _) in enumerate(attr_pairs)}
            )
        participants = [
            [i for i, levels in enumerate(levels_of) if var in levels]
            for var in range(len(variables))
        ]
        rows: list[JoinedRow] = []

        def emit() -> None:
            groups = [it.group() if it.attrs else range(len(it.relation)) for it in iters]
            if any(not g for g in groups):
                return
            self._emit_product(groups, iters, rows, stats)

        def leapfrog(var: int) -> bool:
            """Position every participant of ``var`` on a common key.

            Returns False when the intersection at this level is empty.
            """
            active = [iters[i] for i in participants[var]]
            if any(it.at_end for it in active):
                return False
            active.sort(key=lambda it: it.key())
            p = 0
            hi = active[-1].key()
            while True:
                it = active[p]
                if it.key() == hi:
                    return True
                stats.pairs_probed += 1
                it.seek(hi)
                if it.at_end:
                    return False
                hi = it.key()
                p = (p + 1) % len(active)

        def search(var: int) -> None:
            if var == len(variables):
                emit()
                return
            for i in participants[var]:
                iters[i].open()
            try:
                while leapfrog(var):
                    search(var + 1)
                    head = iters[participants[var][0]]
                    stats.pairs_probed += 1
                    head.next()
                    if head.at_end:
                        break
            finally:
                for i in participants[var]:
                    iters[i].up()

        if all(len(it.relation) for it in iters):
            search(0)
        stats.seeks = sum(it.seeks for it in iters)
        stats.results = len(rows)
        return MultiwayJoinResult(rows=finalize_rows(rows, self.k), stats=stats)

    def _emit_product(
        self,
        groups: Sequence[Sequence[int]],
        iters: Sequence[TrieIterator],
        rows: list[JoinedRow],
        stats: MultiwayJoinStatistics,
    ) -> None:
        components: dict[str, ServiceTuple] = {}

        def expand(level: int) -> None:
            if level == len(groups):
                stats.pairs_probed += 1
                if self.post_filter is not None and not self.post_filter(
                    components
                ):
                    return
                rows.append(
                    JoinedRow(
                        components=dict(components),
                        score=score_components(self.ranking, components),
                    )
                )
                return
            relation = iters[level].relation
            for index in groups[level]:
                components[relation.alias] = relation.tuples[index]
                expand(level + 1)
            components.pop(relation.alias, None)

        expand(0)


# ----------------------------------------------------------------------------- #
# Binary cascade baseline
# ----------------------------------------------------------------------------- #


class BinaryCascadeExecutor:
    """Left-deep hash-join cascade — the pre-existing execution shape.

    Joins relations in the given order, hash-indexing each new relation
    on the attribute vector its evaluable predicates bind, and
    **materializes every intermediate**.  ``pairs_probed`` counts every
    bucket entry examined (each is a formed intermediate candidate);
    ``max_intermediate`` is the largest materialized intermediate.  The
    output goes through the same finalizer as the wcoj kernel, so the
    top-k is byte-identical — only the work differs.
    """

    def __init__(
        self,
        relations: Sequence[Relation],
        graph: JoinGraph,
        ranking: RankingFunction | None = None,
        k: int | None = None,
        post_filter: Callable[[Mapping[str, ServiceTuple]], bool] | None = None,
        order: Sequence[str] | None = None,
    ) -> None:
        if tuple(r.alias for r in relations) != graph.aliases:
            raise ExecutionError("relations must match the graph's aliases")
        self.relations = {r.alias: r for r in relations}
        self.graph = graph
        self.ranking = ranking or RankingFunction.uniform(graph.aliases)
        self.k = k
        self.post_filter = post_filter
        self.order = tuple(order) if order is not None else graph.aliases
        if sorted(self.order) != sorted(graph.aliases):
            raise ExecutionError("order must permute the graph's aliases")

    def _binding_attrs(
        self, bound: set[str], alias: str
    ) -> list[tuple[str, str, str]]:
        """``(bound_alias, bound_attr, new_attr)`` for evaluable predicates."""
        out: list[tuple[str, str, str]] = []
        for var in self.graph.variables:
            new_attrs = sorted(
                {attr for a, attr in var.occurrences if a == alias}
            )
            if not new_attrs:
                continue
            for b_alias, b_attr in var.occurrences:
                if b_alias in bound:
                    out.append((b_alias, b_attr, new_attrs[0]))
                    break
        return out

    def run(self) -> MultiwayJoinResult:
        stats = MultiwayJoinStatistics(relations=len(self.order))
        first = self.relations[self.order[0]]
        current: list[dict[str, ServiceTuple]] = [
            {first.alias: tup} for tup in first.tuples
        ]
        bound = {first.alias}
        for step, alias in enumerate(self.order[1:]):
            relation = self.relations[alias]
            bindings = self._binding_attrs(bound, alias)
            self_eq = self.graph.self_equalities(alias)
            index: dict[tuple, list[ServiceTuple]] = {}
            for tup in relation.tuples:
                if self_eq and any(
                    tup.values.get(a) != tup.values.get(b) for a, b in self_eq
                ):
                    continue
                key = tuple(
                    orderable_key(tup.values.get(attr))
                    for _, _, attr in bindings
                )
                index.setdefault(key, []).append(tup)
            joined: list[dict[str, ServiceTuple]] = []
            for row in current:
                key = tuple(
                    orderable_key(row[b_alias].values.get(b_attr))
                    for b_alias, b_attr, _ in bindings
                )
                for tup in index.get(key, ()):
                    stats.pairs_probed += 1
                    extended = dict(row)
                    extended[alias] = tup
                    joined.append(extended)
            current = joined
            bound.add(alias)
            is_last = step == len(self.order) - 2
            if not is_last:
                stats.intermediate_rows += len(current)
                stats.max_intermediate = max(
                    stats.max_intermediate, len(current)
                )
        rows = [
            JoinedRow(
                components=row, score=score_components(self.ranking, row)
            )
            for row in current
            if self.post_filter is None or self.post_filter(row)
        ]
        stats.results = len(rows)
        return MultiwayJoinResult(rows=finalize_rows(rows, self.k), stats=stats)
