"""Top-k rank join with correctness guarantees (the chapter's pointer to
"top-k join methods, described in the next chapter").

The methods of Section 4 are fast but "do not guarantee top-k results".
This module supplies the guaranteed variant as an extension feature: a
hash-rank-join (HRJN-style) executor over two ranked chunked sources with
a weighted-sum combination score.

Invariant: a candidate combination may be emitted only when its combined
score is at least the *threshold*

``T = max(wx * top_x + wy * bot_y,  wx * bot_x + wy * top_y)``

where ``top``/``bot`` are the best/last-seen scores per source — no
not-yet-seen combination can ever score above ``T``, so emission order is
provably the global top-k order.  The pull strategy is HRJN*'s: fetch next
from the source whose bound dominates the threshold, which realises a
merge-scan with a *variable* inter-service ratio driven by the score
distributions (the Chapter 11 behaviour the reproduced chapter brackets).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExecutionError
from repro.joins.methods import ChunkSource, JoinedPair, JoinResult, JoinStatistics
from repro.joins.searchspace import Tile
from repro.joins.strategies import Axis
from repro.model.tuples import ServiceTuple

__all__ = ["RankJoinExecutor"]

_EPS = 1e-9


@dataclass
class _SourceState:
    """Buffered tuples and score bounds for one side of the rank join."""

    buffer: list[tuple[ServiceTuple, int]]  # (tuple, chunk index)
    top: float | None = None
    bottom: float | None = None
    exhausted: bool = False
    chunks: int = 0

    def absorb(self, chunk: list[ServiceTuple]) -> list[tuple[ServiceTuple, int]]:
        new = [(tup, self.chunks) for tup in chunk]
        self.buffer.extend(new)
        if self.top is None and chunk:
            self.top = chunk[0].score
        if chunk:
            self.bottom = chunk[-1].score
        self.chunks += 1
        return new


class RankJoinExecutor:
    """Guaranteed top-k join of two ranked sources under a weighted sum.

    Parameters
    ----------
    source_x, source_y:
        Chunked ranked sources.
    predicate:
        Join predicate over tuple pairs.
    weight_x, weight_y:
        Non-negative weights of the combination score
        ``wx * score_x + wy * score_y``.
    k:
        Number of top combinations to produce.
    max_calls:
        Safety bound on total fetches.
    """

    def __init__(
        self,
        source_x: ChunkSource,
        source_y: ChunkSource,
        predicate: Callable[[ServiceTuple, ServiceTuple], bool],
        weight_x: float = 0.5,
        weight_y: float = 0.5,
        k: int = 10,
        max_calls: int = 10_000,
    ) -> None:
        if weight_x < 0 or weight_y < 0:
            raise ExecutionError("weights must be non-negative")
        if k <= 0:
            raise ExecutionError("k must be positive")
        self.source_x = source_x
        self.source_y = source_y
        self.predicate = predicate
        self.weight_x = weight_x
        self.weight_y = weight_y
        self.k = k
        self.max_calls = max_calls

    def _score(self, left: ServiceTuple, right: ServiceTuple) -> float:
        return self.weight_x * left.score + self.weight_y * right.score

    def run(self) -> JoinResult:
        state_x = _SourceState(buffer=[])
        state_y = _SourceState(buffer=[])
        stats = JoinStatistics()
        # Max-heap of candidates: (-score, sequence, pair).
        heap: list[tuple[float, int, JoinedPair]] = []
        counter = itertools.count()
        emitted: list[JoinedPair] = []

        def fetch(axis: Axis) -> None:
            source = self.source_x if axis is Axis.X else self.source_y
            state = state_x if axis is Axis.X else state_y
            chunk = source.next_chunk()
            if chunk is None or not chunk:
                state.exhausted = True
                return
            if axis is Axis.X:
                stats.calls_x += 1
            else:
                stats.calls_y += 1
            new = state.absorb(chunk)
            other = state_y if axis is Axis.X else state_x
            for tup, chunk_index in new:
                for other_tup, other_chunk in other.buffer:
                    left, right = (
                        (tup, other_tup) if axis is Axis.X else (other_tup, tup)
                    )
                    stats.candidates += 1
                    if self.predicate(left, right):
                        tile = (
                            Tile(chunk_index, other_chunk)
                            if axis is Axis.X
                            else Tile(other_chunk, chunk_index)
                        )
                        pair = JoinedPair(left, right, self._score(left, right), tile)
                        heapq.heappush(heap, (-pair.score, next(counter), pair))

        def threshold() -> float:
            if state_x.top is None or state_y.top is None:
                return float("inf")
            bot_x = 0.0 if state_x.exhausted else (state_x.bottom or 0.0)
            bot_y = 0.0 if state_y.exhausted else (state_y.bottom or 0.0)
            term_x = self.weight_x * state_x.top + self.weight_y * bot_y
            term_y = self.weight_x * bot_x + self.weight_y * state_y.top
            if state_x.exhausted and state_y.exhausted:
                return -float("inf")
            return max(term_x, term_y)

        # Prime both sources so both tops are known.
        fetch(Axis.X)
        fetch(Axis.Y)

        while len(emitted) < self.k:
            # Emit every candidate already provably in the top-k order.
            while heap and -heap[0][0] >= threshold() - _EPS:
                _, _, pair = heapq.heappop(heap)
                emitted.append(pair)
                if len(emitted) >= self.k:
                    break
            if len(emitted) >= self.k:
                break
            if state_x.exhausted and state_y.exhausted:
                while heap and len(emitted) < self.k:
                    _, _, pair = heapq.heappop(heap)
                    emitted.append(pair)
                break
            if stats.total_calls >= self.max_calls:
                break
            # HRJN*-style pull: fetch from the side whose term dominates the
            # threshold (its bound is the looser one, so tightening it makes
            # the fastest progress).
            bot_x = 0.0 if state_x.exhausted else (state_x.bottom or 0.0)
            bot_y = 0.0 if state_y.exhausted else (state_y.bottom or 0.0)
            term_x = (
                self.weight_x * (state_x.top or 0.0) + self.weight_y * bot_y
            )
            term_y = (
                self.weight_x * bot_x + self.weight_y * (state_y.top or 0.0)
            )
            if state_x.exhausted:
                fetch(Axis.Y)
            elif state_y.exhausted:
                fetch(Axis.X)
            elif term_x >= term_y:
                fetch(Axis.Y)
            else:
                fetch(Axis.X)

        stats.results = len(emitted)
        stats.tiles_processed = state_x.chunks * state_y.chunks
        return JoinResult(pairs=emitted, stats=stats)
