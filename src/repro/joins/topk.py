"""Top-k rank join with correctness guarantees (the chapter's pointer to
"top-k join methods, described in the next chapter").

The methods of Section 4 are fast but "do not guarantee top-k results".
This module supplies the guaranteed variant as an extension feature: a
hash-rank-join (HRJN-style) executor over two ranked chunked sources with
a weighted-sum combination score.

Invariant: a candidate combination may be emitted only when its combined
score is at least the *threshold*

``T = max(wx * top_x + wy * bot_y,  wx * bot_x + wy * top_y)``

where ``top``/``bot`` are the best/last-seen scores per source — no
not-yet-seen combination can ever score above ``T``, so emission order is
provably the global top-k order.  The pull strategy is HRJN*'s: fetch next
from the source whose bound dominates the threshold, which realises a
merge-scan with a *variable* inter-service ratio driven by the score
distributions (the Chapter 11 behaviour the reproduced chapter brackets).

Since the wcoj/ranked kernel subsystem landed, this module is also the
**kernel facade**: :func:`topk_join` runs one multiway top-k join under
any of the three kernels (``binary`` cascade, ``wcoj`` leapfrog,
``ranked`` lazy enumeration) with the shared determinism contract —
scores summed alias-sorted, ties broken by canonical row key — so equal-
score tuples enumerate in the same order whichever kernel ran.  The
:class:`RankJoinExecutor` itself now finalizes under the same contract
(collect until the threshold is strictly below the k-th best, then sort
by ``(-score, canonical key)``), and :func:`tile_trace` maps any
kernel's emission order back onto chunk tiles so the Section 4.1
extraction-optimality analysers apply to the new kernels unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ExecutionError
from repro.joins.methods import ChunkSource, JoinedPair, JoinResult, JoinStatistics
from repro.joins.ranked import RankedEnumerator
from repro.joins.searchspace import Tile
from repro.joins.strategies import Axis
from repro.joins.wcoj import (
    BinaryCascadeExecutor,
    JoinGraph,
    JoinedRow,
    MultiwayJoinExecutor,
    Relation,
    canonical_tuple_key,
)
from repro.model.tuples import RankingFunction, ServiceTuple

__all__ = [
    "RankJoinExecutor",
    "TopKJoinOutcome",
    "canonical_pair_key",
    "tile_trace",
    "topk_join",
]

_EPS = 1e-9


def canonical_pair_key(pair: JoinedPair) -> tuple:
    """Deterministic tie-break identity of one joined pair."""
    return (canonical_tuple_key(pair.left), canonical_tuple_key(pair.right))


@dataclass
class _SourceState:
    """Buffered tuples and score bounds for one side of the rank join."""

    buffer: list[tuple[ServiceTuple, int]]  # (tuple, chunk index)
    top: float | None = None
    bottom: float | None = None
    exhausted: bool = False
    chunks: int = 0

    def absorb(self, chunk: list[ServiceTuple]) -> list[tuple[ServiceTuple, int]]:
        new = [(tup, self.chunks) for tup in chunk]
        self.buffer.extend(new)
        if self.top is None and chunk:
            self.top = chunk[0].score
        if chunk:
            self.bottom = chunk[-1].score
        self.chunks += 1
        return new


class RankJoinExecutor:
    """Guaranteed top-k join of two ranked sources under a weighted sum.

    Parameters
    ----------
    source_x, source_y:
        Chunked ranked sources.
    predicate:
        Join predicate over tuple pairs.
    weight_x, weight_y:
        Non-negative weights of the combination score
        ``wx * score_x + wy * score_y``.
    k:
        Number of top combinations to produce.
    max_calls:
        Safety bound on total fetches.
    """

    def __init__(
        self,
        source_x: ChunkSource,
        source_y: ChunkSource,
        predicate: Callable[[ServiceTuple, ServiceTuple], bool],
        weight_x: float = 0.5,
        weight_y: float = 0.5,
        k: int = 10,
        max_calls: int = 10_000,
    ) -> None:
        if weight_x < 0 or weight_y < 0:
            raise ExecutionError("weights must be non-negative")
        if k <= 0:
            raise ExecutionError("k must be positive")
        self.source_x = source_x
        self.source_y = source_y
        self.predicate = predicate
        self.weight_x = weight_x
        self.weight_y = weight_y
        self.k = k
        self.max_calls = max_calls

    def _score(self, left: ServiceTuple, right: ServiceTuple) -> float:
        return self.weight_x * left.score + self.weight_y * right.score

    def run(self) -> JoinResult:
        state_x = _SourceState(buffer=[])
        state_y = _SourceState(buffer=[])
        stats = JoinStatistics()
        # Max-heap of candidates: (-score, sequence, pair).
        heap: list[tuple[float, int, JoinedPair]] = []
        counter = itertools.count()

        def fetch(axis: Axis) -> None:
            source = self.source_x if axis is Axis.X else self.source_y
            state = state_x if axis is Axis.X else state_y
            chunk = source.next_chunk()
            if chunk is None or not chunk:
                state.exhausted = True
                return
            if axis is Axis.X:
                stats.calls_x += 1
            else:
                stats.calls_y += 1
            new = state.absorb(chunk)
            other = state_y if axis is Axis.X else state_x
            for tup, chunk_index in new:
                for other_tup, other_chunk in other.buffer:
                    left, right = (
                        (tup, other_tup) if axis is Axis.X else (other_tup, tup)
                    )
                    stats.candidates += 1
                    if self.predicate(left, right):
                        tile = (
                            Tile(chunk_index, other_chunk)
                            if axis is Axis.X
                            else Tile(other_chunk, chunk_index)
                        )
                        pair = JoinedPair(left, right, self._score(left, right), tile)
                        heapq.heappush(heap, (-pair.score, next(counter), pair))

        def threshold() -> float:
            if state_x.top is None or state_y.top is None:
                return float("inf")
            bot_x = 0.0 if state_x.exhausted else (state_x.bottom or 0.0)
            bot_y = 0.0 if state_y.exhausted else (state_y.bottom or 0.0)
            term_x = self.weight_x * state_x.top + self.weight_y * bot_y
            term_y = self.weight_x * bot_x + self.weight_y * state_y.top
            if state_x.exhausted and state_y.exhausted:
                return -float("inf")
            return max(term_x, term_y)

        # Prime both sources so both tops are known.
        fetch(Axis.X)
        fetch(Axis.Y)

        # Deterministic emission (the cross-kernel tie-break contract):
        # collect provable candidates until the threshold sits *strictly*
        # below the k-th best collected score — every potential tie is in
        # hand — then sort by (-score, canonical key) and cut to k.  The
        # heap's discovery order never shows in the output.
        collected: list[JoinedPair] = []

        def kth_score() -> float:
            if len(collected) < self.k:
                return -float("inf")
            return heapq.nlargest(self.k, (p.score for p in collected))[-1]

        while True:
            # Collect every candidate already provably in the top-k range.
            while heap and -heap[0][0] >= threshold() - _EPS:
                _, _, pair = heapq.heappop(heap)
                collected.append(pair)
            if len(collected) >= self.k and threshold() < kth_score() - _EPS:
                break
            if state_x.exhausted and state_y.exhausted:
                bar = kth_score()
                while heap and -heap[0][0] >= bar - _EPS:
                    _, _, pair = heapq.heappop(heap)
                    collected.append(pair)
                break
            if stats.total_calls >= self.max_calls:
                break
            # HRJN*-style pull: fetch from the side whose term dominates the
            # threshold (its bound is the looser one, so tightening it makes
            # the fastest progress).
            bot_x = 0.0 if state_x.exhausted else (state_x.bottom or 0.0)
            bot_y = 0.0 if state_y.exhausted else (state_y.bottom or 0.0)
            term_x = (
                self.weight_x * (state_x.top or 0.0) + self.weight_y * bot_y
            )
            term_y = (
                self.weight_x * bot_x + self.weight_y * (state_y.top or 0.0)
            )
            if state_x.exhausted:
                fetch(Axis.Y)
            elif state_y.exhausted:
                fetch(Axis.X)
            elif term_x >= term_y:
                fetch(Axis.Y)
            else:
                fetch(Axis.X)

        emitted = sorted(
            collected, key=lambda p: (-p.score, canonical_pair_key(p))
        )[: self.k]
        stats.results = len(emitted)
        stats.tiles_processed = state_x.chunks * state_y.chunks
        return JoinResult(pairs=emitted, stats=stats)


# ----------------------------------------------------------------------------- #
# Kernel facade: one top-k join, three kernels, identical answers
# ----------------------------------------------------------------------------- #


@dataclass
class TopKJoinOutcome:
    """One kernel's answer to a multiway top-k join, plus its work stats."""

    kernel: str
    rows: list[JoinedRow]
    stats: object

    def row_keys(self) -> list[tuple]:
        """Score + canonical identity per row — the cross-kernel digest."""
        return [(row.score, row.key()) for row in self.rows]


#: Kernels :func:`topk_join` dispatches over (``auto`` is a plan-level
#: notion and resolves before reaching the joins layer).
TOPK_JOIN_KERNELS = ("binary", "wcoj", "ranked")


def topk_join(
    relations: Sequence[Relation],
    graph: JoinGraph,
    ranking: RankingFunction | None = None,
    k: int = 10,
    kernel: str = "binary",
) -> TopKJoinOutcome:
    """Top-k multiway equi-join under the chosen kernel.

    All kernels honour the shared determinism contract (alias-sorted
    score summation, ``(-score, canonical row key)`` emission order), so
    the returned rows are identical — including tie order — whichever
    kernel ran; only ``stats`` differs.
    """
    if kernel == "binary":
        outcome = BinaryCascadeExecutor(
            relations, graph, ranking=ranking, k=k
        ).run()
    elif kernel == "wcoj":
        outcome = MultiwayJoinExecutor(
            relations, graph, ranking=ranking, k=k
        ).run()
    elif kernel == "ranked":
        outcome = RankedEnumerator(
            relations, graph, ranking=ranking, k=k
        ).run()
    else:
        raise ExecutionError(
            f"unknown top-k join kernel {kernel!r}; "
            f"expected one of {TOPK_JOIN_KERNELS}"
        )
    return TopKJoinOutcome(kernel=kernel, rows=outcome.rows, stats=outcome.stats)


def tile_trace(
    rows: Sequence[JoinedRow], relation_x: Relation, relation_y: Relation
) -> list[Tile]:
    """Map a two-way kernel's emission order onto chunk tiles.

    Each emitted row came from one ``(chunk_x, chunk_y)`` tile (recorded
    when the relations were drained from chunk sources); the resulting
    tile sequence is what the Section 4.1 extraction-optimality
    analysers (:mod:`repro.joins.extraction`) consume, which is how the
    new kernels plug into the existing optimality machinery.
    """
    trace: list[Tile] = []
    for row in rows:
        tx = row.components[relation_x.alias]
        ty = row.components[relation_y.alias]
        tile = Tile(
            relation_x.chunk_of.get(tx.position, 0),
            relation_y.chunk_of.get(ty.position, 0),
        )
        if not trace or trace[-1] != tile:
            trace.append(tile)
    return trace
