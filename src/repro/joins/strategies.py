"""Invocation strategies: the order and frequency of service calls.

Section 4.3 defines two named strategies:

* **Nested-loop** (4.3.1) — for a join whose first service has a *step*
  scoring function: extract all ``h`` high-ranking chunks of the step
  service first, then extract the other service's chunks one by one in
  ranking order (each new chunk completes a column of ``h`` tiles).
* **Merge-scan** (4.3.2) — absent a clear step, move "diagonally": evenly
  alternate calls, or follow an inter-service ratio ``r = r1/r2`` (fixed,
  e.g. 3/5, or variable).

A strategy here is an infinite schedule of axis choices (``X`` or ``Y``)
plus the convention of Section 4.4.1 that "the first two calls are always
alternated so as to have at least one tile for starting the exploration".
Executors consume the schedule, skipping exhausted axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Callable, Iterator

from repro.errors import PlanError

__all__ = [
    "Axis",
    "InvocationSchedule",
    "NestedLoopSchedule",
    "MergeScanSchedule",
    "VariableRatioSchedule",
    "cost_aware_schedule",
]


class Axis(Enum):
    """Which of the two joined services the next call goes to."""

    X = "x"
    Y = "y"

    @property
    def other(self) -> "Axis":
        return Axis.Y if self is Axis.X else Axis.X


class InvocationSchedule:
    """Base class: an unbounded iterator of axis choices."""

    def __iter__(self) -> Iterator[Axis]:
        raise NotImplementedError

    def prefix(self, length: int) -> tuple[Axis, ...]:
        """The first ``length`` scheduled calls (testing/inspection aid)."""
        out: list[Axis] = []
        for axis in self:
            out.append(axis)
            if len(out) >= length:
                break
        return tuple(out)


@dataclass(frozen=True)
class NestedLoopSchedule(InvocationSchedule):
    """Exhaust ``h`` chunks of the step service, then scan the other.

    The step service is conventionally the X axis.  The first two calls
    are alternated (X then Y) so that tile (0, 0) is explorable
    immediately; the remaining ``h - 1`` X fetches follow, then Y fetches
    forever.
    """

    step_chunks: int

    def __post_init__(self) -> None:
        if self.step_chunks <= 0:
            raise PlanError("step_chunks (h) must be positive")

    def __iter__(self) -> Iterator[Axis]:
        yield Axis.X
        yield Axis.Y
        for _ in range(self.step_chunks - 1):
            yield Axis.X
        while True:
            yield Axis.Y


@dataclass(frozen=True)
class MergeScanSchedule(InvocationSchedule):
    """Alternate calls following a fixed inter-service ratio ``r1/r2``.

    ``ratio = Fraction(r1, r2)`` means ``r1`` calls to X per ``r2`` calls
    to Y.  The default 1/1 "evenly alternate[s] service calls in the lack
    of better estimates of the score functions".  Scheduling uses an error
    accumulator (Bresenham style) so calls interleave as evenly as the
    ratio permits, starting X-then-Y.
    """

    ratio: Fraction = Fraction(1, 1)

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise PlanError("inter-service ratio must be positive")

    def __iter__(self) -> Iterator[Axis]:
        yield Axis.X
        yield Axis.Y
        # Maintain calls_x / calls_y ~= ratio; always call the axis whose
        # deficit w.r.t. the target proportion is larger.
        calls_x, calls_y = 1, 1
        r1 = self.ratio.numerator
        r2 = self.ratio.denominator
        while True:
            # Compare calls_x / calls_y with r1 / r2 without division.
            if calls_x * r2 <= calls_y * r1:
                calls_x += 1
                yield Axis.X
            else:
                calls_y += 1
                yield Axis.Y


@dataclass(frozen=True)
class VariableRatioSchedule(InvocationSchedule):
    """Merge-scan with a variable ratio decided call-by-call.

    ``chooser(calls_x, calls_y)`` returns the axis for the next call; this
    is the hook the chapter's *clocks* (Chapter 12 pointer) and the cost-
    driven variable-ratio top-k methods (Chapter 11 pointer) plug into.
    """

    chooser: Callable[[int, int], Axis]

    def __iter__(self) -> Iterator[Axis]:
        yield Axis.X
        yield Axis.Y
        calls_x, calls_y = 1, 1
        while True:
            axis = self.chooser(calls_x, calls_y)
            if axis is Axis.X:
                calls_x += 1
            else:
                calls_y += 1
            yield axis


def cost_aware_schedule(
    latency_x: float, latency_y: float
) -> VariableRatioSchedule:
    """Merge-scan whose variable ratio is driven by service costs.

    Section 4.3.2 points to "top-k optimal join methods whose invocation
    strategy is merge-scan with variable inter-service ratios, based upon
    service costs" (Chapter 11).  This chooser greedily maximises *newly
    explorable tiles per unit latency*: after (cx, cy) calls, one more X
    call opens ``cy`` tiles at cost ``latency_x``, one more Y call opens
    ``cx`` tiles at cost ``latency_y`` — pick the larger ratio.  For equal
    latencies this degenerates to even alternation; a cheap service gets
    proportionally more calls.
    """
    if latency_x <= 0 or latency_y <= 0:
        raise PlanError("latencies must be positive")

    def chooser(calls_x: int, calls_y: int) -> Axis:
        gain_x = calls_y / latency_x
        gain_y = calls_x / latency_y
        if gain_x > gain_y:
            return Axis.X
        if gain_y > gain_x:
            return Axis.Y
        # Tie: keep the realised ratio near the latency-implied one.
        return Axis.X if calls_x * latency_x <= calls_y * latency_y else Axis.Y

    return VariableRatioSchedule(chooser=chooser)
