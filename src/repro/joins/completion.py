"""Completion strategies: the order in which tiles are processed.

Orthogonal to the invocation strategy (which chunks get fetched when), the
completion strategy (Section 4.4) governs when a loaded tile is handed to
the join:

* **Rectangular** (4.4.1) — "processes all the tiles as soon as the
  corresponding tuples are available".  Locally extraction-optimal; with a
  nested loop whose step service drops from 1 to 0 exactly at chunk ``h``
  it is globally extraction-optimal.  Degenerates to "long and thin"
  rectangles (one new tile per I/O) when calls go to one service only.
* **Triangular** (4.4.2) — processes tiles "diagonally": a tile ``(x, y)``
  is admitted only when ``x*r2 + y*r1 < c``, where ``c`` starts at
  ``r1*r2`` and is progressively increased as exploration advances.  The
  cutoff here grows with fetch progress (``c = min(loaded_x*r2,
  loaded_y*r1)``), so corner tiles far from the diagonal stay deferred
  even though their chunks are loaded — which is what halves the processed
  candidate combinations in the Section 5.6 example (2500 → 1250).
  Locally extraction-optimal; matched with merge-scan it approximates a
  globally extraction-optimal strategy.

A :class:`TileScheduler` couples a completion policy with fetch events:
``on_fetch(axis)`` records one more chunk on that axis and returns the
tiles that became processable, in processing order.  ``flush()`` drains
deferred tiles when the join must run to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.joins.searchspace import Tile
from repro.joins.strategies import Axis

__all__ = [
    "CompletionPolicy",
    "RectangularCompletion",
    "TriangularCompletion",
    "TileScheduler",
]


class CompletionPolicy:
    """Base class: decide which loaded tiles to process, and in what order.

    When :attr:`space` is attached (executors do so automatically), batches
    are ordered by descending representative score, which is what makes
    both strategies *locally extraction-optimal* as claimed in Section 4.4;
    without a space a purely geometric diagonal order is used.
    """

    #: Search-space geometry/scoring; set by executors for score ordering.
    space: "object | None" = None

    def admissible(
        self, pending: list[Tile], loaded_x: int, loaded_y: int
    ) -> list[Tile]:
        """Subset of ``pending`` to process now, in processing order.

        ``pending`` holds loaded-but-unprocessed tiles.  Policies may defer
        tiles (triangular); :meth:`relax` is called by the scheduler's
        flush to widen the admission bound until everything drains.
        """
        raise NotImplementedError

    def relax(self) -> None:
        """Widen the admission bound one step (used to drain deferred tiles)."""

    def order_batch(self, tiles: list[Tile], geometric_key) -> list[Tile]:
        """Order one admitted batch: by score when possible, else geometry."""
        space = self.space
        if space is not None:
            return sorted(
                tiles,
                key=lambda t: (
                    -space.representative_score(t),  # type: ignore[attr-defined]
                    t.index_sum,
                    t.x,
                ),
            )
        return sorted(tiles, key=geometric_key)


@dataclass
class RectangularCompletion(CompletionPolicy):
    """Process every loaded tile immediately, best-first within a batch.

    When one fetch completes several tiles at once (a new column or row),
    the batch is ordered by representative score (falling back to index
    sum), which keeps the strategy locally extraction-optimal.
    """

    space: "object | None" = None

    def admissible(
        self, pending: list[Tile], loaded_x: int, loaded_y: int
    ) -> list[Tile]:
        return self.order_batch(list(pending), lambda t: (t.index_sum, t.x))


@dataclass
class TriangularCompletion(CompletionPolicy):
    """Diagonal processing bounded by ``x*r2 + y*r1 < c``.

    The cutoff ``c`` tracks exploration progress:
    ``c = max(r1*r2, min(loaded_x*r2, loaded_y*r1)) + slack`` where
    ``slack`` starts at 0 and is raised only by :meth:`relax` (end-of-input
    draining).  At ratio 1/1 this admits, after ``n`` balanced rounds,
    exactly the triangle ``x + y < n`` — about half of the loaded square.
    """

    r1: int = 1
    r2: int = 1
    slack: int = 0
    space: "object | None" = None

    def __post_init__(self) -> None:
        if self.r1 <= 0 or self.r2 <= 0:
            raise PlanError("triangular ratio components must be positive")
        if self.slack < 0:
            raise PlanError("slack cannot be negative")

    def weight(self, tile: Tile) -> int:
        return tile.x * self.r2 + tile.y * self.r1

    def cutoff(self, loaded_x: int, loaded_y: int) -> int:
        base = min(loaded_x * self.r2, loaded_y * self.r1)
        return max(self.r1 * self.r2, base) + self.slack

    def admissible(
        self, pending: list[Tile], loaded_x: int, loaded_y: int
    ) -> list[Tile]:
        cutoff = self.cutoff(loaded_x, loaded_y)
        admitted = [t for t in pending if self.weight(t) < cutoff]
        return self.order_batch(
            admitted, lambda t: (self.weight(t), t.index_sum, t.x)
        )

    def relax(self) -> None:
        self.slack += 1


@dataclass
class TileScheduler:
    """Couples fetch events with a completion policy.

    Tracks loaded chunk counts per axis and the processed-tile set;
    :meth:`on_fetch` returns tiles newly handed to the join, in order.
    The full processing trace (:attr:`processed`) is kept for
    extraction-optimality analysis.
    """

    policy: CompletionPolicy
    loaded_x: int = 0
    loaded_y: int = 0
    processed: list[Tile] = field(default_factory=list)
    _processed_set: set[Tile] = field(default_factory=set)

    def on_fetch(self, axis: Axis) -> list[Tile]:
        """Record one fetched chunk on ``axis``; return tiles to process."""
        if axis is Axis.X:
            self.loaded_x += 1
        else:
            self.loaded_y += 1
        return self._drain()

    def flush(self) -> list[Tile]:
        """Process every remaining loaded tile (end-of-input draining).

        Repeatedly relaxes the policy until the pending set drains; with
        rectangular completion a single drain suffices.
        """
        out: list[Tile] = []
        guard = 0
        while self._pending():
            batch = self._drain()
            if batch:
                out.extend(batch)
                continue
            self.policy.relax()
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise PlanError("completion policy failed to drain pending tiles")
        return out

    @property
    def pending_count(self) -> int:
        return len(self._pending())

    def _pending(self) -> list[Tile]:
        return [
            Tile(x, y)
            for x in range(self.loaded_x)
            for y in range(self.loaded_y)
            if Tile(x, y) not in self._processed_set
        ]

    def _drain(self) -> list[Tile]:
        pending = self._pending()
        if not pending:
            return []
        batch = self.policy.admissible(pending, self.loaded_x, self.loaded_y)
        for tile in batch:
            if tile in self._processed_set:
                raise PlanError(f"policy re-admitted processed tile {tile}")
            self._processed_set.add(tile)
            self.processed.append(tile)
        return list(batch)
