"""Lazy ranked enumeration of multiway joins (top-k without tiles).

The guaranteed rank join of :mod:`repro.joins.topk` buffers *every*
candidate pair it discovers before the threshold proves the top-k; the
binary cascade materializes whole intermediate relations.  This module
adds the third style (Tziavelis et al., "Optimal Join Algorithms Meet
Top-k"): a **priority queue over partial join prefixes** with monotone
admissible score bounds.  A prefix that has chosen tuples for the first
``j`` relations is bounded by

``sum(w_i * score(c_i) for chosen) + sum(w_i * top_i for the rest)``

where ``top_i`` is relation ``i``'s best score — never less than the
score of any completion, and non-increasing along every expansion (the
next candidate at a level scores no better; extending replaces a
relation's ``top`` with an actual candidate's score).  Popping prefixes
in bound order therefore discovers complete rows in score order, and
the enumerator stops as soon as the best open bound is strictly below
the current k-th best complete score: the global top-k emerges having
*completed* only slightly more than ``k`` rows — no tile, intermediate
relation, or full candidate cross product is ever materialized.

Candidates per level are served from a lazily built hash index (one
scan of the level's relation on first use) keyed by the attribute
vector the prefix binds, each list sorted best-score-first — the sorted
access the bound argument needs.

Determinism: completed rows are scored through
:func:`~repro.joins.wcoj.score_components` and finalized through
:func:`~repro.joins.wcoj.finalize_rows`, the same contract as the wcoj
and cascade kernels, so equal-score rows enumerate in the same order
under all three.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ExecutionError
from repro.joins.wcoj import (
    JoinGraph,
    JoinedRow,
    Relation,
    canonical_tuple_key,
    finalize_rows,
    orderable_key,
    score_components,
)
from repro.model.tuples import RankingFunction, ServiceTuple

__all__ = ["RankedEnumerationStatistics", "RankedEnumerator", "RankedResult"]

#: Strictness margin of the stopping rule: wide enough to absorb the
#: last-ulp difference between a prefix bound (summed in level order)
#: and the finalizer's alias-sorted score, narrow enough that genuinely
#: lower-scored rows can never displace a tie.
_EPS = 1e-12


@dataclass
class RankedEnumerationStatistics:
    """Laziness accounting: how much of the join was *not* done."""

    pq_pops: int = 0
    pq_pushes: int = 0
    max_heap: int = 0
    #: Complete rows actually assembled — the materialization the lazy
    #: enumerator admits to; compare against the full join cardinality.
    materialized_rows: int = 0
    #: Candidate-list entries built across all levels (sorted accesses).
    candidate_rows: int = 0
    #: Levels whose hash index was built (never more than #relations).
    index_builds: int = 0
    results: int = 0

    def as_dict(self) -> dict:
        return {
            "pq_pops": self.pq_pops,
            "pq_pushes": self.pq_pushes,
            "max_heap": self.max_heap,
            "materialized_rows": self.materialized_rows,
            "candidate_rows": self.candidate_rows,
            "index_builds": self.index_builds,
            "results": self.results,
        }


@dataclass
class RankedResult:
    rows: list[JoinedRow]
    stats: RankedEnumerationStatistics


@dataclass(frozen=True)
class _Prefix:
    """Chosen tuples for the first ``level`` relations.

    ``cursor`` indexes the candidate list the *last* chosen tuple came
    from; the sibling expansion advances it, the child expansion opens
    the next level at its first candidate.  The pair of expansions
    generates every complete combination exactly once (the standard
    product-lattice enumeration).
    """

    level: int
    components: tuple[tuple[str, ServiceTuple], ...]
    prefix_score: float
    list_key: tuple
    cursor: int


class RankedEnumerator:
    """Global top-k of a multiway equi-join, enumerated lazily.

    Parameters
    ----------
    relations / graph:
        As for :class:`~repro.joins.wcoj.MultiwayJoinExecutor`; the
        level order is the graph's alias order.
    ranking:
        Weighted-sum ranking (uniform by default).  Weights must be
        non-negative — the bound's monotonicity depends on it.
    k:
        Rows to return.
    max_pops:
        Safety bound on queue pops (defends against adversarial inputs
        in serving contexts); ``None`` means unbounded.
    """

    def __init__(
        self,
        relations: Sequence[Relation],
        graph: JoinGraph,
        ranking: RankingFunction | None = None,
        k: int = 10,
        max_pops: int | None = None,
    ) -> None:
        if tuple(r.alias for r in relations) != graph.aliases:
            raise ExecutionError("relations must match the graph's aliases")
        if k <= 0:
            raise ExecutionError("k must be positive")
        self.relations = tuple(relations)
        self.graph = graph
        self.ranking = ranking or RankingFunction.uniform(graph.aliases)
        if any(self.ranking.weight(a) < 0 for a in graph.aliases):
            raise ExecutionError("ranking weights must be non-negative")
        self.k = k
        self.max_pops = max_pops
        # Remaining-levels optimistic mass: rest[j] bounds what levels
        # j..n-1 can still contribute.
        tops = [
            self.ranking.weight(r.alias) * r.top_score()
            for r in self.relations
        ]
        self._rest = [0.0] * (len(tops) + 1)
        for j in range(len(tops) - 1, -1, -1):
            self._rest[j] = self._rest[j + 1] + tops[j]
        # (bound_alias, bound_attr, own_attr) vectors per level, against
        # the earliest bound occurrence of each shared variable.
        self._bindings: list[list[tuple[str, str, str]]] = []
        bound: set[str] = set()
        for relation in self.relations:
            entries: list[tuple[str, str, str]] = []
            for var in self.graph.variables:
                own = sorted(
                    {a for al, a in var.occurrences if al == relation.alias}
                )
                if not own:
                    continue
                for b_alias, b_attr in var.occurrences:
                    if b_alias in bound:
                        entries.append((b_alias, b_attr, own[0]))
                        break
            self._bindings.append(entries)
            bound.add(relation.alias)
        self._indexes: list[dict[tuple, list[ServiceTuple]] | None] = [
            None
        ] * len(self.relations)
        self._candidates: dict[tuple[int, tuple], list[ServiceTuple]] = {}

    # -- candidate access ----------------------------------------------------

    def _index(self, level: int, stats: RankedEnumerationStatistics):
        built = self._indexes[level]
        if built is not None:
            return built
        relation = self.relations[level]
        self_eq = self.graph.self_equalities(relation.alias)
        built = {}
        for tup in relation.tuples:
            if self_eq and any(
                tup.values.get(a) != tup.values.get(b) for a, b in self_eq
            ):
                continue
            key = tuple(
                orderable_key(tup.values.get(attr))
                for _, _, attr in self._bindings[level]
            )
            built.setdefault(key, []).append(tup)
        self._indexes[level] = built
        stats.index_builds += 1
        return built

    def _candidate_list(
        self, level: int, key: tuple, stats: RankedEnumerationStatistics
    ) -> list[ServiceTuple]:
        memo_key = (level, key)
        cached = self._candidates.get(memo_key)
        if cached is not None:
            return cached
        matches = self._index(level, stats).get(key, [])
        ordered = sorted(
            matches, key=lambda t: (-t.score, canonical_tuple_key(t))
        )
        self._candidates[memo_key] = ordered
        stats.candidate_rows += len(ordered)
        return ordered

    def _key_for(
        self, level: int, components: Mapping[str, ServiceTuple]
    ) -> tuple:
        return tuple(
            orderable_key(components[b_alias].values.get(b_attr))
            for b_alias, b_attr, _ in self._bindings[level]
        )

    # -- enumeration ---------------------------------------------------------

    def run(self) -> RankedResult:
        stats = RankedEnumerationStatistics()
        levels = len(self.relations)
        heap: list[tuple[float, int, _Prefix]] = []
        seq = itertools.count()

        def push(prefix: _Prefix, bound: float) -> None:
            heapq.heappush(heap, (-bound, next(seq), prefix))
            stats.pq_pushes += 1
            stats.max_heap = max(stats.max_heap, len(heap))

        def open_level(
            level: int,
            components: tuple[tuple[str, ServiceTuple], ...],
            prefix_score: float,
        ) -> None:
            """Push the first candidate of ``level`` under the prefix."""
            key = self._key_for(level, dict(components))
            candidates = self._candidate_list(level, key, stats)
            if not candidates:
                return
            chosen = candidates[0]
            alias = self.relations[level].alias
            score = (
                prefix_score + self.ranking.weight(alias) * chosen.score
            )
            push(
                _Prefix(
                    level=level + 1,
                    components=components + ((alias, chosen),),
                    prefix_score=score,
                    list_key=key,
                    cursor=0,
                ),
                score + self._rest[level + 1],
            )

        def push_sibling(prefix: _Prefix) -> None:
            level = prefix.level - 1
            candidates = self._candidate_list(level, prefix.list_key, stats)
            nxt = prefix.cursor + 1
            if nxt >= len(candidates):
                return
            alias, prev = prefix.components[-1]
            weight = self.ranking.weight(alias)
            chosen = candidates[nxt]
            score = (
                prefix.prefix_score - weight * prev.score + weight * chosen.score
            )
            push(
                _Prefix(
                    level=prefix.level,
                    components=prefix.components[:-1] + ((alias, chosen),),
                    prefix_score=score,
                    list_key=prefix.list_key,
                    cursor=nxt,
                ),
                score + self._rest[prefix.level],
            )

        if all(len(r) for r in self.relations):
            open_level(0, (), 0.0)

        complete: list[JoinedRow] = []
        scores: list[float] = []  # descending
        while heap:
            best_bound = -heap[0][0]
            if (
                len(complete) >= self.k
                and best_bound < scores[self.k - 1] - _EPS
            ):
                break
            if self.max_pops is not None and stats.pq_pops >= self.max_pops:
                break
            _, _, prefix = heapq.heappop(heap)
            stats.pq_pops += 1
            push_sibling(prefix)
            if prefix.level == levels:
                components = dict(prefix.components)
                row = JoinedRow(
                    components=components,
                    score=score_components(self.ranking, components),
                )
                complete.append(row)
                stats.materialized_rows += 1
                lo, hi = 0, len(scores)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if scores[mid] >= row.score:
                        lo = mid + 1
                    else:
                        hi = mid
                scores.insert(lo, row.score)
            else:
                open_level(prefix.level, prefix.components, prefix.prefix_score)

        rows = finalize_rows(complete, self.k)
        stats.results = len(rows)
        return RankedResult(rows=rows, stats=stats)
