"""Service model substrate: attributes, marts, interfaces, scoring, tuples.

This package implements the schema layer of Search Computing (book
Chapter 9 as summarised by the reproduced Chapter 10): typed attributes and
repeating groups, service marts, adorned service interfaces classified as
exact or search services, connection patterns, relevance scoring shapes,
and the tuple/composite-tuple value model with the weighted-sum global
ranking function.
"""

from repro.model.attributes import (
    Attribute,
    AttributePath,
    DataType,
    Domain,
    RepeatingGroup,
    parse_path,
)
from repro.model.connections import AttributePair, ConnectionPattern
from repro.model.registry import ServiceRegistry
from repro.model.scoring import (
    ConstantScoring,
    ExponentialScoring,
    LinearScoring,
    OpaqueScoring,
    PowerLawScoring,
    ScoringFunction,
    StepScoring,
)
from repro.model.service import (
    AccessPattern,
    Adornment,
    ServiceInterface,
    ServiceKind,
    ServiceMart,
    ServiceStats,
)
from repro.model.tuples import CompositeTuple, RankingFunction, ServiceTuple

__all__ = [
    "Attribute",
    "AttributePath",
    "DataType",
    "Domain",
    "RepeatingGroup",
    "parse_path",
    "AttributePair",
    "ConnectionPattern",
    "ServiceRegistry",
    "ConstantScoring",
    "ExponentialScoring",
    "LinearScoring",
    "OpaqueScoring",
    "PowerLawScoring",
    "ScoringFunction",
    "StepScoring",
    "AccessPattern",
    "Adornment",
    "ServiceInterface",
    "ServiceKind",
    "ServiceMart",
    "ServiceStats",
    "CompositeTuple",
    "RankingFunction",
    "ServiceTuple",
]
