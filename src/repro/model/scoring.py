"""Scoring-function models for search services.

Section 4.1 of the chapter classifies search services by the *shape* of
their scoring function, i.e. how the relevance score decays along the
ranked result list:

* **Step scoring** — scores stay high for the first ``h`` chunks, then drop
  sharply.  The nested-loop invocation strategy is designed for this shape:
  it pays to exhaust the ``h`` high-score chunks of the step service first.
* **Progressive scoring** — scores decay smoothly (linearly, polynomially,
  or exponentially) with no step.  Merge-scan is the indicated strategy.

The scoring function maps a zero-based *rank position* to a score in
``[0, 1]``.  The same object drives both the synthetic data generator
(scores attached to generated tuples) and the optimizer's strategy choice
(`suggests_nested_loop`).  Opaque rankings (Section 3.1, footnote 3) are
modelled by :class:`OpaqueScoring`, which still decays monotonically but
does not expose its parameters to the optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SchemaError

__all__ = [
    "ScoringFunction",
    "StepScoring",
    "LinearScoring",
    "PowerLawScoring",
    "ExponentialScoring",
    "ConstantScoring",
    "OpaqueScoring",
]


class ScoringFunction:
    """Base class: maps rank positions to monotonically non-increasing scores."""

    #: Whether the optimizer may rely on a sharp step at :attr:`step_chunks`.
    has_step: bool = False

    def score_at(self, position: int) -> float:
        """Score of the tuple at zero-based rank ``position``, in ``[0, 1]``."""
        raise NotImplementedError

    def chunk_representative(self, chunk_index: int, chunk_size: int) -> float:
        """Score representing a whole chunk: the score of its first tuple.

        Section 4.1 extends extraction-optimality from tuples to tiles "by
        using the ranking of the first tuple of the tile as representative
        for the entire tile"; the per-service analogue is the first tuple of
        the chunk.
        """
        return self.score_at(chunk_index * chunk_size)

    def validate_monotone(self, positions: int = 256) -> bool:
        """Check non-increasing scores over a prefix; used by tests."""
        scores = [self.score_at(i) for i in range(positions)]
        return all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))


@dataclass(frozen=True)
class StepScoring(ScoringFunction):
    """Step-shaped decay: ``high`` until position ``step_position``, then ``low``.

    Parameters
    ----------
    step_position:
        Zero-based position of the first *low* tuple.  With chunk size ``c``
        the service exhibits its step after ``h = ceil(step_position / c)``
        chunks — the ``h`` of Section 4.1.
    high, low:
        Plateau scores before and after the step.  Within each plateau a
        slight linear decay (of total amplitude ``slope``) keeps the ranking
        strict, which matters for extraction-optimality checks.
    """

    step_position: int
    high: float = 0.95
    low: float = 0.05
    slope: float = 0.04

    has_step = True

    def __post_init__(self) -> None:
        if self.step_position <= 0:
            raise SchemaError("step_position must be positive")
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise SchemaError("require 0 <= low <= high <= 1")

    def score_at(self, position: int) -> float:
        if position < self.step_position:
            frac = position / max(self.step_position, 1)
            return self.high - self.slope * frac
        # Past the step: decay from `low` towards zero.
        tail = position - self.step_position
        return self.low / (1.0 + tail)

    def step_chunks(self, chunk_size: int) -> int:
        """Number of chunks ``h`` covering the high-score plateau."""
        if chunk_size <= 0:
            raise SchemaError("chunk_size must be positive")
        return max(1, math.ceil(self.step_position / chunk_size))


@dataclass(frozen=True)
class LinearScoring(ScoringFunction):
    """Linear decay from ``top`` to ``bottom`` over ``horizon`` positions."""

    horizon: int = 1000
    top: float = 1.0
    bottom: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise SchemaError("horizon must be positive")
        if not 0.0 <= self.bottom <= self.top <= 1.0:
            raise SchemaError("require 0 <= bottom <= top <= 1")

    def score_at(self, position: int) -> float:
        if position >= self.horizon:
            return self.bottom
        frac = position / self.horizon
        return self.top - (self.top - self.bottom) * frac


@dataclass(frozen=True)
class PowerLawScoring(ScoringFunction):
    """Power-law decay ``top / (1 + position) ** exponent``.

    Models the heavy-tailed relevance profiles typical of web search
    engines: a few highly relevant hits followed by a long tail.
    """

    exponent: float = 0.5
    top: float = 1.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise SchemaError("exponent must be positive")
        if not 0.0 < self.top <= 1.0:
            raise SchemaError("require 0 < top <= 1")

    def score_at(self, position: int) -> float:
        return self.top / float(1 + position) ** self.exponent


@dataclass(frozen=True)
class ExponentialScoring(ScoringFunction):
    """Exponential decay ``top * exp(-rate * position)``."""

    rate: float = 0.05
    top: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SchemaError("rate must be positive")
        if not 0.0 < self.top <= 1.0:
            raise SchemaError("require 0 < top <= 1")

    def score_at(self, position: int) -> float:
        return self.top * math.exp(-self.rate * position)


@dataclass(frozen=True)
class ConstantScoring(ScoringFunction):
    """Fixed score, used for *unranked* (exact) services.

    Section 3.1: "if [the service] is unranked, the scoring function is a
    fixed constant" and its weight in the ranking function is zero.
    """

    value: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise SchemaError("constant score must lie in [0, 1]")

    def score_at(self, position: int) -> float:
        return self.value


@dataclass(frozen=True)
class OpaqueScoring(ScoringFunction):
    """A ranking whose functional form is hidden from the optimizer.

    The service still returns results in ranking order (the chapter's basic
    assumption holds) but the optimizer cannot classify it as step or
    progressive, so strategy selection must fall back to merge-scan.  The
    wrapped function supplies the actual scores for the simulator; per
    footnote 3, positions can be translated into ``[0, 1]`` scores.
    """

    hidden: ScoringFunction

    def score_at(self, position: int) -> float:
        return self.hidden.score_at(position)
