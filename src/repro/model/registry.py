"""Service registry: the schema catalogue queries are compiled against.

The registry stores service marts, their registered service interfaces,
and the connection patterns between marts.  The query compiler uses it to

* resolve service atoms (which may name a mart *or* a specific interface —
  Section 3.1 allows queries "with exactly the same syntax and semantics,
  either over service marts or over service interfaces");
* expand connection-pattern atoms into join predicates;
* enumerate candidate interfaces per mart during the optimizer's phase 1
  (access-pattern / interface selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.model.connections import ConnectionPattern, _PatternIndex
from repro.model.service import ServiceInterface, ServiceMart

__all__ = ["ServiceRegistry"]


@dataclass
class ServiceRegistry:
    """Catalogue of marts, interfaces, and connection patterns."""

    _marts: dict[str, ServiceMart] = field(default_factory=dict)
    _interfaces: dict[str, ServiceInterface] = field(default_factory=dict)
    _by_mart: dict[str, list[str]] = field(default_factory=dict)
    _patterns: _PatternIndex = field(default_factory=_PatternIndex)

    # -- registration ---------------------------------------------------------

    def register_mart(self, mart: ServiceMart) -> ServiceMart:
        """Register a mart; re-registering the identical object is a no-op."""
        existing = self._marts.get(mart.name)
        if existing is not None:
            if existing is mart or existing == mart:
                return mart
            raise SchemaError(f"mart {mart.name!r} already registered differently")
        self._marts[mart.name] = mart
        self._by_mart.setdefault(mart.name, [])
        return mart

    def register_interface(self, interface: ServiceInterface) -> ServiceInterface:
        """Register an interface, registering its mart on the fly."""
        if interface.name in self._interfaces:
            raise SchemaError(f"interface {interface.name!r} already registered")
        if interface.name in self._marts:
            raise SchemaError(
                f"interface name {interface.name!r} collides with a mart name"
            )
        self.register_mart(interface.mart)
        self._interfaces[interface.name] = interface
        self._by_mart[interface.mart.name].append(interface.name)
        return interface

    def register_pattern(self, pattern: ConnectionPattern) -> ConnectionPattern:
        self.register_mart(pattern.source)
        self.register_mart(pattern.target)
        self._patterns.add(pattern)
        return pattern

    # -- lookup ----------------------------------------------------------------

    def mart(self, name: str) -> ServiceMart:
        if name not in self._marts:
            raise SchemaError(f"unknown service mart {name!r}")
        return self._marts[name]

    def interface(self, name: str) -> ServiceInterface:
        if name not in self._interfaces:
            raise SchemaError(f"unknown service interface {name!r}")
        return self._interfaces[name]

    def has_interface(self, name: str) -> bool:
        return name in self._interfaces

    def has_mart(self, name: str) -> bool:
        return name in self._marts

    def interfaces_of(self, mart_name: str) -> tuple[ServiceInterface, ...]:
        """All interfaces registered for a mart, in registration order."""
        if mart_name not in self._marts:
            raise SchemaError(f"unknown service mart {mart_name!r}")
        return tuple(self._interfaces[n] for n in self._by_mart[mart_name])

    def pattern(self, name: str) -> ConnectionPattern:
        return self._patterns.get(name)

    def has_pattern(self, name: str) -> bool:
        return name in self._patterns.by_name

    def patterns_between(self, mart_a: str, mart_b: str) -> tuple[ConnectionPattern, ...]:
        return self._patterns.between(mart_a, mart_b)

    def resolve_atom(self, name: str) -> tuple[ServiceMart, ServiceInterface | None]:
        """Resolve a query atom naming either an interface or a mart.

        Returns ``(mart, interface)`` where ``interface`` is ``None`` when
        the atom names a mart (interface selection is then deferred to the
        optimizer's phase 1).
        """
        if name in self._interfaces:
            iface = self._interfaces[name]
            return iface.mart, iface
        if name in self._marts:
            return self._marts[name], None
        raise SchemaError(f"{name!r} names neither an interface nor a mart")

    # -- introspection ----------------------------------------------------------

    @property
    def mart_names(self) -> tuple[str, ...]:
        return tuple(self._marts)

    @property
    def interface_names(self) -> tuple[str, ...]:
        return tuple(self._interfaces)

    @property
    def pattern_names(self) -> tuple[str, ...]:
        return tuple(self._patterns.by_name)

    def describe(self) -> str:
        """Multi-line human-readable catalogue listing."""
        lines = ["Service registry:"]
        for mart_name in self._marts:
            lines.append(f"  mart {mart_name}")
            for iface_name in self._by_mart.get(mart_name, ()):
                lines.append(f"    {self._interfaces[iface_name].describe()}")
        for pattern in self._patterns.by_name.values():
            lines.append(f"  pattern {pattern}")
        return "\n".join(lines)
