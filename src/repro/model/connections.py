"""Connection patterns between service marts.

A connection pattern (book Chapter 9; used throughout the reproduced
chapter) is a named, pre-registered join specification between two service
marts: a conjunction of comparison predicates over pairs of their
attributes.  Queries may mention a pattern — e.g. ``Shows(M, T)`` — instead
of spelling out the join predicates, and the query compiler expands the
pattern into the equivalent predicate list (Section 3.1 shows both
formulations of the running example).

Patterns carry an estimated *selectivity*: the probability that a random
pair of tuples from the two marts satisfies the join.  Section 5.6
estimates ``Shows`` at 2% and ``DinnerPlace`` at 40%; the annotation and
cost model consume these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.model.attributes import AttributePath, parse_path
from repro.model.service import ServiceMart

__all__ = ["AttributePair", "ConnectionPattern"]


@dataclass(frozen=True)
class AttributePair:
    """One comparison ``source.path op target.path`` inside a pattern."""

    source_path: AttributePath
    target_path: AttributePath
    comparator: str = "="

    _VALID = ("=", "<", "<=", ">", ">=", "like")

    def __post_init__(self) -> None:
        if self.comparator not in self._VALID:
            raise SchemaError(f"invalid comparator {self.comparator!r}")

    @classmethod
    def parse(cls, source: str, target: str, comparator: str = "=") -> "AttributePair":
        return cls(parse_path(source), parse_path(target), comparator)

    def __str__(self) -> str:
        return f"{self.source_path} {self.comparator} {self.target_path}"


@dataclass(frozen=True)
class ConnectionPattern:
    """A named join specification between two service marts.

    Parameters
    ----------
    name:
        Pattern name as used in queries, e.g. ``Shows``.
    source, target:
        The two marts connected by the pattern.  The pattern is directional
        only in that the pairs name source paths first; queries may traverse
        it in either direction.
    pairs:
        Non-empty conjunction of attribute comparisons.
    selectivity:
        Estimated probability that a random (source, target) tuple pair
        joins; must lie in ``(0, 1]``.
    """

    name: str
    source: ServiceMart
    target: ServiceMart
    pairs: tuple[AttributePair, ...]
    selectivity: float = 0.1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("connection pattern needs a name")
        if not self.pairs:
            raise SchemaError(f"pattern {self.name!r} needs at least one pair")
        if not 0.0 < self.selectivity <= 1.0:
            raise SchemaError(f"pattern {self.name!r} selectivity outside (0, 1]")
        for pair in self.pairs:
            src = self.source.resolve(pair.source_path)
            dst = self.target.resolve(pair.target_path)
            if not src.domain.is_compatible(dst.domain):
                raise SchemaError(
                    f"pattern {self.name!r}: incompatible domains for {pair}"
                )

    def connects(self, mart_a: str, mart_b: str) -> bool:
        """True when the pattern links the two named marts, either way round."""
        names = {self.source.name, self.target.name}
        return names == {mart_a, mart_b} or (
            mart_a == mart_b and len(names) == 1
        )

    def oriented_pairs(
        self, from_mart: str
    ) -> tuple[tuple[AttributePath, str, AttributePath], ...]:
        """Pairs as ``(from_path, comparator, to_path)`` seen from ``from_mart``.

        Traversing the pattern backwards flips the comparator of ordered
        comparisons (``<`` becomes ``>`` and so on).
        """
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "like": "like"}
        if from_mart == self.source.name:
            return tuple(
                (p.source_path, p.comparator, p.target_path) for p in self.pairs
            )
        if from_mart == self.target.name:
            return tuple(
                (p.target_path, flipped[p.comparator], p.source_path)
                for p in self.pairs
            )
        raise SchemaError(
            f"pattern {self.name!r} does not involve mart {from_mart!r}"
        )

    def __str__(self) -> str:
        body = " and ".join(str(pair) for pair in self.pairs)
        return f"{self.name}({self.source.name}, {self.target.name}): {body}"


@dataclass
class _PatternIndex:
    """Internal helper indexing patterns by name and by mart pair."""

    by_name: dict[str, ConnectionPattern] = field(default_factory=dict)

    def add(self, pattern: ConnectionPattern) -> None:
        if pattern.name in self.by_name:
            raise SchemaError(f"duplicate connection pattern {pattern.name!r}")
        self.by_name[pattern.name] = pattern

    def get(self, name: str) -> ConnectionPattern:
        if name not in self.by_name:
            raise SchemaError(f"unknown connection pattern {name!r}")
        return self.by_name[name]

    def between(self, mart_a: str, mart_b: str) -> tuple[ConnectionPattern, ...]:
        return tuple(
            p for p in self.by_name.values() if p.connects(mart_a, mart_b)
        )
