"""Tuples, composite tuples, and the global ranking function.

A *service tuple* is one answer returned by a service call: a mapping from
attribute names to values, where repeating-group attributes map to a tuple
of sub-tuples (each a mapping of sub-attribute name to value).  Search
services attach a relevance ``score`` in ``[0, 1]`` and return tuples in
non-increasing score order.

A *composite tuple* ``t1 . t2 . ... . tn`` (Section 3.1) combines one tuple
per service atom of the query; its global score is the weighted sum of the
component scores under the query's :class:`RankingFunction`
(Section 3.1: ``w1*S1 + ... + wn*Sn``, with weight 0 for unranked services).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import QueryError, SchemaError
from repro.model.attributes import AttributePath

__all__ = ["ServiceTuple", "CompositeTuple", "RankingFunction", "freeze_value"]


def freeze_value(value: Any) -> Any:
    """Return a hashable version of a tuple value.

    Repeating-group values arrive as iterables of mappings; they are frozen
    into nested tuples so that :class:`ServiceTuple` instances can be hashed
    and deduplicated.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((k, freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set)):
        return tuple(freeze_value(v) for v in value)
    return value


@dataclass(frozen=True)
class ServiceTuple:
    """One answer tuple produced by a service invocation.

    Parameters
    ----------
    values:
        Mapping of attribute name to value.  For a repeating group the value
        is a tuple of mappings (one per sub-tuple).
    score:
        Relevance score in ``[0, 1]``; exact services use a constant.
    source:
        Name of the service interface that produced the tuple.
    position:
        Zero-based global rank position within the service's result list.
    """

    values: Mapping[str, Any]
    score: float = 1.0
    source: str = ""
    position: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0 + 1e-9:
            raise SchemaError(f"score {self.score} outside [0, 1]")
        frozen = {key: freeze_value(val) for key, val in dict(self.values).items()}
        object.__setattr__(self, "values", frozen)

    def value_at(self, path: AttributePath) -> Any:
        """Value addressed by ``path``.

        For a nested path the result is the tuple of sub-tuple values of the
        addressed sub-attribute — i.e. *all* witnesses; predicate evaluation
        picks individual witnesses itself.
        """
        if path.group is None:
            if path.name not in self.values:
                raise QueryError(f"tuple from {self.source!r} has no attribute {path.name!r}")
            return self.values[path.name]
        group_value = self.values.get(path.group)
        if group_value is None:
            raise QueryError(f"tuple from {self.source!r} has no group {path.group!r}")
        return tuple(dict(member).get(path.name) for member in group_value)

    def group_members(self, group: str) -> tuple[dict[str, Any], ...]:
        """The sub-tuples of repeating group ``group`` as dictionaries."""
        value = self.values.get(group)
        if value is None:
            raise QueryError(f"tuple from {self.source!r} has no group {group!r}")
        return tuple(dict(member) for member in value)

    def __hash__(self) -> int:
        return hash((self.source, self.position, tuple(sorted(self.values.items()))))


@dataclass(frozen=True)
class CompositeTuple:
    """A combination ``t1 . t2 . ... . tn`` of tuples, one per query alias."""

    components: Mapping[str, ServiceTuple]
    score: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "components", dict(self.components))

    def component(self, alias: str) -> ServiceTuple:
        if alias not in self.components:
            raise QueryError(f"composite tuple has no component for alias {alias!r}")
        return self.components[alias]

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(self.components)

    def merged_with(self, alias: str, tup: ServiceTuple, score: float) -> "CompositeTuple":
        """Return a new composite extended with ``alias -> tup``."""
        if alias in self.components:
            raise QueryError(f"alias {alias!r} already present in composite")
        parts = dict(self.components)
        parts[alias] = tup
        return CompositeTuple(parts, score)

    def value_at(self, alias: str, path: AttributePath) -> Any:
        return self.component(alias).value_at(path)

    def __hash__(self) -> int:
        return hash(tuple(sorted((a, hash(t)) for a, t in self.components.items())))


@dataclass(frozen=True)
class RankingFunction:
    """Weighted-sum global ranking over component scores.

    Section 3.1: a query over ``s1..sn`` carries non-negative weights
    ``(w1, ..., wn)``; the score of a combination is ``sum(wi * Si)`` where
    ``Si`` is the component score.  Unranked services get weight 0.  Weights
    are normalised on construction so composite scores stay within [0, 1].
    """

    weights: Mapping[str, float] = field(default_factory=dict)
    normalise: bool = True

    def __post_init__(self) -> None:
        weights = dict(self.weights)
        for alias, weight in weights.items():
            if weight < 0:
                raise QueryError(f"negative ranking weight for {alias!r}")
        total = sum(weights.values())
        if self.normalise and total > 0:
            weights = {alias: w / total for alias, w in weights.items()}
        object.__setattr__(self, "weights", weights)

    def weight(self, alias: str) -> float:
        return self.weights.get(alias, 0.0)

    def score(self, component_scores: Mapping[str, float]) -> float:
        """Global score of a combination given per-alias component scores."""
        return sum(
            self.weight(alias) * score for alias, score in component_scores.items()
        )

    def score_composite(self, components: Mapping[str, ServiceTuple]) -> float:
        return self.score({alias: t.score for alias, t in components.items()})

    def combine(self, components: Mapping[str, ServiceTuple]) -> CompositeTuple:
        """Build a scored :class:`CompositeTuple` from components."""
        return CompositeTuple(dict(components), self.score_composite(components))

    @classmethod
    def uniform(cls, aliases: Iterable[str]) -> "RankingFunction":
        """Equal weights over ``aliases``."""
        names = list(aliases)
        if not names:
            return cls({})
        return cls({alias: 1.0 for alias in names})
