"""Attribute and domain model for service marts.

The Search Computing service model (book Chapter 9, summarised in the
reproduced Chapter 10, Section 3.1) describes each service mart by a flat
list of *attributes*.  An attribute is either

* an **atomic attribute** — single-valued, typed; or
* a **repeating group** — a multi-valued collection of sub-tuples over a
  non-empty set of atomic *sub-attributes* that collectively describe one
  property of the object (e.g. ``Openings(Country, Date)`` of a movie).

Attributes are addressed by dotted *paths*: ``Title`` addresses an atomic
attribute, ``Openings.Date`` addresses the sub-attribute ``Date`` of the
repeating group ``Openings``.

Domains carry a logical type used for type-compatibility checks between
joined attributes and between attributes and constants, plus an optional
cardinality hint used by the synthetic data generator to control join
selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SchemaError

__all__ = [
    "DataType",
    "Domain",
    "Attribute",
    "RepeatingGroup",
    "AttributePath",
    "parse_path",
]


class DataType(Enum):
    """Logical type of an atomic attribute.

    Only type-compatible attribute pairs can appear in a join predicate and
    only type-compatible constants in a selection predicate.  ``ANY`` is
    compatible with everything and is used for opaque values such as URLs.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    BOOLEAN = "boolean"
    ANY = "any"

    def is_compatible(self, other: "DataType") -> bool:
        """Return True when values of the two types may be compared."""
        if self is DataType.ANY or other is DataType.ANY:
            return True
        if {self, other} <= {DataType.INTEGER, DataType.FLOAT}:
            return True
        return self is other


@dataclass(frozen=True)
class Domain:
    """A typed value domain for an atomic attribute.

    Parameters
    ----------
    name:
        Human-readable domain name.  Domains with the same name are treated
        as the *same abstract domain*, which matters for query augmentation
        and for the synthetic data generator (two attributes drawn from the
        same domain share a value universe, so equijoins between them have
        non-trivial selectivity).
    dtype:
        Logical type of the values.
    size:
        Optional number of distinct values in the domain.  Used by the data
        generator: an equijoin between two uniform attributes over a domain
        of ``size`` *n* has selectivity ``1/n``.
    """

    name: str
    dtype: DataType = DataType.STRING
    size: int | None = None

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise SchemaError(f"domain {self.name!r} must have positive size")

    def is_compatible(self, other: "Domain") -> bool:
        """Domains are comparable when their logical types are."""
        return self.dtype.is_compatible(other.dtype)


@dataclass(frozen=True)
class Attribute:
    """An atomic, single-valued attribute of a service mart."""

    name: str
    domain: Domain = field(default_factory=lambda: Domain("generic"))

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid attribute name {self.name!r}")

    @property
    def dtype(self) -> DataType:
        return self.domain.dtype


@dataclass(frozen=True)
class RepeatingGroup:
    """A multi-valued attribute: a named set of atomic sub-attributes.

    The value of a repeating group in a tuple is a (possibly empty) sequence
    of sub-tuples over the sub-attributes.  Query semantics over repeating
    groups follows the *witness* rule of Section 3.1: a single sub-tuple must
    satisfy every predicate that mentions the group.
    """

    name: str
    sub_attributes: tuple[Attribute, ...]
    #: Typical number of member sub-tuples per object; ``None`` lets the
    #: data generator draw a small random count.  Groups that participate
    #: in join predicates should pin this so join selectivities stay
    #: faithful to the declared domain sizes.
    avg_members: int | None = None

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid repeating group name {self.name!r}")
        if not self.sub_attributes:
            raise SchemaError(
                f"repeating group {self.name!r} must have at least one sub-attribute"
            )
        if self.avg_members is not None and self.avg_members <= 0:
            raise SchemaError(
                f"repeating group {self.name!r} needs positive avg_members"
            )
        seen: set[str] = set()
        for sub in self.sub_attributes:
            if sub.name in seen:
                raise SchemaError(
                    f"duplicate sub-attribute {sub.name!r} in group {self.name!r}"
                )
            seen.add(sub.name)

    def sub_attribute(self, name: str) -> Attribute:
        """Return the sub-attribute called ``name``.

        Raises :class:`SchemaError` when the group has no such sub-attribute.
        """
        for sub in self.sub_attributes:
            if sub.name == name:
                return sub
        raise SchemaError(f"group {self.name!r} has no sub-attribute {name!r}")

    def has_sub_attribute(self, name: str) -> bool:
        return any(sub.name == name for sub in self.sub_attributes)


@dataclass(frozen=True)
class AttributePath:
    """Dotted address of an atomic attribute or sub-attribute.

    ``AttributePath("Title")`` addresses an atomic attribute;
    ``AttributePath("Openings", "Date")`` addresses a sub-attribute of a
    repeating group.  The path never includes the service alias — pairing a
    path with an alias is the job of the query layer's ``AttrRef``.
    """

    group: str | None
    name: str

    def __init__(self, first: str, second: str | None = None) -> None:
        if second is None:
            object.__setattr__(self, "group", None)
            object.__setattr__(self, "name", first)
        else:
            object.__setattr__(self, "group", first)
            object.__setattr__(self, "name", second)

    @property
    def is_nested(self) -> bool:
        """True when the path addresses a sub-attribute of a repeating group."""
        return self.group is not None

    def _sort_key(self) -> tuple[str, str]:
        return (self.group or "", self.name)

    def __lt__(self, other: "AttributePath") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "AttributePath") -> bool:
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "AttributePath") -> bool:
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "AttributePath") -> bool:
        return self._sort_key() >= other._sort_key()

    def __str__(self) -> str:
        if self.group is None:
            return self.name
        return f"{self.group}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributePath({str(self)!r})"


def parse_path(text: str) -> AttributePath:
    """Parse ``"A"`` or ``"R.A"`` into an :class:`AttributePath`.

    Raises :class:`SchemaError` for empty segments or more than two levels
    of nesting (the model only allows one level of repeating groups).
    """
    parts = text.split(".")
    if any(not part for part in parts):
        raise SchemaError(f"invalid attribute path {text!r}")
    if len(parts) == 1:
        return AttributePath(parts[0])
    if len(parts) == 2:
        return AttributePath(parts[0], parts[1])
    raise SchemaError(
        f"attribute path {text!r} has {len(parts)} segments; at most 2 allowed"
    )
