"""Service marts, service interfaces, and access-pattern adornments.

This module implements the service model that queries are expressed over
(Sections 3 and 5.6 of the chapter):

* A :class:`ServiceMart` is the abstract schema of an information source:
  a name plus attributes (atomic attributes and repeating groups).
* A :class:`ServiceInterface` is a concrete invokable implementation of a
  mart.  It decorates every attribute with an *adornment* — ``I`` (input:
  must be bound to invoke), ``O`` (output), or ``R`` (ranked output, i.e.
  the attribute contributes to the relevance order) — exactly as in the
  Section 5.6 listing, e.g. ``Theatre1(Name^O, UAddress^I, ...)``.
* Interfaces are classified as **exact** or **search** services.  Search
  services are always *proliferative* (more output than input tuples) and
  *chunked*; exact services may be chunked or not and are *selective* when
  their average cardinality is below one tuple per invocation.

Interfaces also carry the statistics the optimizer's cost model consumes:
average cardinality, chunk size, per-call latency and monetary cost, and
the scoring-function shape of ranked services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.errors import SchemaError
from repro.model.attributes import (
    Attribute,
    AttributePath,
    RepeatingGroup,
    parse_path,
)
from repro.model.scoring import ConstantScoring, ScoringFunction

__all__ = [
    "Adornment",
    "ServiceKind",
    "AccessPattern",
    "ServiceMart",
    "ServiceStats",
    "ServiceInterface",
]


class Adornment(Enum):
    """Binding-pattern adornment of one attribute in a service interface."""

    INPUT = "I"
    OUTPUT = "O"
    RANKED = "R"

    @property
    def is_output(self) -> bool:
        """Ranked attributes are outputs too: they appear in result tuples."""
        return self in (Adornment.OUTPUT, Adornment.RANKED)


class ServiceKind(Enum):
    """Exact ("relational" behaviour) vs. search (ranked, chunked) services."""

    EXACT = "exact"
    SEARCH = "search"


@dataclass(frozen=True)
class ServiceMart:
    """Abstract schema of an information source.

    Attribute names (including repeating-group names) must be unique within
    the mart.  Marts are identified by name in the registry; connection
    patterns are defined between marts.
    """

    name: str
    attributes: tuple[Attribute | RepeatingGroup, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("service mart needs a name")
        seen: set[str] = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in mart {self.name!r}"
                )
            seen.add(attr.name)

    def attribute(self, name: str) -> Attribute | RepeatingGroup:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"mart {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def resolve(self, path: AttributePath | str) -> Attribute:
        """Resolve a path to the atomic attribute it addresses.

        ``"Title"`` resolves to an atomic attribute; ``"Openings.Date"``
        resolves to the ``Date`` sub-attribute of the ``Openings`` group.
        Addressing a repeating group without a sub-attribute, or a
        sub-attribute of an atomic attribute, raises :class:`SchemaError`.
        """
        if isinstance(path, str):
            path = parse_path(path)
        if path.group is None:
            attr = self.attribute(path.name)
            if isinstance(attr, RepeatingGroup):
                raise SchemaError(
                    f"{self.name}.{path.name} is a repeating group; "
                    "address one of its sub-attributes"
                )
            return attr
        group = self.attribute(path.group)
        if not isinstance(group, RepeatingGroup):
            raise SchemaError(f"{self.name}.{path.group} is not a repeating group")
        return group.sub_attribute(path.name)

    def paths(self) -> tuple[AttributePath, ...]:
        """All atomic paths of the mart, groups expanded to sub-attributes."""
        out: list[AttributePath] = []
        for attr in self.attributes:
            if isinstance(attr, RepeatingGroup):
                out.extend(
                    AttributePath(attr.name, sub.name) for sub in attr.sub_attributes
                )
            else:
                out.append(AttributePath(attr.name))
        return tuple(out)


@dataclass(frozen=True)
class AccessPattern:
    """Adornment of every atomic path of a mart.

    Paths omitted from ``adornments`` default to ``OUTPUT``.  At least the
    declared input paths must be bound (by constants, INPUT variables, or
    piped join values) before the interface can be invoked.
    """

    adornments: Mapping[str, Adornment] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "adornments", dict(self.adornments))

    def adornment_of(self, path: AttributePath | str) -> Adornment:
        key = str(path)
        return self.adornments.get(key, Adornment.OUTPUT)

    def input_paths(self) -> tuple[str, ...]:
        return tuple(
            sorted(k for k, v in self.adornments.items() if v is Adornment.INPUT)
        )

    def ranked_paths(self) -> tuple[str, ...]:
        return tuple(
            sorted(k for k, v in self.adornments.items() if v is Adornment.RANKED)
        )

    @classmethod
    def from_spec(cls, spec: Mapping[str, str]) -> "AccessPattern":
        """Build from ``{"path": "I" | "O" | "R"}`` shorthand."""
        return cls({key: Adornment(value) for key, value in spec.items()})


@dataclass(frozen=True)
class ServiceStats:
    """Statistics the cost model needs about one interface.

    Parameters
    ----------
    avg_cardinality:
        Expected number of result tuples per invocation (before chunking).
        Exact services with ``avg_cardinality < 1`` are *selective*.
    chunk_size:
        Tuples per fetch for chunked services; ``None`` means the service
        returns all its results in a single response.
    latency:
        Expected virtual-time cost of one request-response round trip.
    per_tuple_latency:
        Additional virtual time per returned tuple (transfer cost).
    invocation_fee:
        Monetary/charged cost per call, consumed by the sum cost metric.
    """

    avg_cardinality: float = 10.0
    chunk_size: int | None = None
    latency: float = 1.0
    per_tuple_latency: float = 0.0
    invocation_fee: float = 1.0

    def __post_init__(self) -> None:
        if self.avg_cardinality < 0:
            raise SchemaError("avg_cardinality cannot be negative")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise SchemaError("chunk_size must be positive when set")
        if self.latency < 0 or self.per_tuple_latency < 0 or self.invocation_fee < 0:
            raise SchemaError("costs cannot be negative")


@dataclass(frozen=True)
class ServiceInterface:
    """A concrete, invokable implementation of a service mart.

    The interface couples the mart schema with an access pattern, a service
    kind, cost statistics, and (for ranked services) a scoring-function
    shape.  It enforces the chapter's classification rules:

    * search services are always chunked (a default chunk size of 10 is
      applied when none is given) and always ranked;
    * exact services use a constant scoring function.
    """

    name: str
    mart: ServiceMart
    access_pattern: AccessPattern = field(default_factory=AccessPattern)
    kind: ServiceKind = ServiceKind.EXACT
    stats: ServiceStats = field(default_factory=ServiceStats)
    scoring: ScoringFunction = field(default_factory=ConstantScoring)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("service interface needs a name")
        valid = {str(path) for path in self.mart.paths()}
        for key in self.access_pattern.adornments:
            if key not in valid:
                raise SchemaError(
                    f"interface {self.name!r} adorns unknown path {key!r} "
                    f"of mart {self.mart.name!r}"
                )
        if self.kind is ServiceKind.SEARCH:
            if self.stats.chunk_size is None:
                object.__setattr__(
                    self,
                    "stats",
                    ServiceStats(
                        avg_cardinality=self.stats.avg_cardinality,
                        chunk_size=10,
                        latency=self.stats.latency,
                        per_tuple_latency=self.stats.per_tuple_latency,
                        invocation_fee=self.stats.invocation_fee,
                    ),
                )
            if isinstance(self.scoring, ConstantScoring):
                raise SchemaError(
                    f"search service {self.name!r} needs a decaying scoring function"
                )

    # -- classification -----------------------------------------------------

    @property
    def is_search(self) -> bool:
        return self.kind is ServiceKind.SEARCH

    @property
    def is_exact(self) -> bool:
        return self.kind is ServiceKind.EXACT

    @property
    def is_chunked(self) -> bool:
        return self.stats.chunk_size is not None

    @property
    def chunk_size(self) -> int:
        """Chunk size, treating unchunked services as one chunk per call."""
        if self.stats.chunk_size is not None:
            return self.stats.chunk_size
        return max(1, round(self.stats.avg_cardinality))

    @property
    def is_proliferative(self) -> bool:
        """More than one output tuple per input tuple on average.

        Search services are proliferative by definition (Section 3.2).
        """
        if self.is_search:
            return True
        return self.stats.avg_cardinality > 1.0

    @property
    def is_selective(self) -> bool:
        """Fewer output than input tuples on average (exact services only)."""
        return self.is_exact and self.stats.avg_cardinality < 1.0

    @property
    def is_ranked(self) -> bool:
        return self.is_search or bool(self.access_pattern.ranked_paths())

    # -- schema helpers ------------------------------------------------------

    def input_paths(self) -> tuple[str, ...]:
        return self.access_pattern.input_paths()

    def output_paths(self) -> tuple[str, ...]:
        return tuple(
            str(path)
            for path in self.mart.paths()
            if self.access_pattern.adornment_of(path).is_output
        )

    def adornment_of(self, path: AttributePath | str) -> Adornment:
        return self.access_pattern.adornment_of(path)

    def describe(self) -> str:
        """Render the interface in the chapter's adornment notation."""
        parts = []
        for path in self.mart.paths():
            parts.append(f"{path}^{self.access_pattern.adornment_of(path).value}")
        return f"{self.name}({', '.join(parts)})"


def interfaces_by_name(
    interfaces: Iterable[ServiceInterface],
) -> dict[str, ServiceInterface]:
    """Index interfaces by name, rejecting duplicates."""
    index: dict[str, ServiceInterface] = {}
    for iface in interfaces:
        if iface.name in index:
            raise SchemaError(f"duplicate service interface name {iface.name!r}")
        index[iface.name] = iface
    return index
