"""WSMS baseline: query optimization over exact Web services [22].

Srivastava, Munagala, Widom, Motwani (VLDB 2006) — the chapter's main
inspiration (Section 2.4) — optimize pipelined plans over *exact*,
unchunked services modelled by a per-tuple response time ``c`` and a
selectivity ``sigma`` (output tuples per input tuple), under the
**bottleneck cost metric**: the cost of a pipelined plan is the load of
its slowest service, ``max_i c_i * prod_{j upstream of i} sigma_j``.

This module reproduces that baseline:

* :func:`chain_bottleneck` — the bottleneck cost of one linear order;
* :func:`optimal_chain` — exact optimum by enumeration (small n);
* :func:`exchange_sorted_chain` — the greedy adjacent-exchange order
  (prefer ``a`` before ``b`` when ``max(c_a, sigma_a * c_b) <=
  max(c_b, sigma_b * c_a)``), which matches the enumeration optimum on
  selective services;
* :func:`wsms_service_from_interface` — adapter from our service model.

E15 uses it two ways: to validate the greedy order against enumeration,
and to check the chapter's remark that "parallel is better ... in absence
of access limitations ... gives the optimal solution, as proved in [22]"
for time-oriented metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import OptimizationError
from repro.model.service import ServiceInterface

__all__ = [
    "WsmsService",
    "chain_bottleneck",
    "optimal_chain",
    "exchange_sorted_chain",
    "wsms_service_from_interface",
]


@dataclass(frozen=True)
class WsmsService:
    """One exact service in the WSMS model."""

    name: str
    cost: float  # per-tuple response time c
    selectivity: float  # output per input tuple (sigma; may exceed 1)

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise OptimizationError("per-tuple cost cannot be negative")
        if self.selectivity < 0:
            raise OptimizationError("selectivity cannot be negative")


def chain_bottleneck(order: Sequence[WsmsService]) -> float:
    """Bottleneck cost of a linear pipeline: slowest service's load.

    Service ``i`` processes the input filtered by everything upstream, so
    its load is ``c_i * prod_{j<i} sigma_j``.
    """
    load = 1.0
    worst = 0.0
    for service in order:
        worst = max(worst, service.cost * load)
        load *= service.selectivity
    return worst


def optimal_chain(
    services: Iterable[WsmsService],
) -> tuple[tuple[WsmsService, ...], float]:
    """Exact bottleneck-optimal order by enumeration (n! — keep n small)."""
    pool = tuple(services)
    if not pool:
        return (), 0.0
    if len(pool) > 9:
        raise OptimizationError("optimal_chain enumeration limited to n <= 9")
    best_order = pool
    best_cost = chain_bottleneck(pool)
    for order in itertools.permutations(pool):
        cost = chain_bottleneck(order)
        if cost < best_cost:
            best_cost = cost
            best_order = order
    return best_order, best_cost


def exchange_sorted_chain(
    services: Iterable[WsmsService], max_rounds: int = 64
) -> tuple[WsmsService, ...]:
    """Greedy order via adjacent exchanges.

    Bubble services with the local-exchange comparator until a fixpoint:
    ``a`` precedes ``b`` when ``max(c_a, sigma_a * c_b) <=
    max(c_b, sigma_b * c_a)`` (the two-service bottleneck favours that
    order).  The comparator is not transitive in general, so the sort
    iterates to a local optimum — which coincides with the global one on
    selective services.
    """
    order = list(services)
    for _ in range(max_rounds):
        swapped = False
        for i in range(len(order) - 1):
            a, b = order[i], order[i + 1]
            ab = max(a.cost, a.selectivity * b.cost)
            ba = max(b.cost, b.selectivity * a.cost)
            if ba < ab - 1e-12:
                order[i], order[i + 1] = b, a
                swapped = True
        if not swapped:
            break
    return tuple(order)


def wsms_service_from_interface(interface: ServiceInterface) -> WsmsService:
    """Adapter: view one of our exact interfaces as a WSMS service.

    The per-tuple response time is the invocation latency (WSMS services
    are invoked per tuple); the selectivity is the average cardinality.
    Chunked/search services have no WSMS counterpart — the whole point of
    the chapter — and are rejected.
    """
    if interface.is_search or interface.is_chunked:
        raise OptimizationError(
            f"{interface.name!r} is chunked/search: outside the WSMS model"
        )
    return WsmsService(
        name=interface.name,
        cost=interface.stats.latency,
        selectivity=interface.stats.avg_cardinality,
    )
