"""Exhaustive optimizer: ground truth for branch-and-bound optimality.

Enumerates the complete solution space — every interface assignment, every
acyclic binding choice, every topology (deduplicated by cost signature),
every fetch vector on a bounded grid — prices each fully instantiated plan
with the metric, and returns the cheapest plan that reaches ``k`` expected
results.  Exponential by construction; usable for the small queries the
benchmarks check the branch-and-bound optimizer against (E12/E17).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.annotate import annotate
from repro.core.cost import CostMetric, ExecutionTimeMetric
from repro.core.heuristics import fetch_cap
from repro.core.optimizer import PlanCandidate
from repro.core.topology import enumerate_topologies
from repro.joins.spec import JoinMethodSpec
from repro.plans.plan import QueryPlan
from repro.query.compile import CompiledQuery
from repro.query.feasibility import enumerate_binding_choices
from repro.stats.estimate import Estimator

__all__ = ["ExhaustiveResult", "exhaustive_optimum"]


@dataclass
class ExhaustiveResult:
    """Cheapest candidate plus enumeration accounting."""

    best: PlanCandidate | None
    plans_enumerated: int = 0
    candidates_priced: int = 0
    assignments: int = 0
    topologies: int = 0

    @property
    def found(self) -> bool:
        return self.best is not None


def _assignments(query: CompiledQuery) -> Iterator[dict]:
    """Every interface assignment for the query's mart-level atoms."""
    open_aliases = [a.alias for a in query.atoms if a.interface is None]
    if not open_aliases:
        yield {}
        return
    pools = [
        list(query.registry.interfaces_of(query.atom(alias).mart.name))
        for alias in open_aliases
    ]
    for combo in itertools.product(*pools):
        yield dict(zip(open_aliases, combo))


def _fetch_grid(
    plan: QueryPlan, max_factor: int | None
) -> Iterator[dict[str, int]]:
    """Cartesian grid of fetch vectors over the plan's chunked services."""
    chunked = [
        node
        for node in plan.service_nodes()
        if node.interface is not None and node.interface.is_chunked
    ]
    if not chunked:
        yield {}
        return
    ranges = []
    for node in chunked:
        assert node.interface is not None
        cap = fetch_cap(node.interface)
        if max_factor is not None:
            cap = min(cap, max_factor)
        ranges.append(range(1, cap + 1))
    for combo in itertools.product(*ranges):
        yield {node.alias: f for node, f in zip(chunked, combo)}


def exhaustive_optimum(
    query: CompiledQuery,
    metric: CostMetric | None = None,
    k: int | None = None,
    max_fetch: int | None = 8,
    join_method_options: Sequence[JoinMethodSpec] = (JoinMethodSpec(),),
    binding_choice_limit: int | None = 64,
) -> ExhaustiveResult:
    """Enumerate everything; return the cheapest k-satisfying candidate.

    When no fetch vector on the grid reaches ``k`` expected results, the
    highest-yield candidate is returned with ``satisfies_k=False`` (the
    same best-effort contract as the branch-and-bound optimizer).
    """
    metric = metric or ExecutionTimeMetric()
    k = query.k if k is None else k
    estimator = Estimator(query)
    result = ExhaustiveResult(best=None)

    best_key: tuple[bool, float] | None = None
    for assignment in _assignments(query):
        result.assignments += 1
        for choice in enumerate_binding_choices(
            query, assignment, limit=binding_choice_limit
        ):
            for plan in enumerate_topologies(
                query, assignment, choice, method_options=join_method_options
            ):
                result.topologies += 1
                for fetches in _fetch_grid(plan, max_fetch):
                    result.candidates_priced += 1
                    annotations = annotate(
                        plan, query, fetches=fetches, estimator=estimator
                    )
                    results_est = annotations.estimated_results(plan)
                    cost = metric.cost(plan, annotations)
                    satisfies = results_est >= k
                    key = (satisfies, -cost)
                    if best_key is None or key > best_key:
                        best_key = key
                        result.best = PlanCandidate(
                            plan=plan,
                            fetches=dict(fetches),
                            annotations=annotations,
                            cost=cost,
                            estimated_results=results_est,
                            satisfies_k=satisfies,
                            assignment=dict(assignment),
                        )
    result.plans_enumerated = result.candidates_priced
    return result
