"""Baseline planners: exhaustive ground truth, WSMS [22], naive/random."""

from repro.baselines.exhaustive import ExhaustiveResult, exhaustive_optimum
from repro.baselines.naive import first_feasible_candidate, random_candidate
from repro.baselines.wsms import (
    WsmsService,
    chain_bottleneck,
    exchange_sorted_chain,
    optimal_chain,
    wsms_service_from_interface,
)

__all__ = [
    "ExhaustiveResult",
    "exhaustive_optimum",
    "first_feasible_candidate",
    "random_candidate",
    "WsmsService",
    "chain_bottleneck",
    "exchange_sorted_chain",
    "optimal_chain",
    "wsms_service_from_interface",
]
