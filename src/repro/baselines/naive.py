"""Naive planners: lower baselines for the optimizer benchmarks.

* :func:`first_feasible_candidate` — take the first interface for every
  atom, the first acyclic binding choice, the first topology the builder
  produces, and grow fetch factors uniformly until the estimate reaches
  ``k``.  This is what a system without an optimizer would do.
* :func:`random_candidate` — a seeded random walk over the same space:
  random interface per atom, random binding choice, random topology
  moves, uniform fetch growth.  Averaging its cost over seeds gives the
  expected quality of an unoptimized plan (the denominator of the
  "optimization pays off by X" statements in EXPERIMENTS.md).
"""

from __future__ import annotations

import random

from repro.core.annotate import annotate
from repro.core.cost import CostMetric, ExecutionTimeMetric
from repro.core.heuristics import fetch_cap
from repro.core.optimizer import PlanCandidate
from repro.core.topology import TopologyBuilder
from repro.errors import OptimizationError
from repro.plans.plan import QueryPlan
from repro.query.compile import CompiledQuery
from repro.query.feasibility import enumerate_binding_choices
from repro.stats.estimate import Estimator

__all__ = ["first_feasible_candidate", "random_candidate"]


def _grow_fetches_until_k(
    plan: QueryPlan,
    query: CompiledQuery,
    metric: CostMetric,
    k: int,
    estimator: Estimator,
) -> PlanCandidate:
    """Uniform +1 growth of every fetch factor until the estimate hits k."""
    chunked = [
        node
        for node in plan.service_nodes()
        if node.interface is not None and node.interface.is_chunked
    ]
    fetches = {node.alias: 1 for node in chunked}
    while True:
        annotations = annotate(plan, query, fetches=fetches, estimator=estimator)
        results = annotations.estimated_results(plan)
        if results >= k:
            break
        moved = False
        for node in chunked:
            assert node.interface is not None
            if fetches[node.alias] < fetch_cap(node.interface):
                fetches[node.alias] += 1
                moved = True
        if not moved:
            break  # saturated below k: best effort
    annotations = annotate(plan, query, fetches=fetches, estimator=estimator)
    results = annotations.estimated_results(plan)
    return PlanCandidate(
        plan=plan,
        fetches=dict(fetches),
        annotations=annotations,
        cost=metric.cost(plan, annotations),
        estimated_results=results,
        satisfies_k=results >= k,
    )


def first_feasible_candidate(
    query: CompiledQuery,
    metric: CostMetric | None = None,
    k: int | None = None,
) -> PlanCandidate:
    """First interfaces, first binding choice, first topology, uniform growth."""
    metric = metric or ExecutionTimeMetric()
    k = query.k if k is None else k
    assignment = {
        atom.alias: query.registry.interfaces_of(atom.mart.name)[0]
        for atom in query.atoms
        if atom.interface is None
    }
    choice = next(enumerate_binding_choices(query, assignment, limit=1), None)
    if choice is None:
        raise OptimizationError("query is not feasible")
    builder = TopologyBuilder.initial(query, assignment, choice)
    guard = 0
    while not builder.is_complete:
        guard += 1
        if guard > 1000:  # pragma: no cover - defensive
            raise OptimizationError("first-feasible construction did not finish")
        moves = builder.available_moves()
        if not moves:
            raise OptimizationError("dead end while building first topology")
        builder = builder.apply(moves[0])
    plan = builder.finish()
    return _grow_fetches_until_k(plan, query, metric, k, Estimator(query))


def random_candidate(
    query: CompiledQuery,
    seed: int = 0,
    metric: CostMetric | None = None,
    k: int | None = None,
    max_attempts: int = 32,
) -> PlanCandidate:
    """Seeded random feasible plan with uniform fetch growth.

    Random walks can dead-end (e.g. a fork whose merge is degenerate);
    construction retries up to ``max_attempts`` walks before giving up.
    """
    metric = metric or ExecutionTimeMetric()
    k = query.k if k is None else k
    rng = random.Random(seed)

    for _ in range(max_attempts):
        assignment = {
            atom.alias: rng.choice(
                list(query.registry.interfaces_of(atom.mart.name))
            )
            for atom in query.atoms
            if atom.interface is None
        }
        choices = list(enumerate_binding_choices(query, assignment, limit=16))
        if not choices:
            continue
        builder = TopologyBuilder.initial(query, assignment, rng.choice(choices))
        ok = True
        for _ in range(1000):
            if builder.is_complete:
                break
            moves = builder.available_moves()
            if not moves:
                ok = False
                break
            builder = builder.apply(rng.choice(moves))
        if not ok or not builder.is_complete:
            continue
        plan = builder.finish()
        return _grow_fetches_until_k(plan, query, metric, k, Estimator(query))
    raise OptimizationError("no feasible random plan found")
