"""Query augmentation with off-query services (Section 2.3).

"For some queries, it may happen that no permissible choice of access
patterns exists.  Although, in this case, the original user query cannot
be answered, it may still be possible to obtain a subset of the answers
... by invoking services that are not necessarily mentioned in the query,
but that are available in the schema.  In particular, such 'off-query'
services may be invoked so that their output fields provide useful
bindings for the input fields of the services in the query with the same
abstract domain."

This module implements the non-recursive (single-step) form of that
augmentation: given an unfeasible compiled query, it searches the
registry for helper interfaces that (a) are themselves reachable given
the query's INPUT variables (possibly needing further helpers, up to a
depth bound) and (b) output attributes over the *same abstract domain* as
some uncovered input.  The result is a new :class:`~repro.query.ast.Query`
with the helper atoms and domain-equality join predicates added — an
*approximation* of the original query, as the chapter notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import UnfeasibleQueryError
from repro.model.attributes import AttributePath, parse_path
from repro.model.service import ServiceInterface
from repro.query.ast import (
    AttrRef,
    Comparator,
    JoinPredicate,
    Query,
    ServiceAtom,
)
from repro.query.compile import CompiledQuery, compile_query
from repro.query.feasibility import check_feasibility, input_providers

__all__ = ["AugmentationStep", "AugmentationResult", "augment_query"]


@dataclass(frozen=True)
class AugmentationStep:
    """One helper service added to cover one input attribute."""

    helper_alias: str
    helper_interface: str
    provides_path: str  # output path of the helper
    covers_alias: str
    covers_path: str  # input path of the original query atom
    domain: str


@dataclass
class AugmentationResult:
    """An augmented query plus the record of what was added and why."""

    query: Query
    steps: list[AugmentationStep] = field(default_factory=list)

    @property
    def augmented(self) -> bool:
        return bool(self.steps)


def _uncovered_inputs(compiled: CompiledQuery) -> list[tuple[str, str]]:
    """(alias, input path) pairs with no provider at all."""
    providers = input_providers(compiled)
    return sorted(key for key, options in providers.items() if not options)


def _domain_of(compiled: CompiledQuery, alias: str, path_text: str) -> str | None:
    attribute = compiled.atom(alias).mart.resolve(parse_path(path_text))
    return attribute.domain.name


def _helper_candidates(
    compiled: CompiledQuery, domain_name: str
) -> Iterable[tuple[ServiceInterface, AttributePath]]:
    """Registry interfaces with an *output* attribute over ``domain_name``.

    Candidates already used as atoms of the query are excluded (a helper
    is an off-query service by definition).
    """
    used = {
        atom.interface.name for atom in compiled.atoms if atom.interface is not None
    }
    for name in compiled.registry.interface_names:
        interface = compiled.registry.interface(name)
        if interface.name in used:
            continue
        for path in interface.mart.paths():
            if not interface.adornment_of(path).is_output:
                continue
            attribute = interface.mart.resolve(path)
            if attribute.domain.name == domain_name:
                yield interface, path
                break  # one providing path per helper is enough


def augment_query(
    compiled: CompiledQuery, max_helpers: int = 3
) -> AugmentationResult:
    """Make an unfeasible query feasible by adding off-query helpers.

    Returns the (possibly unchanged) query plus the augmentation record;
    raises :class:`~repro.errors.UnfeasibleQueryError` when no helper
    assignment within ``max_helpers`` additions yields a feasible query.
    The helpers are attached with domain-equality join predicates, so the
    augmented query computes an *approximation* (a superset restricted by
    the domain join) of the original — exactly the chapter's caveat.
    """
    if compiled.source is None:
        raise UnfeasibleQueryError("augmentation needs the source Query AST")
    if check_feasibility(compiled).feasible:
        return AugmentationResult(query=compiled.source)

    query = compiled.source
    steps: list[AugmentationStep] = []
    current = compiled

    for round_index in range(max_helpers):
        uncovered = _uncovered_inputs(current)
        if not uncovered:
            break
        alias, path_text = uncovered[0]
        domain_name = _domain_of(current, alias, path_text)
        if domain_name is None:
            raise UnfeasibleQueryError(
                f"no domain information for {alias}.{path_text}"
            )
        added = False
        for interface, providing_path in _helper_candidates(current, domain_name):
            helper_alias = f"AUX{round_index}"
            atoms = query.atoms + (ServiceAtom(helper_alias, interface.name),)
            join = JoinPredicate(
                left=AttrRef(helper_alias, providing_path),
                comparator=Comparator.EQ,
                right=AttrRef(alias, parse_path(path_text)),
            )
            candidate = Query(
                atoms=atoms,
                connections=query.connections,
                selections=query.selections,
                joins=query.joins + (join,),
                ranking_weights=dict(query.ranking_weights),
                k=query.k,
            )
            compiled_candidate = compile_query(candidate, compiled.registry)
            # Keep the helper if it covers the targeted input.  It may
            # introduce uncovered inputs of its own (a helper needing a
            # helper — the chapter's recursive case); later rounds cover
            # those, bounded by ``max_helpers``.
            remaining = _uncovered_inputs(compiled_candidate)
            if (alias, path_text) not in remaining:
                query = candidate
                current = compiled_candidate
                steps.append(
                    AugmentationStep(
                        helper_alias=helper_alias,
                        helper_interface=interface.name,
                        provides_path=str(providing_path),
                        covers_alias=alias,
                        covers_path=path_text,
                        domain=domain_name,
                    )
                )
                added = True
                break
        if not added:
            raise UnfeasibleQueryError(
                f"no off-query service can bind {alias}.{path_text} "
                f"(domain {domain_name!r})",
                unreachable=(alias,),
            )
        if check_feasibility(current).feasible:
            return AugmentationResult(query=query, steps=steps)

    if check_feasibility(current).feasible:
        return AugmentationResult(query=query, steps=steps)
    raise UnfeasibleQueryError(
        f"query still unfeasible after {max_helpers} helper additions",
        unreachable=check_feasibility(current).unreachable,
    )
