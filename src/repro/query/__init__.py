"""Query layer: AST, parser, compilation, predicate semantics, feasibility.

The query layer turns textual conjunctive queries over service marts or
interfaces into compiled, validated queries whose feasibility (reachability
of every service under access limitations) can be analysed, and provides
the repeating-group witness semantics of Section 3.1 used both by the
execution engine and by the semantics tests.
"""

from repro.query.augment import (
    AugmentationResult,
    AugmentationStep,
    augment_query,
)
from repro.query.ast import (
    AttrRef,
    Comparator,
    ConnectionAtom,
    InputRef,
    JoinPredicate,
    Query,
    SelectionPredicate,
    ServiceAtom,
)
from repro.query.compile import CompiledAtom, CompiledQuery, compile_query
from repro.query.feasibility import (
    BindingChoice,
    FeasibilityResult,
    Provider,
    ProviderKind,
    check_feasibility,
    enumerate_binding_choices,
    input_providers,
    require_feasible,
)
from repro.query.parser import parse_query
from repro.query.predicates import (
    filter_tuples,
    group_occurrences,
    satisfies,
    tuple_satisfies_selections,
)

__all__ = [
    "AugmentationResult",
    "AugmentationStep",
    "augment_query",
    "AttrRef",
    "Comparator",
    "ConnectionAtom",
    "InputRef",
    "JoinPredicate",
    "Query",
    "SelectionPredicate",
    "ServiceAtom",
    "CompiledAtom",
    "CompiledQuery",
    "compile_query",
    "BindingChoice",
    "FeasibilityResult",
    "Provider",
    "ProviderKind",
    "check_feasibility",
    "enumerate_binding_choices",
    "input_providers",
    "require_feasible",
    "parse_query",
    "filter_tuples",
    "group_occurrences",
    "satisfies",
    "tuple_satisfies_selections",
]
