"""Textual query language parser.

The surface syntax mirrors the chapter's running-example listing
(Section 3.1)::

    SELECT Movie1 AS M, Theatre1 AS T, Restaurant1 AS R
    WHERE Shows(M, T) AND DinnerPlace(T, R)
      AND M.Genres.Genre = INPUT1 AND M.Openings.Date > INPUT3
      AND T.UCity = 'Milan' AND M.Title = T.Title
    RANK BY 0.3*M, 0.5*T, 0.2*R
    LIMIT 10

Grammar (case-insensitive keywords)::

    query      := SELECT atom ("," atom)* [WHERE cond (AND cond)*]
                  [RANK BY weight ("," weight)*] [LIMIT int]
    atom       := ident [AS ident]
    cond       := connection | predicate
    connection := ident "(" ident "," ident ")"
    predicate  := attref op operand
    attref     := ident "." ident ["." ident]
    operand    := attref | INPUTi | string | number | TRUE | FALSE
    weight     := number "*" ident
    op         := "=" | "<" | "<=" | ">" | ">=" | LIKE

A predicate whose right-hand side is an attribute reference becomes a join
predicate; otherwise it is a selection predicate.  When an atom has no
``AS`` clause its source name doubles as the alias.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryParseError
from repro.query.ast import (
    AttrRef,
    Comparator,
    ConnectionAtom,
    InputRef,
    JoinPredicate,
    Query,
    SelectionPredicate,
    ServiceAtom,
)

__all__ = ["parse_query", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?(?:\d+\.\d+|\.\d+|\d+))
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|=|<|>|\*|\(|\)|,|\.)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "where", "and", "as", "rank", "by", "limit", "like", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "op" | "ident" | "kw"
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    """Tokenize a query string, raising on unrecognized characters."""
    tokens: list[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise QueryParseError(
                f"unexpected character {text[index]!r}", position=index
            )
        index = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(_Token("kw", value.lower(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query", position=len(self.text))
        self.index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise QueryParseError(
                f"expected {wanted!r}, found {token.text!r}", position=token.position
            )
        return token

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind and (
            text is None or token.text == text
        ):
            self.index += 1
            return token
        return None

    # -- grammar productions ---------------------------------------------------

    def parse(self) -> Query:
        self._expect("kw", "select")
        atoms = [self._atom()]
        while self._accept("op", ","):
            atoms.append(self._atom())

        connections: list[ConnectionAtom] = []
        selections: list[SelectionPredicate] = []
        joins: list[JoinPredicate] = []
        if self._accept("kw", "where"):
            self._condition(connections, selections, joins)
            while self._accept("kw", "and"):
                self._condition(connections, selections, joins)

        weights: dict[str, float] = {}
        if self._accept("kw", "rank"):
            self._expect("kw", "by")
            alias, weight = self._weight()
            weights[alias] = weight
            while self._accept("op", ","):
                alias, weight = self._weight()
                weights[alias] = weight

        k = 10
        if self._accept("kw", "limit"):
            token = self._expect("number")
            k = int(float(token.text))

        if self._peek() is not None:
            token = self._peek()
            assert token is not None
            raise QueryParseError(
                f"trailing input {token.text!r}", position=token.position
            )
        return Query(
            atoms=tuple(atoms),
            connections=tuple(connections),
            selections=tuple(selections),
            joins=tuple(joins),
            ranking_weights=weights,
            k=k,
        )

    def _atom(self) -> ServiceAtom:
        source = self._expect("ident").text
        alias = source
        if self._accept("kw", "as"):
            alias = self._expect("ident").text
        return ServiceAtom(alias=alias, source=source)

    def _condition(
        self,
        connections: list[ConnectionAtom],
        selections: list[SelectionPredicate],
        joins: list[JoinPredicate],
    ) -> None:
        """Parse one conjunct: a connection atom or a predicate."""
        first = self._expect("ident")
        if self._accept("op", "("):
            left = self._expect("ident").text
            self._expect("op", ",")
            right = self._expect("ident").text
            self._expect("op", ")")
            connections.append(ConnectionAtom(first.text, left, right))
            return
        # Otherwise: attref op operand, with `first` the alias.
        attr = self._attref_tail(first.text, first.position)
        comparator = self._comparator()
        operand = self._operand()
        if isinstance(operand, AttrRef):
            joins.append(JoinPredicate(attr, comparator, operand))
        else:
            selections.append(SelectionPredicate(attr, comparator, operand))

    def _attref_tail(self, alias: str, position: int) -> AttrRef:
        """Parse the ``.path[.subpath]`` remainder of an attribute reference."""
        if self._accept("op", ".") is None:
            raise QueryParseError(
                f"expected '.' after alias {alias!r}", position=position
            )
        first = self._expect("ident").text
        if self._accept("op", "."):
            second = self._expect("ident").text
            return AttrRef.parse(f"{alias}.{first}.{second}")
        return AttrRef.parse(f"{alias}.{first}")

    def _comparator(self) -> Comparator:
        if self._accept("kw", "like"):
            return Comparator.LIKE
        token = self._expect("op")
        try:
            return Comparator(token.text)
        except ValueError:
            raise QueryParseError(
                f"{token.text!r} is not a comparator", position=token.position
            ) from None

    def _operand(self):
        token = self._next()
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            return token.text[1:-1].replace("\\'", "'").replace('\\"', '"')
        if token.kind == "kw" and token.text in ("true", "false"):
            return token.text == "true"
        if token.kind == "ident":
            if token.text.upper().startswith("INPUT"):
                return InputRef(token.text.upper())
            return self._attref_tail(token.text, token.position)
        raise QueryParseError(
            f"unexpected operand {token.text!r}", position=token.position
        )

    def _weight(self) -> tuple[str, float]:
        number = self._expect("number")
        self._expect("op", "*")
        alias = self._expect("ident").text
        return alias, float(number.text)


def parse_query(text: str) -> Query:
    """Parse a query string into a registry-independent :class:`Query` AST.

    Raises :class:`~repro.errors.QueryParseError` with a character position
    on malformed input.
    """
    return _Parser(text).parse()
