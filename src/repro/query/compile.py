"""Query compilation: bind the AST to a service registry.

Compilation resolves service atoms against the registry (an atom may name a
mart, deferring interface selection to the optimizer's phase 1, or a
specific interface, fixing it), expands connection-pattern atoms into their
join-predicate conjunctions (Section 3.1 shows the two equivalent
formulations of the running example), validates that every referenced
attribute path exists and that compared operands are type-compatible, and
attaches the query's ranking function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import QueryError
from repro.model.attributes import DataType
from repro.model.registry import ServiceRegistry
from repro.model.service import ServiceInterface, ServiceMart
from repro.model.tuples import RankingFunction
from repro.query.ast import (
    AttrRef,
    Comparator,
    InputRef,
    JoinPredicate,
    Query,
    SelectionPredicate,
)

__all__ = ["CompiledAtom", "CompiledQuery", "compile_query"]


@dataclass(frozen=True)
class CompiledAtom:
    """A service atom bound to its mart and, possibly, a fixed interface."""

    alias: str
    mart: ServiceMart
    interface: ServiceInterface | None = None

    @property
    def is_interface_fixed(self) -> bool:
        return self.interface is not None


@dataclass(frozen=True)
class CompiledQuery:
    """A validated query bound to a registry, patterns expanded.

    ``joins`` contains both explicit join predicates and those expanded
    from connection atoms; the latter carry their pattern name and
    selectivity, which the estimator treats as one group per pattern.
    """

    registry: ServiceRegistry
    atoms: tuple[CompiledAtom, ...]
    selections: tuple[SelectionPredicate, ...]
    joins: tuple[JoinPredicate, ...]
    ranking: RankingFunction
    k: int
    source: Query | None = field(default=None, compare=False, repr=False)

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(atom.alias for atom in self.atoms)

    def atom(self, alias: str) -> CompiledAtom:
        for atom in self.atoms:
            if atom.alias == alias:
                return atom
        raise QueryError(f"no atom with alias {alias!r}")

    def selections_on(self, alias: str) -> tuple[SelectionPredicate, ...]:
        return tuple(s for s in self.selections if s.attr.alias == alias)

    def joins_between(self, alias_a: str, alias_b: str) -> tuple[JoinPredicate, ...]:
        wanted = frozenset((alias_a, alias_b))
        return tuple(j for j in self.joins if j.aliases == wanted)

    def joins_involving(self, alias: str) -> tuple[JoinPredicate, ...]:
        return tuple(j for j in self.joins if alias in j.aliases)

    def join_graph(self) -> dict[frozenset[str], tuple[JoinPredicate, ...]]:
        """Join predicates grouped by the unordered pair of aliases."""
        graph: dict[frozenset[str], list[JoinPredicate]] = {}
        for join in self.joins:
            graph.setdefault(join.aliases, []).append(join)
        return {pair: tuple(preds) for pair, preds in graph.items()}

    def input_names(self) -> tuple[str, ...]:
        names: list[str] = []
        for sel in self.selections:
            if isinstance(sel.operand, InputRef) and sel.operand.name not in names:
                names.append(sel.operand.name)
        return tuple(names)


def _resolve_attr(
    atoms: Mapping[str, CompiledAtom], ref: AttrRef
) -> DataType:
    """Resolve an attribute reference, returning its data type."""
    if ref.alias not in atoms:
        raise QueryError(f"unknown alias in reference {ref}")
    attr = atoms[ref.alias].mart.resolve(ref.path)
    return attr.dtype


def _check_constant(dtype: DataType, value: object, context: str) -> None:
    """Check a constant's Python type against the attribute's data type."""
    expected: tuple[type, ...]
    if dtype is DataType.STRING or dtype is DataType.DATE:
        expected = (str,)
    elif dtype is DataType.INTEGER:
        expected = (int,)
    elif dtype is DataType.FLOAT:
        expected = (int, float)
    elif dtype is DataType.BOOLEAN:
        expected = (bool,)
    else:
        return
    if not isinstance(value, expected) or (
        dtype in (DataType.INTEGER, DataType.FLOAT) and isinstance(value, bool)
    ):
        raise QueryError(
            f"{context}: constant {value!r} incompatible with {dtype.value} attribute"
        )


def compile_query(query: Query, registry: ServiceRegistry) -> CompiledQuery:
    """Bind and validate ``query`` against ``registry``.

    Raises :class:`~repro.errors.QueryError` on unknown atoms, unknown
    attribute paths, type-incompatible comparisons, or patterns that do not
    connect the marts of their argument aliases.
    """
    atoms: dict[str, CompiledAtom] = {}
    for atom in query.atoms:
        mart, interface = registry.resolve_atom(atom.source)
        atoms[atom.alias] = CompiledAtom(atom.alias, mart, interface)

    joins: list[JoinPredicate] = []
    for conn in query.connections:
        pattern = registry.pattern(conn.pattern)
        left_mart = atoms[conn.left_alias].mart.name
        right_mart = atoms[conn.right_alias].mart.name
        if not pattern.connects(left_mart, right_mart):
            raise QueryError(
                f"{conn}: pattern links {pattern.source.name}/{pattern.target.name}, "
                f"not {left_mart}/{right_mart}"
            )
        # Orient the pattern so its pairs read left-alias first.
        per_pair = pattern.selectivity ** (1.0 / len(pattern.pairs))
        for from_path, comparator, to_path in pattern.oriented_pairs(left_mart):
            joins.append(
                JoinPredicate(
                    left=AttrRef(conn.left_alias, from_path),
                    comparator=Comparator(comparator),
                    right=AttrRef(conn.right_alias, to_path),
                    selectivity=per_pair,
                    pattern=pattern.name,
                )
            )
    joins.extend(query.joins)

    # Validate every reference and comparison.
    for sel in query.selections:
        dtype = _resolve_attr(atoms, sel.attr)
        if not isinstance(sel.operand, InputRef):
            _check_constant(dtype, sel.operand, str(sel))
    for join in joins:
        left_type = _resolve_attr(atoms, join.left)
        right_type = _resolve_attr(atoms, join.right)
        if not left_type.is_compatible(right_type):
            raise QueryError(
                f"{join}: incompatible types {left_type.value} vs {right_type.value}"
            )

    weights = dict(query.ranking_weights)
    if not weights:
        # Default: uniform weights over ranked atoms, zero elsewhere
        # (Section 3.1 sets the weight of unranked services to zero).
        for alias, atom in atoms.items():
            if atom.interface is not None:
                weights[alias] = 1.0 if atom.interface.is_ranked else 0.0
            else:
                candidates = registry.interfaces_of(atom.mart.name)
                ranked = any(iface.is_ranked for iface in candidates)
                weights[alias] = 1.0 if ranked else 0.0
    else:
        for alias, atom in atoms.items():
            weights.setdefault(alias, 0.0)

    return CompiledQuery(
        registry=registry,
        atoms=tuple(atoms.values()),
        selections=tuple(query.selections),
        joins=tuple(joins),
        ranking=RankingFunction(weights),
        k=query.k,
        source=query,
    )
