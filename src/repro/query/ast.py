"""Abstract syntax of conjunctive queries over service marts/interfaces.

Section 3.1 defines a query as a set of service atoms (with renaming), a
set of selection predicates ``A op const``, and a set of join predicates
``A op B``, where operands are atomic attributes or sub-attributes and
``op`` ranges over ``{=, <, <=, >, >=, like}``.  Join conditions may be
abbreviated by connection-pattern atoms such as ``Shows(M, T)``.  Constants
may be replaced by ``INPUT``-prefixed variables bound at execution time.
A query additionally carries a ranking function (per-atom weights) and the
number ``k`` of desired answers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.errors import QueryError
from repro.model.attributes import AttributePath, parse_path

__all__ = [
    "Comparator",
    "AttrRef",
    "InputRef",
    "SelectionPredicate",
    "JoinPredicate",
    "ConnectionAtom",
    "ServiceAtom",
    "Query",
]


class Comparator(Enum):
    """Comparison operators admitted in predicates."""

    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LIKE = "like"

    def apply(self, left: Any, right: Any) -> bool:
        """Evaluate the comparator on two values.

        ``like`` interprets the right operand as a SQL LIKE pattern
        (``%`` any run, ``_`` any character), case-insensitively.  ``None``
        operands never satisfy any comparator (SQL-style null semantics).
        """
        if left is None or right is None:
            return False
        if self is Comparator.EQ:
            return left == right
        if self is Comparator.LIKE:
            pattern = re.escape(str(right))
            pattern = pattern.replace(re.escape("%"), ".*").replace(
                re.escape("_"), "."
            )
            return re.fullmatch(pattern, str(left), re.IGNORECASE) is not None
        try:
            if self is Comparator.LT:
                return left < right
            if self is Comparator.LE:
                return left <= right
            if self is Comparator.GT:
                return left > right
            if self is Comparator.GE:
                return left >= right
        except TypeError as exc:
            raise QueryError(
                f"cannot compare {left!r} {self.value} {right!r}"
            ) from exc
        raise AssertionError(f"unhandled comparator {self}")  # pragma: no cover

    @property
    def flipped(self) -> "Comparator":
        """The comparator with operands swapped (``a < b`` iff ``b > a``)."""
        table = {
            Comparator.LT: Comparator.GT,
            Comparator.LE: Comparator.GE,
            Comparator.GT: Comparator.LT,
            Comparator.GE: Comparator.LE,
        }
        return table.get(self, self)


@dataclass(frozen=True, order=True)
class AttrRef:
    """A (sub-)attribute of one query atom: ``alias.path``."""

    alias: str
    path: AttributePath

    @classmethod
    def parse(cls, text: str) -> "AttrRef":
        """Parse ``"M.Title"`` or ``"M.Openings.Date"``."""
        parts = text.split(".", 1)
        if len(parts) != 2 or not parts[0]:
            raise QueryError(f"attribute reference {text!r} needs an alias prefix")
        return cls(parts[0], parse_path(parts[1]))

    def __str__(self) -> str:
        return f"{self.alias}.{self.path}"


@dataclass(frozen=True)
class InputRef:
    """An ``INPUT``-prefixed variable bound by the user at execution time."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.upper().startswith("INPUT"):
            raise QueryError(f"input variable {self.name!r} must start with INPUT")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SelectionPredicate:
    """``attr op const`` or ``attr op INPUTi``."""

    attr: AttrRef
    comparator: Comparator
    operand: Any

    @property
    def is_input_bound(self) -> bool:
        return isinstance(self.operand, InputRef)

    @property
    def binds(self) -> bool:
        """True when the predicate can *bind* its attribute.

        Only equality with a constant or an INPUT variable provides a value
        that can feed a service's input attribute (reachability rule of
        Section 3.1).
        """
        return self.comparator is Comparator.EQ

    def resolved_operand(self, inputs: Mapping[str, Any]) -> Any:
        """Operand value with INPUT variables substituted from ``inputs``."""
        if isinstance(self.operand, InputRef):
            if self.operand.name not in inputs:
                raise QueryError(f"missing binding for {self.operand.name}")
            return inputs[self.operand.name]
        return self.operand

    def __str__(self) -> str:
        operand = (
            str(self.operand)
            if isinstance(self.operand, InputRef)
            else repr(self.operand)
        )
        return f"{self.attr} {self.comparator.value} {operand}"


@dataclass(frozen=True)
class JoinPredicate:
    """``left.attr op right.attr`` between two (possibly equal) atoms."""

    left: AttrRef
    comparator: Comparator
    right: AttrRef
    # Selectivity estimate; populated by pattern expansion or the estimator.
    selectivity: float | None = None
    # Name of the connection pattern this predicate was expanded from.
    pattern: str | None = None

    def __post_init__(self) -> None:
        if self.left.alias == self.right.alias and self.left.path == self.right.path:
            raise QueryError(f"degenerate join predicate over {self.left}")

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset((self.left.alias, self.right.alias))

    def oriented_from(self, alias: str) -> tuple[AttrRef, Comparator, AttrRef]:
        """The predicate seen with ``alias`` on the left."""
        if self.left.alias == alias:
            return self.left, self.comparator, self.right
        if self.right.alias == alias:
            return self.right, self.comparator.flipped, self.left
        raise QueryError(f"join predicate {self} does not involve alias {alias!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.comparator.value} {self.right}"


@dataclass(frozen=True)
class ConnectionAtom:
    """A connection-pattern atom ``Pattern(left, right)`` in the WHERE clause."""

    pattern: str
    left_alias: str
    right_alias: str

    def __str__(self) -> str:
        return f"{self.pattern}({self.left_alias}, {self.right_alias})"


@dataclass(frozen=True)
class ServiceAtom:
    """One service occurrence in the query: ``source AS alias``.

    ``source`` names a service interface or a service mart; the same source
    may occur several times under different aliases (self-joins).
    """

    alias: str
    source: str

    def __post_init__(self) -> None:
        if not self.alias or not self.source:
            raise QueryError("service atom needs both a source and an alias")

    def __str__(self) -> str:
        return f"{self.source} AS {self.alias}"


@dataclass(frozen=True)
class Query:
    """A conjunctive select-join query over service atoms.

    The AST is registry-independent: connection atoms are unexpanded and
    atom sources unresolved.  :func:`repro.query.compile.compile_query`
    binds the query to a :class:`~repro.model.registry.ServiceRegistry`.
    """

    atoms: tuple[ServiceAtom, ...]
    connections: tuple[ConnectionAtom, ...] = ()
    selections: tuple[SelectionPredicate, ...] = ()
    joins: tuple[JoinPredicate, ...] = ()
    ranking_weights: Mapping[str, float] = field(default_factory=dict)
    k: int = 10

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("a query needs at least one service atom")
        if self.k <= 0:
            raise QueryError("k must be positive")
        aliases = [atom.alias for atom in self.atoms]
        if len(set(aliases)) != len(aliases):
            raise QueryError("duplicate aliases in query")
        known = set(aliases)
        object.__setattr__(self, "ranking_weights", dict(self.ranking_weights))
        for conn in self.connections:
            for alias in (conn.left_alias, conn.right_alias):
                if alias not in known:
                    raise QueryError(f"{conn} references unknown alias {alias!r}")
        for sel in self.selections:
            if sel.attr.alias not in known:
                raise QueryError(f"{sel} references unknown alias")
        for join in self.joins:
            for alias in join.aliases:
                if alias not in known:
                    raise QueryError(f"{join} references unknown alias {alias!r}")
        for alias in self.ranking_weights:
            if alias not in known:
                raise QueryError(f"ranking weight for unknown alias {alias!r}")

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(atom.alias for atom in self.atoms)

    def atom(self, alias: str) -> ServiceAtom:
        for atom in self.atoms:
            if atom.alias == alias:
                return atom
        raise QueryError(f"no atom with alias {alias!r}")

    def selections_on(self, alias: str) -> tuple[SelectionPredicate, ...]:
        return tuple(s for s in self.selections if s.attr.alias == alias)

    def input_names(self) -> tuple[str, ...]:
        """All INPUT variable names mentioned, in first-appearance order."""
        names: list[str] = []
        for sel in self.selections:
            if isinstance(sel.operand, InputRef) and sel.operand.name not in names:
                names.append(sel.operand.name)
        return tuple(names)

    def __str__(self) -> str:
        parts = [f"SELECT {', '.join(str(a) for a in self.atoms)}"]
        conds = [str(c) for c in self.connections]
        conds += [str(s) for s in self.selections]
        conds += [str(j) for j in self.joins]
        if conds:
            parts.append("WHERE " + " AND ".join(conds))
        if self.ranking_weights:
            weights = ", ".join(
                f"{w}*{alias}" for alias, w in self.ranking_weights.items()
            )
            parts.append(f"RANK BY {weights}")
        parts.append(f"LIMIT {self.k}")
        return " ".join(parts)
