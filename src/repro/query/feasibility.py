"""Reachability and feasibility analysis under access limitations.

Section 3.1: a service is *reachable* if every input (sub-)attribute of its
chosen interface is covered by an equality selection (with a constant or
INPUT variable) or by an equality join with an attribute of a reachable
service; a query is *feasible* when all its services are reachable.

Beyond the boolean check, the optimizer needs the full structure:

* for every (alias, input path), the set of possible :class:`Provider`\\ s —
  constants/INPUT bindings and join-fed bindings;
* the set of *binding choices* — one provider per input such that the
  induced I/O dependency graph is acyclic — each of which fixes the pipe
  dependencies that constrain phase-2 topology enumeration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping

from repro.errors import QueryError, UnfeasibleQueryError
from repro.model.attributes import AttributePath
from repro.model.service import ServiceInterface
from repro.query.ast import Comparator, JoinPredicate, SelectionPredicate
from repro.query.compile import CompiledQuery

__all__ = [
    "ProviderKind",
    "Provider",
    "BindingChoice",
    "FeasibilityResult",
    "input_providers",
    "check_feasibility",
    "require_feasible",
    "enumerate_binding_choices",
]

InterfaceAssignment = Mapping[str, ServiceInterface]


class ProviderKind(Enum):
    """How an input attribute gets its value."""

    CONSTANT = "constant"  # equality selection with a constant or INPUT var
    JOIN = "join"  # piped from an output attribute of another service


@dataclass(frozen=True)
class Provider:
    """One way of binding a specific input path of a specific alias."""

    alias: str
    path: AttributePath
    kind: ProviderKind
    selection: SelectionPredicate | None = None
    join: JoinPredicate | None = None
    source_alias: str | None = None
    source_path: AttributePath | None = None

    def __str__(self) -> str:
        if self.kind is ProviderKind.CONSTANT:
            return f"{self.alias}.{self.path} <- {self.selection}"
        return f"{self.alias}.{self.path} <- {self.source_alias}.{self.source_path}"


@dataclass(frozen=True)
class BindingChoice:
    """A concrete provider per input attribute, with an acyclic dependency graph.

    ``dependencies`` maps each alias to the frozen set of aliases it is
    piped from; *sources* are aliases with no dependencies (all inputs bound
    by constants/INPUT variables).
    """

    providers: tuple[Provider, ...]

    @property
    def dependencies(self) -> dict[str, frozenset[str]]:
        deps: dict[str, set[str]] = {}
        for provider in self.providers:
            deps.setdefault(provider.alias, set())
            if provider.kind is ProviderKind.JOIN and provider.source_alias:
                deps[provider.alias].add(provider.source_alias)
        return {alias: frozenset(sources) for alias, sources in deps.items()}

    def dependencies_over(self, aliases: tuple[str, ...]) -> dict[str, frozenset[str]]:
        """Dependency map covering every query alias (defaulting to none)."""
        deps = self.dependencies
        return {alias: deps.get(alias, frozenset()) for alias in aliases}

    def piped_attributes(self, consumer: str, producer: str) -> tuple[Provider, ...]:
        """Providers that pipe values from ``producer`` into ``consumer``."""
        return tuple(
            p
            for p in self.providers
            if p.alias == consumer
            and p.kind is ProviderKind.JOIN
            and p.source_alias == producer
        )

    def consumed_joins(self) -> frozenset[JoinPredicate]:
        """Join predicates realised as pipe bindings by this choice."""
        return frozenset(
            p.join for p in self.providers if p.join is not None
        )


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of the reachability fixpoint over all providers."""

    feasible: bool
    order: tuple[str, ...]  # one reachability (topological) order
    unreachable: tuple[str, ...]
    providers: Mapping[tuple[str, str], tuple[Provider, ...]] = field(
        default_factory=dict
    )


def _interface_of(
    query: CompiledQuery, assignment: InterfaceAssignment, alias: str
) -> ServiceInterface:
    atom = query.atom(alias)
    if atom.interface is not None:
        return atom.interface
    if alias not in assignment:
        raise QueryError(
            f"atom {alias!r} is mart-level; an interface assignment is required"
        )
    return assignment[alias]


def input_providers(
    query: CompiledQuery, assignment: InterfaceAssignment | None = None
) -> dict[tuple[str, str], tuple[Provider, ...]]:
    """All potential providers per (alias, input path), ignoring reachability.

    A join predicate provides a binding when it is an equality; the far
    side may be any attribute of the far service — an output shipped in its
    result tuples, or one of its own (already bound, hence known and
    echoed) input attributes.  This mirrors the chapter's reachability rule,
    which only requires "a (sub-)attribute of a reachable service".

    A selection predicate over an input path provides a binding with *any*
    comparator, not just equality: the chapter's own running example covers
    the input attribute ``Movie.Openings.Date`` with ``Date > INPUT3`` and
    declares the query feasible — services accept range constraints in
    their input forms and apply them server-side.
    """
    assignment = dict(assignment or {})
    result: dict[tuple[str, str], tuple[Provider, ...]] = {}
    for alias in query.aliases:
        interface = _interface_of(query, assignment, alias)
        for path_text in interface.input_paths():
            options: list[Provider] = []
            for sel in query.selections_on(alias):
                if str(sel.attr.path) == path_text:
                    options.append(
                        Provider(
                            alias=alias,
                            path=sel.attr.path,
                            kind=ProviderKind.CONSTANT,
                            selection=sel,
                        )
                    )
            for join in query.joins_involving(alias):
                if join.comparator is not Comparator.EQ:
                    continue
                here, _, there = join.oriented_from(alias)
                if str(here.path) != path_text or here.alias != alias:
                    continue
                options.append(
                    Provider(
                        alias=alias,
                        path=here.path,
                        kind=ProviderKind.JOIN,
                        join=join,
                        source_alias=there.alias,
                        source_path=there.path,
                    )
                )
            result[(alias, path_text)] = tuple(options)
    return result


def check_feasibility(
    query: CompiledQuery, assignment: InterfaceAssignment | None = None
) -> FeasibilityResult:
    """Run the reachability fixpoint of Section 3.1.

    A service joins the reachable set once every one of its input paths has
    a constant provider or a join provider rooted at an already-reachable
    service.  The returned order is one valid reachability order.
    """
    providers = input_providers(query, assignment)
    reachable: list[str] = []
    remaining = set(query.aliases)
    changed = True
    while changed and remaining:
        changed = False
        for alias in sorted(remaining):
            needed = [key for key in providers if key[0] == alias]
            ok = True
            for key in needed:
                options = providers[key]
                covered = any(
                    opt.kind is ProviderKind.CONSTANT
                    or (opt.source_alias in reachable)
                    for opt in options
                )
                if not covered:
                    ok = False
                    break
            if ok:
                reachable.append(alias)
                remaining.discard(alias)
                changed = True
    return FeasibilityResult(
        feasible=not remaining,
        order=tuple(reachable),
        unreachable=tuple(sorted(remaining)),
        providers=providers,
    )


def require_feasible(
    query: CompiledQuery, assignment: InterfaceAssignment | None = None
) -> FeasibilityResult:
    """As :func:`check_feasibility` but raising on unfeasible queries."""
    result = check_feasibility(query, assignment)
    if not result.feasible:
        raise UnfeasibleQueryError(
            "query is not feasible: unreachable services "
            + ", ".join(result.unreachable),
            unreachable=result.unreachable,
        )
    return result


def _is_acyclic(deps: Mapping[str, frozenset[str]]) -> bool:
    """Kahn-style cycle check over the dependency map."""
    indegree = {alias: 0 for alias in deps}
    for alias, sources in deps.items():
        for source in sources:
            indegree[alias] = indegree.get(alias, 0)
        indegree[alias] = len([s for s in sources if s in deps])
    queue = [alias for alias, deg in indegree.items() if deg == 0]
    seen = 0
    consumers: dict[str, list[str]] = {}
    for alias, sources in deps.items():
        for source in sources:
            consumers.setdefault(source, []).append(alias)
    while queue:
        node = queue.pop()
        seen += 1
        for consumer in consumers.get(node, ()):  # decrement consumers
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                queue.append(consumer)
    return seen == len(deps)


def enumerate_binding_choices(
    query: CompiledQuery,
    assignment: InterfaceAssignment | None = None,
    limit: int | None = None,
) -> Iterator[BindingChoice]:
    """Yield every acyclic provider selection (phase-1 branch points).

    Choices are generated in a deterministic order, constants preferred
    first (the chapter's "bound is better" intuition is handled by the
    optimizer's heuristics; here we only fix iteration order).  ``limit``
    caps the number of yielded choices.
    """
    providers = input_providers(query, assignment)
    keys = sorted(providers, key=lambda key: (key[0], key[1]))
    option_lists: list[tuple[Provider, ...]] = []
    for key in keys:
        options = providers[key]
        if not options:
            return  # some input can never be bound: no choice exists
        ordered = tuple(
            sorted(
                options,
                key=lambda p: (p.kind is not ProviderKind.CONSTANT, str(p)),
            )
        )
        option_lists.append(ordered)

    count = 0
    aliases = query.aliases
    for combo in itertools.product(*option_lists):
        choice = BindingChoice(providers=tuple(combo))
        deps = choice.dependencies_over(aliases)
        if not _is_acyclic(deps):
            continue
        yield choice
        count += 1
        if limit is not None and count >= limit:
            return
