"""Predicate evaluation with repeating-group witness semantics.

Section 3.1 defines query semantics carefully for repeating groups: a
composite tuple satisfies the predicate set ``P`` iff there exists a single
mapping ``M`` sending every repeating-group occurrence ``si.R`` mentioned
in ``P`` to *one* member sub-tuple of ``ti.R`` such that every predicate in
``P`` holds under that mapping.  The chapter's example: with
``t2 = ({<2,x>, <1,y>})`` the query ``S1.R.A=1 AND S1.R.B=x`` does *not*
select ``t2`` — although each conjunct is satisfied by *some* member, no
single member satisfies both.

This module implements that joint-witness evaluation for arbitrary
mixtures of selection and join predicates over composite tuples, plus the
single-service specialisation used when predicates are pushed down to a
service invocation.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Mapping, Sequence

from repro.model.attributes import AttributePath
from repro.model.tuples import CompositeTuple, ServiceTuple
from repro.query.ast import AttrRef, JoinPredicate, SelectionPredicate

__all__ = [
    "group_occurrences",
    "satisfies",
    "tuple_satisfies_selections",
    "filter_tuples",
]

#: A repeating-group occurrence: (alias, group name).
GroupKey = tuple[str, str]


def group_occurrences(
    selections: Iterable[SelectionPredicate],
    joins: Iterable[JoinPredicate] = (),
) -> tuple[GroupKey, ...]:
    """All repeating-group occurrences mentioned by the predicates.

    The result is ordered deterministically (sorted) so that witness
    enumeration is reproducible.
    """
    keys: set[GroupKey] = set()
    for sel in selections:
        if sel.attr.path.is_nested:
            keys.add((sel.attr.alias, sel.attr.path.group or ""))
    for join in joins:
        for ref in (join.left, join.right):
            if ref.path.is_nested:
                keys.add((ref.alias, ref.path.group or ""))
    return tuple(sorted(keys))


def _resolve(
    components: Mapping[str, ServiceTuple],
    witnesses: Mapping[GroupKey, Mapping[str, Any]],
    ref: AttrRef,
) -> Any:
    """Value of ``ref`` under the current witness assignment."""
    tup = components[ref.alias]
    path: AttributePath = ref.path
    if path.is_nested:
        witness = witnesses[(ref.alias, path.group or "")]
        return witness.get(path.name)
    return tup.values.get(path.name)


def satisfies(
    components: Mapping[str, ServiceTuple] | CompositeTuple,
    selections: Sequence[SelectionPredicate] = (),
    joins: Sequence[JoinPredicate] = (),
    inputs: Mapping[str, Any] | None = None,
) -> bool:
    """Joint-witness satisfaction of all predicates by a composite tuple.

    Parameters
    ----------
    components:
        Mapping alias → service tuple (or a :class:`CompositeTuple`), which
        must cover every alias referenced by the predicates.
    selections, joins:
        The predicate set ``P``.
    inputs:
        Bindings for INPUT variables occurring in selections.
    """
    if isinstance(components, CompositeTuple):
        components = components.components
    inputs = dict(inputs or {})

    occurrences = group_occurrences(selections, joins)
    member_choices: list[tuple[Mapping[str, Any], ...]] = []
    for alias, group in occurrences:
        members = components[alias].group_members(group)
        if not members:
            # An empty repeating group cannot supply a witness, so any
            # predicate over it is unsatisfiable.
            return False
        member_choices.append(members)

    for assignment in itertools.product(*member_choices):
        witnesses = dict(zip(occurrences, assignment))
        ok = True
        for sel in selections:
            left = _resolve(components, witnesses, sel.attr)
            right = sel.resolved_operand(inputs)
            if not sel.comparator.apply(left, right):
                ok = False
                break
        if ok:
            for join in joins:
                left = _resolve(components, witnesses, join.left)
                right = _resolve(components, witnesses, join.right)
                if not join.comparator.apply(left, right):
                    ok = False
                    break
        if ok:
            return True
    return False


def tuple_satisfies_selections(
    tup: ServiceTuple,
    alias: str,
    selections: Sequence[SelectionPredicate],
    inputs: Mapping[str, Any] | None = None,
) -> bool:
    """Single-service specialisation of :func:`satisfies`.

    Used when selection predicates are pushed down to the service node that
    makes them evaluable (Section 3.2: each predicate is "independently
    evaluated ... immediately after the service call that makes the
    selection or join predicates evaluable").
    """
    return satisfies({alias: tup}, selections=selections, inputs=inputs)


def filter_tuples(
    tuples: Iterable[ServiceTuple],
    alias: str,
    selections: Sequence[SelectionPredicate],
    inputs: Mapping[str, Any] | None = None,
) -> list[ServiceTuple]:
    """Filter a tuple stream through pushed-down selection predicates."""
    predicates = list(selections)
    if not predicates:
        return list(tuples)
    return [
        tup
        for tup in tuples
        if tuple_satisfies_selections(tup, alias, predicates, inputs)
    ]
