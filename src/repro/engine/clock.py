"""Clocks: units regulating the inter-service call ratio.

Section 4.3.2 closes with a pointer: "In Chapter 12 we show units for
controlling the execution strategy, called clocks, whose function is to
regulate service calls based upon the inter-service ratio."  This module
implements that controller as an extension feature: a :class:`JoinClock`
tracks the calls issued to the two sides of a join, decides which side is
due next so the realised ratio follows a target ``r = r1/r2``, and can be
*retuned* at run time (the "variable inter-service ratio" of the top-k
methods): changing the target mid-execution smoothly shifts future calls
without replaying the past.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import ExecutionError
from repro.joins.strategies import Axis, VariableRatioSchedule

__all__ = ["JoinClock"]


@dataclass
class JoinClock:
    """Controller keeping ``calls_x : calls_y`` close to a target ratio.

    The clock is deliberately stateless about *time*: it only counts calls
    (ticks).  ``next_axis()`` returns the side that is furthest behind its
    quota; :meth:`tick` records the call.  ``retune`` replaces the target
    ratio, and the controller converges to the new ratio over subsequent
    ticks (history is kept, so the realised cumulative ratio approaches the
    new target asymptotically — matching how a live engine would retune).
    """

    ratio: Fraction = Fraction(1, 1)
    calls_x: int = 0
    calls_y: int = 0
    _history: list[Axis] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise ExecutionError("clock ratio must be positive")

    def next_axis(self) -> Axis:
        """The side due next under the current target ratio.

        Uses the same cross-multiplication rule as the merge-scan
        schedule: call X while ``calls_x / calls_y <= r1 / r2``.
        """
        r1, r2 = self.ratio.numerator, self.ratio.denominator
        if self.calls_x * r2 <= self.calls_y * r1:
            return Axis.X
        return Axis.Y

    def tick(self, axis: Axis | None = None) -> Axis:
        """Record one call (to ``axis``, or to the due side) and return it."""
        chosen = axis if axis is not None else self.next_axis()
        if chosen is Axis.X:
            self.calls_x += 1
        else:
            self.calls_y += 1
        self._history.append(chosen)
        return chosen

    def retune(self, ratio: Fraction) -> None:
        """Change the target inter-service ratio at run time."""
        if ratio <= 0:
            raise ExecutionError("clock ratio must be positive")
        self.ratio = ratio

    @property
    def realised_ratio(self) -> Fraction | None:
        """Cumulative calls ratio so far, or None before any Y call."""
        if self.calls_y == 0:
            return None
        return Fraction(self.calls_x, self.calls_y)

    @property
    def history(self) -> tuple[Axis, ...]:
        return tuple(self._history)

    def as_schedule(self) -> VariableRatioSchedule:
        """Expose the clock as an invocation schedule for join executors.

        The schedule's chooser consults (and ticks) this clock, so
        retuning the clock while a join is running changes the join's
        call pattern from that point on.
        """

        def chooser(calls_x: int, calls_y: int) -> Axis:
            # Trust the executor's counts: they include schedule priming.
            self.calls_x = calls_x
            self.calls_y = calls_y
            return self.tick()

        return VariableRatioSchedule(chooser=chooser)
