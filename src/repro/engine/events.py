"""Virtual time and call accounting for simulated execution.

The paper's cost metrics are defined over service request-response times.
Executing against live Web services would make every measurement
irreproducible, so the engine runs on **virtual time**: each simulated
request-response advances a :class:`VirtualClock` by a deterministic,
seeded latency draw, and every call is appended to a :class:`CallLog`.
Measured metrics (execution time, bottleneck, time-to-screen) are then
exact functions of the log, reproducible under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError

__all__ = ["VirtualClock", "CallRecord", "CallLog"]


@dataclass
class VirtualClock:
    """A monotonically advancing virtual timestamp."""

    now: float = 0.0

    def advance(self, delta: float) -> float:
        """Advance by ``delta`` (must be non-negative); returns the new time."""
        if delta < 0:
            raise ExecutionError("cannot advance the clock backwards")
        self.now += delta
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` if it is later than now."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now


@dataclass(frozen=True)
class CallRecord:
    """One simulated request-response round trip."""

    service: str
    alias: str
    chunk_index: int
    started_at: float
    latency: float
    tuples: int

    @property
    def finished_at(self) -> float:
        return self.started_at + self.latency


@dataclass
class CallLog:
    """Append-only log of simulated service calls."""

    records: list[CallRecord] = field(default_factory=list)

    def record(self, record: CallRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def calls_to(self, service: str) -> int:
        return sum(1 for r in self.records if r.service == service)

    def calls_by_alias(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            out[record.alias] = out.get(record.alias, 0) + 1
        return out

    def total_calls(self) -> int:
        return len(self.records)

    def total_latency(self) -> float:
        return sum(r.latency for r in self.records)

    def busy_time(self, alias: str) -> float:
        """Total request-response time spent by one alias's service."""
        return sum(r.latency for r in self.records if r.alias == alias)

    def tuples_transferred(self, alias: str | None = None) -> int:
        return sum(
            r.tuples
            for r in self.records
            if alias is None or r.alias == alias
        )
