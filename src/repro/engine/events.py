"""Virtual time and call accounting for simulated execution.

The paper's cost metrics are defined over service request-response times.
Executing against live Web services would make every measurement
irreproducible, so the engine runs on **virtual time**: each simulated
request-response advances a :class:`VirtualClock` by a deterministic,
seeded latency draw, and every call is appended to a :class:`CallLog`.
Measured metrics (execution time, bottleneck, time-to-screen) are then
exact functions of the log, reproducible under a seed.

Failed round trips are logged too: a :class:`CallRecord` carries an
``outcome`` (``ok``/``slow``/``error``/``timeout``/``unavailable``), the
``attempt`` number within a retry sequence, and the ``backoff_wait`` the
retry harness slept *after* the call — so retry overhead is an exact
function of the log, just like the paper's cost metrics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ExecutionError

__all__ = ["VirtualClock", "CallRecord", "CallLog", "FAILURE_OUTCOMES"]

#: Outcomes that did not deliver a usable response.
FAILURE_OUTCOMES = frozenset({"error", "timeout", "unavailable"})


@dataclass
class VirtualClock:
    """A monotonically advancing virtual timestamp."""

    now: float = 0.0

    def advance(self, delta: float) -> float:
        """Advance by ``delta`` (must be non-negative); returns the new time."""
        if delta < 0:
            raise ExecutionError("cannot advance the clock backwards")
        self.now += delta
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` if it is later than now."""
        if timestamp > self.now:
            self.now = timestamp
        return self.now

    def reset(self) -> None:
        """Rewind to time zero *in place*, keeping existing references live."""
        self.now = 0.0


@dataclass(frozen=True)
class CallRecord:
    """One simulated request-response round trip."""

    service: str
    alias: str
    chunk_index: int
    started_at: float
    latency: float
    tuples: int
    #: ``ok`` | ``slow`` (served, above nominal latency) | ``error``
    #: (transient fault) | ``timeout`` | ``unavailable`` (outage).
    outcome: str = "ok"
    #: 1-based attempt number for the chunk this call tried to fetch.
    attempt: int = 1
    #: Virtual seconds the retry harness waited *after* this call before
    #: the next attempt (0.0 when no retry followed).
    backoff_wait: float = 0.0

    @property
    def finished_at(self) -> float:
        return self.started_at + self.latency

    @property
    def failed(self) -> bool:
        return self.outcome in FAILURE_OUTCOMES


@dataclass
class CallLog:
    """Append-only log of simulated service calls."""

    records: list[CallRecord] = field(default_factory=list)

    def record(self, record: CallRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        """Drop all records *in place*, keeping existing references live."""
        self.records.clear()

    def amend_last(self, **changes: object) -> CallRecord:
        """Replace fields of the most recent record (e.g. its backoff wait)."""
        if not self.records:
            raise ExecutionError("cannot amend an empty call log")
        return self.amend_at(len(self.records) - 1, **changes)

    def amend_at(self, index: int, **changes: object) -> CallRecord:
        """Replace fields of the record at ``index``.

        Concurrent callers (the asyncio backend) interleave appends from
        many services, so "the last record" is not necessarily "my
        record" — amending by the index captured when the call was
        issued is.
        """
        if not -len(self.records) <= index < len(self.records):
            raise ExecutionError(f"no call record at index {index}")
        amended = dataclasses.replace(self.records[index], **changes)
        self.records[index] = amended
        return amended

    def __len__(self) -> int:
        return len(self.records)

    def calls_to(self, service: str, ok_only: bool = False) -> int:
        """Round trips to ``service``; ``ok_only`` counts only the calls
        that delivered a usable response (the figure the chapter's
        per-call cost metrics mean — a retried chunk is one delivered
        response however many attempts it took)."""
        return sum(
            1
            for r in self.records
            if r.service == service and not (ok_only and r.failed)
        )

    def calls_by_alias(self, ok_only: bool = False) -> dict[str, int]:
        """Round trips per alias; ``ok_only`` restricts to delivered
        responses (failed attempts excluded — see :meth:`calls_to`)."""
        out: dict[str, int] = {}
        for record in self.records:
            if ok_only and record.failed:
                continue
            out[record.alias] = out.get(record.alias, 0) + 1
        return out

    def total_calls(self) -> int:
        return len(self.records)

    def total_latency(self) -> float:
        """Total virtual time attributable to calls: latencies plus the
        backoff waits spent between retry attempts."""
        return sum(r.latency + r.backoff_wait for r in self.records)

    def busy_time(self, alias: str) -> float:
        """Total request-response time spent by one alias's service,
        including retry backoff waits."""
        return sum(
            r.latency + r.backoff_wait for r in self.records if r.alias == alias
        )

    def tuples_transferred(self, alias: str | None = None) -> int:
        return sum(
            r.tuples
            for r in self.records
            if alias is None or r.alias == alias
        )

    # -- retry accounting -------------------------------------------------------

    def failed_calls(self, alias: str | None = None) -> int:
        """Round trips that did not deliver a usable response."""
        return sum(
            1
            for r in self.records
            if r.failed and (alias is None or r.alias == alias)
        )

    def retries(self, alias: str | None = None) -> int:
        """Calls that were re-attempts (attempt number above 1)."""
        return sum(
            1
            for r in self.records
            if r.attempt > 1 and (alias is None or r.alias == alias)
        )

    def retry_overhead(self, alias: str | None = None) -> float:
        """Virtual time spent on failed calls and backoff waits — the part
        of measured execution time a fault-free run would not pay."""
        total = 0.0
        for r in self.records:
            if alias is not None and r.alias != alias:
                continue
            total += r.backoff_wait
            if r.failed:
                total += r.latency
        return total
