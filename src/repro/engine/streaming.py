"""Streaming execution of binary parallel joins over live services.

The materialized :class:`~repro.engine.executor.PlanExecutor` bounds each
service by its fetch factor and joins whole result sets — the right model
for cost accounting, but it hides the call-by-call scheduling that
Section 4 is about.  This module provides the complementary fine-grained
path for the common two-service case: invoke both services, then drive a
:class:`~repro.joins.methods.ParallelJoinExecutor` (or the guaranteed
:class:`~repro.joins.topk.RankJoinExecutor`) over the live invocations, so
chunks are fetched exactly when the invocation/completion strategy asks
for them and the output is produced incrementally, tile by tile — the
non-blocking dataflow the chapter emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ExecutionError
from repro.joins.methods import JoinResult, make_executor
from repro.joins.spec import JoinMethodSpec
from repro.joins.topk import RankJoinExecutor
from repro.model.tuples import CompositeTuple, ServiceTuple
from repro.query.ast import Comparator
from repro.query.compile import CompiledQuery
from repro.query.feasibility import ProviderKind, input_providers
from repro.query.predicates import satisfies

__all__ = ["StreamedJoin", "stream_binary_join"]


@dataclass
class StreamedJoin:
    """Outcome of a streamed binary join."""

    combinations: list[CompositeTuple]
    join: JoinResult
    left_alias: str
    right_alias: str

    @property
    def total_calls(self) -> int:
        return self.join.stats.total_calls


def _source_bindings(
    query: CompiledQuery, alias: str, inputs: Mapping[str, Any]
) -> dict[str, Any]:
    """Constant bindings for one source atom; rejects piped inputs."""
    atom = query.atom(alias)
    assert atom.interface is not None
    bindings: dict[str, Any] = {}
    providers = input_providers(query)
    for path in atom.interface.input_paths():
        options = providers.get((alias, path), ())
        constant = next(
            (
                p
                for p in options
                if p.kind is ProviderKind.CONSTANT and p.selection is not None
            ),
            None,
        )
        if constant is None:
            raise ExecutionError(
                f"streamed joins need source services; {alias}.{path} "
                "has no constant binding"
            )
        assert constant.selection is not None
        if constant.selection.comparator is Comparator.EQ:
            bindings[path] = constant.selection.resolved_operand(inputs)
        else:
            bindings[path] = None  # range constraint: no echo value
    return bindings


def stream_binary_join(
    query: CompiledQuery,
    pool,
    inputs: Mapping[str, Any],
    spec: JoinMethodSpec | None = None,
    k: int | None = None,
    guarantee_topk: bool = False,
    max_calls: int = 10_000,
) -> StreamedJoin:
    """Run a two-atom query as a call-level streamed parallel join.

    Requirements: exactly two atoms, both with fixed interfaces whose
    inputs are bound by constants/INPUT variables (no pipe dependency),
    and at least one join predicate between them.  With
    ``guarantee_topk=True`` the rank join is used (weights taken from the
    query's ranking function); otherwise the fast method given by ``spec``
    (default merge-scan + triangular).
    """
    if len(query.atoms) != 2:
        raise ExecutionError("stream_binary_join needs exactly two atoms")
    left_alias, right_alias = query.aliases
    predicates = query.joins_between(left_alias, right_alias)
    if not predicates:
        raise ExecutionError("the two atoms are not joined")
    for atom in query.atoms:
        if atom.interface is None:
            raise ExecutionError(
                f"atom {atom.alias!r} must be bound to an interface"
            )

    k = query.k if k is None else k
    left_atom = query.atom(left_alias)
    right_atom = query.atom(right_alias)
    assert left_atom.interface is not None and right_atom.interface is not None
    left = pool.invoke(
        left_atom.interface.name,
        _source_bindings(query, left_alias, inputs),
        alias=left_alias,
    )
    right = pool.invoke(
        right_atom.interface.name,
        _source_bindings(query, right_alias, inputs),
        alias=right_alias,
    )

    def predicate(a: ServiceTuple, b: ServiceTuple) -> bool:
        return satisfies(
            {left_alias: a, right_alias: b}, joins=predicates, inputs=inputs
        )

    if guarantee_topk:
        executor = RankJoinExecutor(
            left,
            right,
            predicate,
            weight_x=query.ranking.weight(left_alias),
            weight_y=query.ranking.weight(right_alias),
            k=k,
            max_calls=max_calls,
        )
    else:
        executor = make_executor(
            spec or JoinMethodSpec(),
            left,
            right,
            predicate,
            k=k,
            scorer=lambda a, b: query.ranking.score(
                {left_alias: a.score, right_alias: b.score}
            ),
            max_calls=max_calls,
        )
    result = executor.run()

    combinations = [
        CompositeTuple(
            {left_alias: pair.left, right_alias: pair.right},
            query.ranking.score_composite(
                {left_alias: pair.left, right_alias: pair.right}
            ),
        )
        for pair in result.pairs
    ]
    return StreamedJoin(
        combinations=combinations,
        join=result,
        left_alias=left_alias,
        right_alias=right_alias,
    )
