"""Dataflow execution of fully instantiated query plans (Section 3.2).

The :class:`PlanExecutor` runs a validated plan against a
:class:`~repro.services.simulated.ServicePool`: it walks the DAG in
topological order, materialising each node's composite-tuple output —

* the **input node** emits the single user input tuple;
* a **service node** invokes its interface once per distinct input
  binding (invocations are memoised, so serial compositions that pipe no
  attributes cost one call batch), draws its fetch factor's worth of
  chunks, filters results through the alias's selection predicates with
  joint-witness semantics, and composes survivors with the upstream
  composite;
* a **selection node** filters composites through its residual predicates;
* a **parallel-join node** matches the two branch outputs — composites
  must agree on shared aliases (tuples stemming from the same upstream
  row) and satisfy the join predicates; a triangular completion strategy
  restricts the candidate pairs to the most promising half of the rank
  Cartesian product, mirroring the annotation model;
* the **output node** applies the final joint-witness semantic check over
  the *entire* predicate set (the Section 3.1 semantics is defined over
  one witness mapping for all predicates, which staged evaluation alone
  cannot guarantee), sorts by the global ranking function, and returns the
  best ``k`` combinations.

Execution is measured on virtual time: every service call advances the
pool's clock and appends to its log; the executor derives per-node busy
times and a critical-path *measured execution time* comparable with the
optimizer's estimates.

Execution is **step-resumable**: :meth:`PlanExecutor.steps` is a
generator that yields a :class:`StepEvent` immediately *before* every
chunk-granular service round trip (retries included in the step), so a
scheduler can interleave many in-flight queries on one timeline —
pausing a query before each round trip, granting it when admission,
concurrency, and rate-limit checks pass.  :meth:`PlanExecutor.run`
simply drains the generator, so single-query behaviour is unchanged.

The invocation memo is likewise factored into a standalone
:class:`InvocationCache` that may be **shared across executors**:
identical service calls issued by concurrent queries then coalesce into
one set of round trips (see :mod:`repro.serve`).
"""

from __future__ import annotations

import random
import sys
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

from repro.core.annotate import pipe_join_selectivity
from repro.core.optimizer import resolve_plan_join_kernel
from repro.engine.events import CallLog
from repro.joins.wcoj import KNOWN_JOIN_KERNELS
from repro.engine.retry import NO_RETRY, Degradation, Retrier, RetryPolicy
from repro.errors import ExecutionError, RetryExhaustedError
from repro.joins.spec import CompletionStrategy
from repro.model.tuples import CompositeTuple, RankingFunction
from repro.obs.tracer import NullTracer, Tracer, coerce_tracer
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import QueryPlan
from repro.query.ast import Comparator, JoinPredicate, SelectionPredicate
from repro.query.compile import CompiledQuery
from repro.query.feasibility import ProviderKind
from repro.query.predicates import satisfies, tuple_satisfies_selections
from repro.stats.estimate import Estimator

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.services.simulated import ServicePool

__all__ = [
    "NodeRunStats",
    "InvocationCache",
    "InvocationCacheStats",
    "ExecutionResult",
    "PlanExecutor",
    "StepEvent",
    "execute_plan",
    "invocation_cache_key",
]


#: Span-name suffix per plan-node kind (``node.<suffix>`` spans).
_SPAN_KINDS = {
    "InputNode": "input",
    "ServiceNode": "service",
    "SelectionNode": "selection",
    "ParallelJoinNode": "join",
    "OutputNode": "output",
}


def _value_key(value: Any) -> tuple:
    """Type-qualified repr of one value: ``repr`` alone conflates values
    of different types whose reprs coincide."""
    return (type(value).__qualname__, repr(value))


def invocation_cache_key(
    interface_name: str,
    alias: str,
    factor: int,
    bindings: Mapping[str, Any],
    *,
    constraints: Sequence[SelectionPredicate] = (),
    availability: float = 1.0,
) -> tuple:
    """Memo key for one service invocation.

    Each binding value is keyed by ``(type qualname, repr)``: ``repr``
    alone conflates values of different types whose reprs coincide, which
    would silently reuse another binding's results.

    ``constraints`` (server-side input predicates, already resolved to
    constants) and ``availability`` (the pipe-join selectivity gate) also
    shape the simulated response, so they participate in the key.  Within
    one execution both are constant per alias, making the extra
    components redundant there — but a cache **shared across queries**
    (see :mod:`repro.serve`) must distinguish, e.g., two parameterized
    instances of ``Date > INPUT3`` whose range constant differs while the
    bindings (``None`` for range-only inputs) coincide.
    """
    return (
        interface_name,
        alias,
        factor,
        tuple(
            sorted(
                (key, *_value_key(value)) for key, value in bindings.items()
            )
        ),
        tuple(
            sorted(
                (
                    str(constraint.attr),
                    constraint.comparator.value,
                    *_value_key(constraint.operand),
                )
                for constraint in constraints
            )
        ),
        round(float(availability), 12),
    )


@dataclass
class InvocationCacheStats:
    """Hit/miss/eviction accounting of the per-execution invocation memo."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class InvocationCache:
    """LRU memo of service invocations, shareable across executors.

    One entry per :func:`invocation_cache_key`, holding the
    ``(tuples, failed)`` outcome of drawing an invocation's chunks.  A
    :class:`PlanExecutor` builds a private instance by default; handing
    several executors the *same* instance coalesces identical service
    calls across queries — the simulated substrate is deterministic per
    ``(global seed, interface, bindings, constraints)``, so a cached
    outcome is byte-identical to what the second query would have fetched
    itself (see DESIGN.md, "Why cross-query sharing is safe").

    ``stats`` accounts lifetime totals; lookups additionally increment
    the per-execution :class:`InvocationCacheStats` the caller passes, so
    shared-cache hit rates remain attributable to individual queries.
    """

    max_size: int | None = 1024
    stats: InvocationCacheStats = field(default_factory=InvocationCacheStats)
    _data: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.max_size is not None and self.max_size <= 0:
            raise ExecutionError("invocation cache size must be positive or None")

    def get(
        self, key: tuple, stats: InvocationCacheStats | None = None
    ) -> tuple[list, bool] | None:
        entry = self._data.get(key)
        if entry is not None:
            self._data.move_to_end(key)
            self.stats.hits += 1
            if stats is not None:
                stats.hits += 1
        else:
            self.stats.misses += 1
            if stats is not None:
                stats.misses += 1
        return entry

    def put(
        self,
        key: tuple,
        value: tuple[list, bool],
        stats: InvocationCacheStats | None = None,
    ) -> None:
        self._data[key] = value
        if self.max_size is not None:
            while len(self._data) > self.max_size:
                self._data.popitem(last=False)
                self.stats.evictions += 1
                if stats is not None:
                    stats.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class StepEvent:
    """One impending service round trip, yielded by :meth:`PlanExecutor.steps`.

    The executor pauses *before* the round trip happens; resuming the
    generator performs it (retries and backoff included) plus any
    CPU-only work up to the next round trip.  A scheduler uses the event
    to decide *when* the paused query may proceed (rate limits, fairness)
    — the round trip then starts at whatever time the pool's clock shows.
    """

    alias: str
    interface: str
    #: 0-based index of the chunk this round trip requests.
    chunk_index: int


@dataclass
class NodeRunStats:
    """Actual (not estimated) tuple flow and call counts of one node."""

    tin: int = 0
    tout: int = 0
    calls: int = 0
    busy_time: float = 0.0
    #: Latency of the node's first request-response (0 for non-services).
    first_call_latency: float = 0.0
    #: Candidate pairs this node's join kernel examined (0 for non-joins).
    pairs_probed: int = 0


@dataclass
class ExecutionResult:
    """Outcome of one plan execution."""

    tuples: list[CompositeTuple]
    log: CallLog
    node_stats: dict[str, NodeRunStats]
    execution_time: float
    #: Measured time until a first complete combination could exist: the
    #: critical path of per-node *first-call* latencies (compare with the
    #: TimeToScreenMetric estimate).
    time_to_screen: float = 0.0
    total_candidates: int = 0
    #: Candidate pairs the parallel-join assembly actually examined; equals
    #: ``total_candidates`` for the nested-loop path, smaller when the
    #: hash-indexed equi-join kernel skipped non-colliding pairs.
    pairs_probed: int = 0
    #: Invocation-memo accounting for this execution.
    cache_stats: InvocationCacheStats = field(default_factory=InvocationCacheStats)
    #: Aliases whose service was abandoned after exhausting retries
    #: (non-empty only under ``partial`` degradation).
    failed_aliases: tuple[str, ...] = ()
    #: Which backend produced this result: ``"virtual"`` (discrete-event
    #: simulation) or ``"asyncio"`` (real concurrent execution).
    backend: str = "virtual"
    #: Concrete join kernel the parallel-join nodes ran under
    #: (``"binary"`` or ``"wcoj"``; ``auto`` requests resolve per plan
    #: before execution).
    join_kernel: str = "binary"
    #: Wall-clock seconds the run took (asyncio backend only; the
    #: virtual-clock backend reports 0.0 — its cost axis is virtual time).
    wall_time: float = 0.0

    @property
    def incomplete(self) -> bool:
        """True when a branch was down and the results are best-effort:
        combinations may be missing the failed aliases' components."""
        return bool(self.failed_aliases)

    @property
    def total_calls(self) -> int:
        return self.log.total_calls()

    def calls_by_alias(self, ok_only: bool = False) -> dict[str, int]:
        return self.log.calls_by_alias(ok_only=ok_only)

    def metrics(self) -> dict:
        """Unified metrics snapshot of this execution (one snapshot API
        over the legacy per-field accounting; see :mod:`repro.obs.metrics`)."""
        from repro.obs.metrics import snapshot_run

        return dict(snapshot_run(None, self))


class PlanExecutor:
    """Executes one plan over a service pool.

    Parameters
    ----------
    plan:
        A validated plan.
    query:
        The compiled query the plan implements (predicates, ranking, k).
    pool:
        Simulated-service pool providing invocations, clock, and log.
    inputs:
        Bindings for the query's INPUT variables.
    fetches:
        Fetch factors per chunked-service alias (default 1 each).
    k:
        Result-list cut-off; defaults to the query's ``k``.
    final_semantic_check:
        Re-evaluate the full predicate set on every output combination
        with joint-witness semantics (recommended; see module docstring).
    retry:
        Retry policy for failing service calls (default: no retries, no
        per-call timeout).  Backoff waits advance the pool's virtual
        clock, so retry cost shows up in measured execution time.
    degradation:
        What to do when a service's retries are exhausted:
        ``Degradation.FAIL`` propagates the error; ``Degradation.PARTIAL``
        keeps going — the dead branch contributes nothing, upstream
        combinations flow through without its component, and the result is
        flagged ``incomplete``.
    invocation_cache_size:
        LRU bound on the invocation memo (distinct ``(interface, alias,
        factor, bindings)`` entries kept); ``None`` means unbounded.
        Hits, misses, and evictions are reported via
        :attr:`ExecutionResult.cache_stats`.
    invocation_cache:
        An externally owned :class:`InvocationCache` to use instead of a
        private one — the cross-query sharing hook: executors handed the
        same instance coalesce identical service calls.  When given,
        ``invocation_cache_size`` is ignored (the owner sized the cache).
    tracer:
        Observability context (:class:`~repro.obs.tracer.Tracer`);
        execution emits spans for the plan, each node, each service
        invocation, each chunk fetch (retries included), and join probe
        batches — all on the pool's virtual clock.  ``None`` (the
        default) uses the shared no-op tracer: behaviour, results, and
        the call log are byte-identical to an untraced run.
    """

    def __init__(
        self,
        plan: QueryPlan,
        query: CompiledQuery,
        pool: "ServicePool",
        inputs: Mapping[str, Any],
        fetches: Mapping[str, int] | None = None,
        k: int | None = None,
        final_semantic_check: bool = True,
        retry: RetryPolicy | None = None,
        degradation: Degradation | str = Degradation.FAIL,
        invocation_cache_size: int | None = 1024,
        tracer: "Tracer | NullTracer | None" = None,
        invocation_cache: InvocationCache | None = None,
        join_kernel: str = "binary",
    ) -> None:
        self.plan = plan
        self.query = query
        self.pool = pool
        self.inputs = dict(inputs)
        self.fetches = dict(fetches or {})
        self.k = query.k if k is None else k
        self.final_semantic_check = final_semantic_check
        self.retry = NO_RETRY if retry is None else retry
        self.degradation = Degradation.coerce(degradation)
        self.failed_aliases: set[str] = set()
        self.tracer = coerce_tracer(tracer)
        self._retrier = Retrier(
            policy=self.retry,
            clock=pool.clock,
            log=pool.log,
            rng=random.Random(pool.global_seed ^ 0xB0FF),
            tracer=self.tracer,
        )
        if invocation_cache_size is not None and invocation_cache_size <= 0:
            raise ExecutionError("invocation_cache_size must be positive or None")
        self._invocation_cache = (
            invocation_cache
            if invocation_cache is not None
            else InvocationCache(max_size=invocation_cache_size)
        )
        self.cache_stats = InvocationCacheStats()
        self._pairs_probed = 0
        self._estimator = Estimator(query)
        if join_kernel not in KNOWN_JOIN_KERNELS:
            raise ExecutionError(
                f"unknown join kernel {join_kernel!r}; "
                f"expected one of {KNOWN_JOIN_KERNELS}"
            )
        # Resolve an "auto" request against this plan's merge shapes once;
        # the executor then dispatches on a concrete kernel name.
        self.join_kernel = resolve_plan_join_kernel(plan, join_kernel)

    # -- public entry points -----------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute to completion (drains :meth:`steps`)."""
        stepper = self.steps()
        while True:
            try:
                next(stepper)
            except StopIteration as stop:
                return stop.value

    def steps(self) -> Iterator[StepEvent]:
        """Step-resumable execution: one yield per impending round trip.

        The generator pauses with a :class:`StepEvent` immediately before
        each chunk-granular service round trip; resuming performs the
        round trip (with retries) plus all CPU-only work up to the next
        one.  The :class:`ExecutionResult` is the generator's return
        value (``StopIteration.value``).  Closing the generator early
        unwinds cleanly — open tracer spans finish, but no result is
        produced and the plan is left partially executed.
        """
        outputs: dict[str, list[CompositeTuple]] = {}
        stats: dict[str, NodeRunStats] = {}
        candidates = 0
        tracer = self.tracer

        with tracer.span(
            "plan.execute", nodes=len(self.plan.nodes), k=self.k
        ):
            for node_id in self.plan.topological_order():
                node = self.plan.node(node_id)
                parents = self.plan.parents(node_id)
                before_calls = self.pool.log.total_calls()
                before_busy = self.pool.log.total_latency()
                before_probes = self._pairs_probed

                span = None
                if tracer.enabled:
                    attrs = {"node": node_id}
                    alias = getattr(node, "alias", None)
                    if alias is not None:
                        attrs["alias"] = alias
                    span = tracer.span(
                        f"node.{_SPAN_KINDS[node.kind]}", **attrs
                    )
                try:
                    result, tin, pair_count = yield from self._run_node(
                        node, parents, outputs
                    )
                except BaseException:
                    if span is not None:
                        span.__exit__(*sys.exc_info())
                    raise
                candidates += pair_count
                outputs[node_id] = result
                calls_made = self.pool.log.total_calls() - before_calls
                first_latency = (
                    self.pool.log.records[before_calls].latency
                    if calls_made
                    else 0.0
                )
                stats[node_id] = NodeRunStats(
                    tin=tin,
                    tout=len(result),
                    calls=calls_made,
                    busy_time=self.pool.log.total_latency() - before_busy,
                    first_call_latency=first_latency,
                    pairs_probed=self._pairs_probed - before_probes,
                )
                if span is not None:
                    span.set("tin", tin)
                    span.set("tout", len(result))
                    if calls_made:
                        span.set("calls", calls_made)
                    if stats[node_id].pairs_probed:
                        span.set("pairs_probed", stats[node_id].pairs_probed)
                    span.__exit__(None, None, None)

        execution_time = self._critical_path(stats)
        time_to_screen = self._critical_path(stats, first_call_only=True)
        return ExecutionResult(
            tuples=outputs[self.plan.output_node.node_id],
            log=self.pool.log,
            node_stats=stats,
            execution_time=execution_time,
            time_to_screen=time_to_screen,
            total_candidates=candidates,
            pairs_probed=self._pairs_probed,
            cache_stats=self.cache_stats,
            failed_aliases=tuple(sorted(self.failed_aliases)),
            join_kernel=self.join_kernel,
        )

    # -- node runners ---------------------------------------------------------------

    def _run_node(
        self,
        node,
        parents: tuple[str, ...],
        outputs: dict[str, list[CompositeTuple]],
    ):
        """Dispatch one node (a step generator); returns
        ``(result, tin, candidate_pairs)``."""
        if isinstance(node, InputNode):
            return [CompositeTuple({}, 0.0)], 0, 0
        if isinstance(node, ServiceNode):
            upstream = outputs[parents[0]]
            result = yield from self._run_service(node, upstream)
            return result, len(upstream), 0
        if isinstance(node, SelectionNode):
            upstream = outputs[parents[0]]
            result = [
                comp
                for comp in upstream
                if self._satisfies_evaluable(
                    comp, node.selections, node.join_filters
                )
            ]
            return result, len(upstream), 0
        if isinstance(node, ParallelJoinNode):
            left = outputs[parents[0]]
            right = outputs[parents[1]]
            result, pair_count = self._run_parallel_join(node, left, right)
            return result, len(left) * len(right), pair_count
        if isinstance(node, OutputNode):
            upstream = outputs[parents[0]]
            return self._finalise(upstream), len(upstream), 0
        raise ExecutionError(  # pragma: no cover - future node kinds
            f"cannot execute node kind {node.kind}"
        )

    def _resolve_constant(self, selection: SelectionPredicate) -> Any:
        return selection.resolved_operand(self.inputs)

    def _source_value(self, composite: CompositeTuple, alias: str, path) -> Any:
        """Value piped from an upstream component; nested paths use the
        first group member as witness."""
        component = composite.component(alias)
        if path.is_nested:
            members = component.group_members(path.group or "")
            if not members:
                return None
            return members[0].get(path.name)
        return component.values.get(path.name)

    def _service_call_spec(
        self, node: ServiceNode, composite: CompositeTuple
    ) -> tuple[dict[str, Any], list[SelectionPredicate]] | None:
        """Bindings and server-side constraints for one upstream composite.

        Returns ``None`` when a pipe source never materialised (its
        service was abandoned under partial degradation), leaving the
        call with nothing to bind: the caller keeps the upstream
        combination as-is.  Pure CPU work — shared verbatim by the
        virtual-clock and asyncio backends, which is what keeps both
        issuing byte-identical invocations.
        """
        assert node.interface is not None
        if any(
            provider.kind is not ProviderKind.CONSTANT
            and provider.source_alias not in composite.components
            for provider in node.providers
        ):
            return None
        bindings: dict[str, Any] = {}
        constraints: list[SelectionPredicate] = []
        for provider in node.providers:
            path_key = str(provider.path)
            if provider.kind is ProviderKind.CONSTANT:
                assert provider.selection is not None
                value = self._resolve_constant(provider.selection)
                if provider.selection.comparator is Comparator.EQ:
                    bindings[path_key] = value
                # Every constant provider is also a server-side
                # constraint: the EQ ones are satisfied by echo, but
                # including them makes the generator's rejection
                # sampling enforce the *joint* witness (one member
                # satisfying, e.g., both Country= and Date>).
                constraints.append(
                    SelectionPredicate(
                        provider.selection.attr,
                        provider.selection.comparator,
                        value,
                    )
                )
                bindings.setdefault(path_key, None)
            else:
                assert provider.source_alias is not None
                bindings[path_key] = self._source_value(
                    composite, provider.source_alias, provider.source_path
                )
        # Inputs constrained only by range predicates carry no single
        # value; they are passed as None and the simulated service
        # treats a None binding as "no preference" (no echo), leaving
        # the server-side constraint filter to do the work.
        for path in node.interface.input_paths():
            bindings.setdefault(path, None)
        return bindings, constraints

    def _compose_service_results(
        self,
        node: ServiceNode,
        composite: CompositeTuple,
        tuples: Sequence[Any],
        failed: bool,
        selections: Sequence[SelectionPredicate],
        out: list[CompositeTuple],
    ) -> None:
        """Filter one invocation's tuples and compose survivors into ``out``.

        Pure CPU work shared by both execution backends; appending in
        upstream order keeps the output list byte-identical however the
        fetches themselves were interleaved.
        """
        if failed and not tuples:
            # Best-effort degradation: the branch is down, so the
            # upstream combination flows on without this component.
            out.append(composite)
            return
        alias = node.alias
        for tup in tuples:
            if selections and not tuple_satisfies_selections(
                tup, alias, selections, self.inputs
            ):
                continue
            components = dict(composite.components)
            components[alias] = tup
            score = self.query.ranking.score_composite(components)
            out.append(CompositeTuple(components, score))

    def _run_service(self, node: ServiceNode, upstream: list[CompositeTuple]):
        """Step generator over one service node's invocations."""
        assert node.interface is not None
        factor = max(1, int(self.fetches.get(node.alias, 1)))
        selections = list(self.query.selections_on(node.alias))
        out: list[CompositeTuple] = []

        for composite in upstream:
            spec = self._service_call_spec(node, composite)
            if spec is None:
                out.append(composite)
                continue
            bindings, constraints = spec
            tuples, failed = yield from self._fetch(
                node, bindings, constraints, factor
            )
            self._compose_service_results(
                node, composite, tuples, failed, selections, out
            )
        return out

    def _fetch(
        self,
        node: ServiceNode,
        bindings: Mapping[str, Any],
        constraints: list[SelectionPredicate],
        factor: int,
    ):
        """Invoke (memoised per distinct binding) and draw ``factor`` chunks.

        A step generator: yields one :class:`StepEvent` before each chunk
        round trip.  Returns ``(tuples, failed)``: ``failed`` is True
        when the call was abandoned after exhausting retries under
        ``partial`` degradation (``fail`` mode propagates instead).
        """
        assert node.interface is not None
        tracer = self.tracer
        availability = pipe_join_selectivity(node, self.query, self._estimator)
        key = invocation_cache_key(
            node.interface.name,
            node.alias,
            factor,
            bindings,
            constraints=constraints,
            availability=availability,
        )
        cached = self._invocation_cache.get(key, self.cache_stats)
        if cached is not None:
            if tracer.enabled:
                with tracer.span(
                    "service.invoke",
                    alias=node.alias,
                    interface=node.interface.name,
                    cached=True,
                ) as span:
                    span.set("tuples", len(cached[0]))
            return cached
        invoke_span = (
            tracer.span(
                "service.invoke",
                alias=node.alias,
                interface=node.interface.name,
                cached=False,
                factor=factor,
            )
            if tracer.enabled
            else None
        )
        invocation = self.pool.invoke(
            node.interface.name,
            bindings,
            alias=node.alias,
            constraints=constraints,
            availability=availability,
            call_timeout=self.retry.call_timeout,
        )
        tuples: list = []
        failed = False
        try:
            for index in range(factor):
                yield StepEvent(
                    alias=node.alias,
                    interface=node.interface.name,
                    chunk_index=index,
                )
                chunk = self._fetch_one_chunk(invocation, node.alias, index)
                if chunk is None:
                    break
                tuples.extend(chunk)
        except RetryExhaustedError:
            if self.degradation is Degradation.FAIL:
                if invoke_span is not None:
                    invoke_span.set("error", "RetryExhaustedError")
                    invoke_span.__exit__(None, None, None)
                raise
            failed = True
            self.failed_aliases.add(node.alias)
        if invoke_span is not None:
            invoke_span.set("tuples", len(tuples))
            invoke_span.set("failed", failed)
            invoke_span.__exit__(None, None, None)
        self._invocation_cache.put(key, (tuples, failed), self.cache_stats)
        return tuples, failed

    def _fetch_one_chunk(self, invocation, alias: str, index: int):
        """One (possibly retried) chunk draw, traced when tracing is on."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._retrier.call(invocation.next_chunk)
        with tracer.span("fetch.chunk", alias=alias, chunk=index) as span:
            before = len(self.pool.log.records)
            chunk = self._retrier.call(invocation.next_chunk)
            span.set("round_trips", len(self.pool.log.records) - before)
            span.set("tuples", 0 if chunk is None else len(chunk))
        return chunk

    def _run_parallel_join(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
    ) -> tuple[list[CompositeTuple], int]:
        triangular = node.method.completion is CompletionStrategy.TRIANGULAR
        n_left = max(1, len(left))
        n_right = max(1, len(right))
        keys = self._equi_join_keys(node, left, right)
        if keys is not None:
            if self.join_kernel == "wcoj":
                frogged = self._leapfrog_parallel_join(
                    node, left, right, triangular, n_left, n_right, *keys
                )
                if frogged is not None:
                    return frogged
            hashed = self._hash_parallel_join(
                node, left, right, triangular, n_left, n_right, *keys
            )
            if hashed is not None:
                return hashed
        if self.tracer.enabled:
            with self.tracer.span(
                "join.probe",
                kernel="nested_loop",
                left=len(left),
                right=len(right),
            ) as span:
                out, pair_count = self._nested_parallel_join(
                    node, left, right, triangular, n_left, n_right
                )
                span.set("pairs_probed", pair_count)
                span.set("produced", len(out))
            return out, pair_count
        return self._nested_parallel_join(
            node, left, right, triangular, n_left, n_right
        )

    def _nested_parallel_join(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
        triangular: bool,
        n_left: int,
        n_right: int,
    ) -> tuple[list[CompositeTuple], int]:
        out: list[CompositeTuple] = []
        pair_count = 0
        for i, lc in enumerate(left):
            for j, rc in enumerate(right):
                if triangular and (i / n_left + j / n_right) >= 1.0:
                    # Outside the "most promising" diagonal half.
                    continue
                pair_count += 1
                self._pairs_probed += 1
                shared = set(lc.components) & set(rc.components)
                if any(lc.components[a] != rc.components[a] for a in shared):
                    continue
                components = dict(lc.components)
                components.update(rc.components)
                if node.predicates and not self._satisfies_evaluable(
                    components, (), node.predicates
                ):
                    continue
                score = self.query.ranking.score_composite(components)
                out.append(CompositeTuple(components, score))
        out.sort(key=lambda c: -c.score)
        return out, pair_count

    def _equi_join_keys(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
    ) -> (
        tuple[
            Callable[[CompositeTuple], tuple],
            Callable[[CompositeTuple], tuple],
        ]
        | None
    ):
        """Key extractors when this join is hash-indexable, else ``None``.

        Eligibility: every predicate is a non-nested EQ with one side per
        branch, both branches expose uniform component sets, and no branch
        is degraded (a missing component would make keys non-uniform).
        The key bundles the shared-alias components (shared-alias
        agreement is equality, so equal keys subsume the agreement check)
        with the EQ attribute values from the composite's own side.  EQ
        compares with plain ``==`` and key equality over-approximates the
        predicate set (``None == None`` collides though SQL nulls never
        match), so the predicate stays authoritative on probed pairs.
        """
        if self.failed_aliases or not left or not right or not node.predicates:
            return None
        left_aliases = frozenset(left[0].components)
        right_aliases = frozenset(right[0].components)
        if any(frozenset(c.components) != left_aliases for c in left) or any(
            frozenset(c.components) != right_aliases for c in right
        ):
            return None
        shared = tuple(sorted(left_aliases & right_aliases))
        left_refs = []
        right_refs = []
        for pred in node.predicates:
            if pred.comparator is not Comparator.EQ:
                return None
            if pred.left.path.is_nested or pred.right.path.is_nested:
                return None
            if pred.left.alias in left_aliases and pred.right.alias in right_aliases:
                lref, rref = pred.left, pred.right
            elif pred.right.alias in left_aliases and pred.left.alias in right_aliases:
                lref, rref = pred.right, pred.left
            else:
                return None
            left_refs.append(lref)
            right_refs.append(rref)

        def make_key(refs):
            def key(comp: CompositeTuple) -> tuple:
                components = comp.components
                return (
                    tuple(components[a] for a in shared),
                    tuple(
                        components[ref.alias].values.get(ref.path.name)
                        for ref in refs
                    ),
                )

            return key

        return make_key(left_refs), make_key(right_refs)

    @staticmethod
    def _triangular_cutoff(i: int, n_left: int, n_right: int, limit: int) -> int:
        """First ``j`` outside the diagonal half for row ``i``.

        Bisects the exact float expression the nested loop evaluates —
        ``j / n_right`` is monotone in ``j`` — so the admitted prefix is
        bit-for-bit the nested loop's.
        """
        a = i / n_left
        lo, hi = 0, limit
        while lo < hi:
            mid = (lo + hi) // 2
            if (a + mid / n_right) >= 1.0:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _hash_parallel_join(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
        triangular: bool,
        n_left: int,
        n_right: int,
        left_key: Callable[[CompositeTuple], tuple],
        right_key: Callable[[CompositeTuple], tuple],
    ) -> tuple[list[CompositeTuple], int] | None:
        """Hash-indexed assembly; ``None`` when a key is unhashable.

        Probing rows in order against buckets kept in ``j`` order emits
        matches in the nested loop's (i, j) order, so the final stable
        sort reproduces its output exactly.  ``pair_count`` keeps the
        nested loop's logical meaning (tile area inside the completion
        region), independent of how many pairs were actually probed.
        """
        try:
            index: dict[tuple, list[tuple[int, CompositeTuple]]] = {}
            for j, rc in enumerate(right):
                index.setdefault(right_key(rc), []).append((j, rc))
            probes = [(i, index.get(left_key(lc))) for i, lc in enumerate(left)]
        except (TypeError, KeyError):
            return None
        probes_before = self._pairs_probed
        span = (
            self.tracer.span(
                "join.probe",
                kernel="hash_indexed",
                left=len(left),
                right=len(right),
            )
            if self.tracer.enabled
            else None
        )
        out: list[CompositeTuple] = []
        pair_count = 0
        for i, bucket in probes:
            cutoff = (
                self._triangular_cutoff(i, n_left, n_right, len(right))
                if triangular
                else len(right)
            )
            pair_count += cutoff
            if not bucket:
                continue
            lc = left[i]
            for j, rc in bucket:
                if j >= cutoff:
                    break
                self._pairs_probed += 1
                components = dict(lc.components)
                components.update(rc.components)
                if node.predicates and not self._satisfies_evaluable(
                    components, (), node.predicates
                ):
                    continue
                score = self.query.ranking.score_composite(components)
                out.append(CompositeTuple(components, score))
        out.sort(key=lambda c: -c.score)
        if span is not None:
            span.set("pairs_probed", self._pairs_probed - probes_before)
            span.set("produced", len(out))
            span.__exit__(None, None, None)
        return out, pair_count

    @staticmethod
    def _leapfrog_intersect(
        left_ids: list[int], right_ids: list[int]
    ) -> tuple[set[int], int]:
        """Leapfrog intersection of two sorted distinct id lists.

        The classic alternating gallop: whichever side is behind seeks
        (binary search) to the other's key.  Returns the common ids and
        the number of seeks performed.
        """
        common: set[int] = set()
        seeks = 0
        ia = ib = 0
        while ia < len(left_ids) and ib < len(right_ids):
            ka, kb = left_ids[ia], right_ids[ib]
            if ka == kb:
                common.add(ka)
                ia += 1
                ib += 1
            elif ka < kb:
                seeks += 1
                ia = bisect_left(left_ids, kb, ia + 1)
            else:
                seeks += 1
                ib = bisect_left(right_ids, ka, ib + 1)
        return common, seeks

    def _leapfrog_parallel_join(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
        triangular: bool,
        n_left: int,
        n_right: int,
        left_key: Callable[[CompositeTuple], tuple],
        right_key: Callable[[CompositeTuple], tuple],
    ) -> tuple[list[CompositeTuple], int] | None:
        """Leapfrog (wcoj) assembly; ``None`` when a key is unhashable.

        The multi-predicate key vector is dictionary-encoded (each
        distinct vector gets a dense id, a standard LFTJ ingredient —
        encoding keeps key *equality* authoritative while giving the
        trie a totally ordered domain), both sides' distinct ids are
        intersected with leapfrog seeks, and only rows whose id survives
        the intersection enter pair assembly.  Emission then walks
        survivors in the probe order of the hash kernel — (i, j) with
        the same triangular cutoff and the same stable sort — so output
        and ``pair_count`` are byte-identical across kernels; what
        changes is the work profile (seek-bounded intersection instead
        of per-row probing) reported on the ``join.probe`` span.
        """
        try:
            ids: dict[tuple, int] = {}
            buckets: dict[int, list[tuple[int, CompositeTuple]]] = {}
            for j, rc in enumerate(right):
                kid = ids.setdefault(right_key(rc), len(ids))
                buckets.setdefault(kid, []).append((j, rc))
            left_rows: list[tuple[int, int | None]] = []
            left_id_set: set[int] = set()
            for i, lc in enumerate(left):
                kid = ids.get(left_key(lc))
                left_rows.append((i, kid))
                if kid is not None:
                    left_id_set.add(kid)
        except (TypeError, KeyError):
            return None
        common, seeks = self._leapfrog_intersect(
            sorted(left_id_set), sorted(buckets)
        )
        probes_before = self._pairs_probed
        span = (
            self.tracer.span(
                "join.probe",
                kernel="leapfrog",
                left=len(left),
                right=len(right),
            )
            if self.tracer.enabled
            else None
        )
        out: list[CompositeTuple] = []
        pair_count = 0
        for i, kid in left_rows:
            cutoff = (
                self._triangular_cutoff(i, n_left, n_right, len(right))
                if triangular
                else len(right)
            )
            pair_count += cutoff
            if kid not in common:
                continue
            lc = left[i]
            for j, rc in buckets[kid]:
                if j >= cutoff:
                    break
                self._pairs_probed += 1
                components = dict(lc.components)
                components.update(rc.components)
                if node.predicates and not self._satisfies_evaluable(
                    components, (), node.predicates
                ):
                    continue
                score = self.query.ranking.score_composite(components)
                out.append(CompositeTuple(components, score))
        out.sort(key=lambda c: -c.score)
        if span is not None:
            span.set("pairs_probed", self._pairs_probed - probes_before)
            span.set("distinct_keys", len(ids))
            span.set("intersection", len(common))
            span.set("seeks", seeks)
            span.set("produced", len(out))
            span.__exit__(None, None, None)
        return out, pair_count

    def _satisfies_evaluable(
        self,
        composite: CompositeTuple | Mapping[str, Any],
        selections: Sequence[SelectionPredicate],
        joins: Sequence[JoinPredicate],
    ) -> bool:
        """Joint-witness check restricted to evaluable predicates.

        On a complete composite this is exactly :func:`satisfies`.  Under
        partial degradation a composite may be missing failed aliases'
        components; predicates over an absent alias are not evaluable and
        are skipped — the surviving combination is best-effort by
        construction and flagged via ``failed_aliases``.
        """
        components = (
            composite.components
            if isinstance(composite, CompositeTuple)
            else composite
        )
        if self.failed_aliases:
            present = set(components)
            selections = [s for s in selections if s.attr.alias in present]
            joins = [
                j
                for j in joins
                if j.left.alias in present and j.right.alias in present
            ]
        return satisfies(
            components, selections=selections, joins=joins, inputs=self.inputs
        )

    def _finalise(self, upstream: list[CompositeTuple]) -> list[CompositeTuple]:
        result = upstream
        if self.final_semantic_check:
            result = [
                comp
                for comp in result
                if self._satisfies_evaluable(
                    comp, self.query.selections, self.query.joins
                )
            ]
        result = sorted(result, key=lambda c: -c.score)
        if self.k is not None:
            result = result[: self.k]
        return result

    # -- measurement -------------------------------------------------------------------

    def _critical_path(
        self, stats: Mapping[str, NodeRunStats], first_call_only: bool = False
    ) -> float:
        """Measured critical path: busy time (execution time) or first-call
        latencies only (time to screen)."""
        finish: dict[str, float] = {}
        for node_id in self.plan.topological_order():
            parents = self.plan.parents(node_id)
            start = max((finish[p] for p in parents), default=0.0)
            node_stats = stats[node_id]
            step = (
                node_stats.first_call_latency
                if first_call_only
                else node_stats.busy_time
            )
            finish[node_id] = start + step
        return finish[self.plan.output_node.node_id]


def execute_plan(
    plan: QueryPlan,
    query: CompiledQuery,
    pool: "ServicePool",
    inputs: Mapping[str, Any],
    fetches: Mapping[str, int] | None = None,
    k: int | None = None,
    retry: RetryPolicy | None = None,
    degradation: Degradation | str = Degradation.FAIL,
    invocation_cache_size: int | None = 1024,
    tracer: "Tracer | NullTracer | None" = None,
    invocation_cache: InvocationCache | None = None,
    join_kernel: str = "binary",
) -> ExecutionResult:
    """Convenience wrapper: build a :class:`PlanExecutor` and run it."""
    return PlanExecutor(
        plan=plan,
        query=query,
        pool=pool,
        inputs=inputs,
        fetches=fetches,
        k=k,
        retry=retry,
        degradation=degradation,
        invocation_cache_size=invocation_cache_size,
        tracer=tracer,
        invocation_cache=invocation_cache,
        join_kernel=join_kernel,
    ).run()
