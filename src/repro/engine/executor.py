"""Dataflow execution of fully instantiated query plans (Section 3.2).

The :class:`PlanExecutor` runs a validated plan against a
:class:`~repro.services.simulated.ServicePool`: it walks the DAG in
topological order, materialising each node's composite-tuple output —

* the **input node** emits the single user input tuple;
* a **service node** invokes its interface once per distinct input
  binding (invocations are memoised, so serial compositions that pipe no
  attributes cost one call batch), draws its fetch factor's worth of
  chunks, filters results through the alias's selection predicates with
  joint-witness semantics, and composes survivors with the upstream
  composite;
* a **selection node** filters composites through its residual predicates;
* a **parallel-join node** matches the two branch outputs — composites
  must agree on shared aliases (tuples stemming from the same upstream
  row) and satisfy the join predicates; a triangular completion strategy
  restricts the candidate pairs to the most promising half of the rank
  Cartesian product, mirroring the annotation model;
* the **output node** applies the final joint-witness semantic check over
  the *entire* predicate set (the Section 3.1 semantics is defined over
  one witness mapping for all predicates, which staged evaluation alone
  cannot guarantee), sorts by the global ranking function, and returns the
  best ``k`` combinations.

Execution is measured on virtual time: every service call advances the
pool's clock and appends to its log; the executor derives per-node busy
times and a critical-path *measured execution time* comparable with the
optimizer's estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.annotate import pipe_join_selectivity
from repro.engine.events import CallLog
from repro.errors import ExecutionError
from repro.joins.spec import CompletionStrategy
from repro.model.tuples import CompositeTuple, RankingFunction
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import QueryPlan
from repro.query.ast import Comparator, SelectionPredicate
from repro.query.compile import CompiledQuery
from repro.query.feasibility import ProviderKind
from repro.query.predicates import satisfies, tuple_satisfies_selections
from repro.stats.estimate import Estimator

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.services.simulated import ServicePool

__all__ = ["NodeRunStats", "ExecutionResult", "PlanExecutor", "execute_plan"]


@dataclass
class NodeRunStats:
    """Actual (not estimated) tuple flow and call counts of one node."""

    tin: int = 0
    tout: int = 0
    calls: int = 0
    busy_time: float = 0.0
    #: Latency of the node's first request-response (0 for non-services).
    first_call_latency: float = 0.0


@dataclass
class ExecutionResult:
    """Outcome of one plan execution."""

    tuples: list[CompositeTuple]
    log: CallLog
    node_stats: dict[str, NodeRunStats]
    execution_time: float
    #: Measured time until a first complete combination could exist: the
    #: critical path of per-node *first-call* latencies (compare with the
    #: TimeToScreenMetric estimate).
    time_to_screen: float = 0.0
    total_candidates: int = 0

    @property
    def total_calls(self) -> int:
        return self.log.total_calls()

    def calls_by_alias(self) -> dict[str, int]:
        return self.log.calls_by_alias()


class PlanExecutor:
    """Executes one plan over a service pool.

    Parameters
    ----------
    plan:
        A validated plan.
    query:
        The compiled query the plan implements (predicates, ranking, k).
    pool:
        Simulated-service pool providing invocations, clock, and log.
    inputs:
        Bindings for the query's INPUT variables.
    fetches:
        Fetch factors per chunked-service alias (default 1 each).
    k:
        Result-list cut-off; defaults to the query's ``k``.
    final_semantic_check:
        Re-evaluate the full predicate set on every output combination
        with joint-witness semantics (recommended; see module docstring).
    """

    def __init__(
        self,
        plan: QueryPlan,
        query: CompiledQuery,
        pool: "ServicePool",
        inputs: Mapping[str, Any],
        fetches: Mapping[str, int] | None = None,
        k: int | None = None,
        final_semantic_check: bool = True,
    ) -> None:
        self.plan = plan
        self.query = query
        self.pool = pool
        self.inputs = dict(inputs)
        self.fetches = dict(fetches or {})
        self.k = query.k if k is None else k
        self.final_semantic_check = final_semantic_check
        self._invocation_cache: dict[tuple, list] = {}
        self._estimator = Estimator(query)

    # -- public entry point ------------------------------------------------------

    def run(self) -> ExecutionResult:
        outputs: dict[str, list[CompositeTuple]] = {}
        stats: dict[str, NodeRunStats] = {}
        candidates = 0

        for node_id in self.plan.topological_order():
            node = self.plan.node(node_id)
            parents = self.plan.parents(node_id)
            before_calls = self.pool.log.total_calls()
            before_busy = self.pool.log.total_latency()

            if isinstance(node, InputNode):
                result = [CompositeTuple({}, 0.0)]
                tin = 0
            elif isinstance(node, ServiceNode):
                upstream = outputs[parents[0]]
                tin = len(upstream)
                result = self._run_service(node, upstream)
            elif isinstance(node, SelectionNode):
                upstream = outputs[parents[0]]
                tin = len(upstream)
                result = [
                    comp
                    for comp in upstream
                    if satisfies(
                        comp,
                        selections=node.selections,
                        joins=node.join_filters,
                        inputs=self.inputs,
                    )
                ]
            elif isinstance(node, ParallelJoinNode):
                left = outputs[parents[0]]
                right = outputs[parents[1]]
                tin = len(left) * len(right)
                result, pair_count = self._run_parallel_join(node, left, right)
                candidates += pair_count
            elif isinstance(node, OutputNode):
                upstream = outputs[parents[0]]
                tin = len(upstream)
                result = self._finalise(upstream)
            else:  # pragma: no cover - future node kinds
                raise ExecutionError(f"cannot execute node kind {node.kind}")

            outputs[node_id] = result
            calls_made = self.pool.log.total_calls() - before_calls
            first_latency = (
                self.pool.log.records[before_calls].latency if calls_made else 0.0
            )
            stats[node_id] = NodeRunStats(
                tin=tin,
                tout=len(result),
                calls=calls_made,
                busy_time=self.pool.log.total_latency() - before_busy,
                first_call_latency=first_latency,
            )

        execution_time = self._critical_path(stats)
        time_to_screen = self._critical_path(stats, first_call_only=True)
        return ExecutionResult(
            tuples=outputs[self.plan.output_node.node_id],
            log=self.pool.log,
            node_stats=stats,
            execution_time=execution_time,
            time_to_screen=time_to_screen,
            total_candidates=candidates,
        )

    # -- node runners ---------------------------------------------------------------

    def _resolve_constant(self, selection: SelectionPredicate) -> Any:
        return selection.resolved_operand(self.inputs)

    def _source_value(self, composite: CompositeTuple, alias: str, path) -> Any:
        """Value piped from an upstream component; nested paths use the
        first group member as witness."""
        component = composite.component(alias)
        if path.is_nested:
            members = component.group_members(path.group or "")
            if not members:
                return None
            return members[0].get(path.name)
        return component.values.get(path.name)

    def _run_service(
        self, node: ServiceNode, upstream: list[CompositeTuple]
    ) -> list[CompositeTuple]:
        assert node.interface is not None
        alias = node.alias
        factor = max(1, int(self.fetches.get(alias, 1)))
        selections = list(self.query.selections_on(alias))
        out: list[CompositeTuple] = []

        for composite in upstream:
            bindings: dict[str, Any] = {}
            constraints: list[SelectionPredicate] = []
            for provider in node.providers:
                path_key = str(provider.path)
                if provider.kind is ProviderKind.CONSTANT:
                    assert provider.selection is not None
                    value = self._resolve_constant(provider.selection)
                    if provider.selection.comparator is Comparator.EQ:
                        bindings[path_key] = value
                    # Every constant provider is also a server-side
                    # constraint: the EQ ones are satisfied by echo, but
                    # including them makes the generator's rejection
                    # sampling enforce the *joint* witness (one member
                    # satisfying, e.g., both Country= and Date>).
                    constraints.append(
                        SelectionPredicate(
                            provider.selection.attr,
                            provider.selection.comparator,
                            value,
                        )
                    )
                    bindings.setdefault(path_key, None)
                else:
                    assert provider.source_alias is not None
                    bindings[path_key] = self._source_value(
                        composite, provider.source_alias, provider.source_path
                    )
            # Inputs constrained only by range predicates carry no single
            # value; they are passed as None and the simulated service
            # treats a None binding as "no preference" (no echo), leaving
            # the server-side constraint filter to do the work.
            for path in node.interface.input_paths():
                bindings.setdefault(path, None)

            tuples = self._fetch(node, bindings, constraints, factor)
            for tup in tuples:
                if selections and not tuple_satisfies_selections(
                    tup, alias, selections, self.inputs
                ):
                    continue
                components = dict(composite.components)
                components[alias] = tup
                score = self.query.ranking.score_composite(components)
                out.append(CompositeTuple(components, score))
        return out

    def _fetch(
        self,
        node: ServiceNode,
        bindings: Mapping[str, Any],
        constraints: list[SelectionPredicate],
        factor: int,
    ) -> list:
        """Invoke (memoised per distinct binding) and draw ``factor`` chunks."""
        assert node.interface is not None
        key = (
            node.interface.name,
            node.alias,
            factor,
            tuple(sorted((k, repr(v)) for k, v in bindings.items())),
        )
        if key in self._invocation_cache:
            return self._invocation_cache[key]
        invocation = self.pool.invoke(
            node.interface.name,
            bindings,
            alias=node.alias,
            constraints=constraints,
            availability=pipe_join_selectivity(node, self.query, self._estimator),
        )
        tuples: list = []
        for _ in range(factor):
            chunk = invocation.next_chunk()
            if chunk is None:
                break
            tuples.extend(chunk)
        self._invocation_cache[key] = tuples
        return tuples

    def _run_parallel_join(
        self,
        node: ParallelJoinNode,
        left: list[CompositeTuple],
        right: list[CompositeTuple],
    ) -> tuple[list[CompositeTuple], int]:
        triangular = node.method.completion is CompletionStrategy.TRIANGULAR
        n_left = max(1, len(left))
        n_right = max(1, len(right))
        out: list[CompositeTuple] = []
        pair_count = 0
        for i, lc in enumerate(left):
            for j, rc in enumerate(right):
                if triangular and (i / n_left + j / n_right) >= 1.0:
                    # Outside the "most promising" diagonal half.
                    continue
                pair_count += 1
                shared = set(lc.components) & set(rc.components)
                if any(lc.components[a] != rc.components[a] for a in shared):
                    continue
                components = dict(lc.components)
                components.update(rc.components)
                if node.predicates and not satisfies(
                    components, joins=node.predicates, inputs=self.inputs
                ):
                    continue
                score = self.query.ranking.score_composite(components)
                out.append(CompositeTuple(components, score))
        out.sort(key=lambda c: -c.score)
        return out, pair_count

    def _finalise(self, upstream: list[CompositeTuple]) -> list[CompositeTuple]:
        result = upstream
        if self.final_semantic_check:
            result = [
                comp
                for comp in result
                if satisfies(
                    comp,
                    selections=self.query.selections,
                    joins=self.query.joins,
                    inputs=self.inputs,
                )
            ]
        result = sorted(result, key=lambda c: -c.score)
        if self.k is not None:
            result = result[: self.k]
        return result

    # -- measurement -------------------------------------------------------------------

    def _critical_path(
        self, stats: Mapping[str, NodeRunStats], first_call_only: bool = False
    ) -> float:
        """Measured critical path: busy time (execution time) or first-call
        latencies only (time to screen)."""
        finish: dict[str, float] = {}
        for node_id in self.plan.topological_order():
            parents = self.plan.parents(node_id)
            start = max((finish[p] for p in parents), default=0.0)
            node_stats = stats[node_id]
            step = (
                node_stats.first_call_latency
                if first_call_only
                else node_stats.busy_time
            )
            finish[node_id] = start + step
        return finish[self.plan.output_node.node_id]


def execute_plan(
    plan: QueryPlan,
    query: CompiledQuery,
    pool: "ServicePool",
    inputs: Mapping[str, Any],
    fetches: Mapping[str, int] | None = None,
    k: int | None = None,
) -> ExecutionResult:
    """Convenience wrapper: build a :class:`PlanExecutor` and run it."""
    return PlanExecutor(
        plan=plan, query=query, pool=pool, inputs=inputs, fetches=fetches, k=k
    ).run()
