"""Retry policies over virtual time.

Remote search services fail: transiently (a dropped connection survives a
re-issue), slowly (a response that arrives after the caller gave up), or
permanently (an outage).  The chapter's cost model charges per
request-response round trip, so a production-honest simulator must charge
for the failed attempts *and* the waits between them.  This module
provides:

* :class:`RetryPolicy` — max attempts, exponential backoff with
  deterministic jitter, and an optional per-call timeout;
* :class:`Retrier` — a small harness executing one fetch under a policy.
  Every backoff wait advances the shared :class:`~repro.engine.events.VirtualClock`
  and is amended onto the failed call's
  :class:`~repro.engine.events.CallRecord`, so retry latency enters
  measured execution time exactly like request-response latency does;
* :class:`Degradation` — what an executor does once retries are
  exhausted: propagate (``fail``) or return best-effort partial results
  (``partial``).

Determinism: backoff jitter is drawn from the retrier's own seeded RNG,
and injected faults are drawn from per-invocation RNGs derived from the
global seed — the same seed replays the same failures, retries, and
waits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, TypeVar

from repro.engine.events import CallLog, VirtualClock
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.errors import (
    ExecutionError,
    RetryExhaustedError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)

__all__ = ["RetryPolicy", "Retrier", "Degradation", "NO_RETRY"]

T = TypeVar("T")


class Degradation(Enum):
    """Executor behaviour once a service's retries are exhausted."""

    #: Propagate the failure: the whole execution aborts.
    FAIL = "fail"
    #: Degrade: the failed branch contributes nothing and the output is
    #: flagged incomplete, but execution finishes.
    PARTIAL = "partial"

    @classmethod
    def coerce(cls, value: "Degradation | str") -> "Degradation":
        if isinstance(value, Degradation):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ExecutionError(
                f"unknown degradation mode {value!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from None


@dataclass(frozen=True)
class RetryPolicy:
    """How a caller re-issues failed service calls.

    A call is attempted up to ``max_attempts`` times.  Before retry ``n``
    (1-based), the caller waits ``base_backoff * backoff_multiplier**(n-1)``
    virtual seconds, jittered uniformly by ``±jitter_fraction``.
    ``call_timeout`` bounds how long one attempt may take: a simulated
    call whose latency draw exceeds it costs exactly ``call_timeout``
    (the caller stops waiting at the deadline) and raises
    :class:`~repro.errors.ServiceTimeoutError`.
    """

    max_attempts: int = 3
    base_backoff: float = 0.5
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.1
    call_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError("max_attempts must be at least 1")
        if self.base_backoff < 0:
            raise ExecutionError("base_backoff must be non-negative")
        if self.backoff_multiplier <= 0:
            raise ExecutionError("backoff_multiplier must be positive")
        if not 0 <= self.jitter_fraction < 1:
            raise ExecutionError("jitter_fraction must be in [0, 1)")
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ExecutionError("call_timeout must be positive")

    def backoff(self, retry_number: int, rng: random.Random | None = None) -> float:
        """Wait before retry ``retry_number`` (1-based), in virtual seconds."""
        if retry_number < 1:
            raise ExecutionError("retry_number is 1-based")
        wait = self.base_backoff * self.backoff_multiplier ** (retry_number - 1)
        if rng is not None and self.jitter_fraction and wait:
            wait *= 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(0.0, wait)


#: A policy that never retries and never waits — the pre-fault-model
#: behaviour, used when callers pass no policy.
NO_RETRY = RetryPolicy(max_attempts=1, base_backoff=0.0, jitter_fraction=0.0)


@dataclass
class Retrier:
    """Executes fetches under a :class:`RetryPolicy` on virtual time.

    ``clock`` and ``log`` are the shared execution context (typically the
    service pool's): backoff waits advance the clock and are amended onto
    the failed attempt's call record.  ``rng`` seeds the backoff jitter;
    construct it from the global seed for reproducible schedules.
    """

    policy: RetryPolicy = NO_RETRY
    clock: VirtualClock | None = None
    log: CallLog | None = None
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    #: Total re-attempts issued across all calls.
    retries: int = 0
    #: Calls abandoned after exhausting the policy.
    gave_up: int = 0
    #: Observability context; backoff waits become ``retry.backoff`` spans
    #: on virtual time (the default no-op tracer drops them for free).
    tracer: "Tracer | NullTracer" = NULL_TRACER

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` until it succeeds or the policy is exhausted.

        Raises :class:`~repro.errors.RetryExhaustedError` (chained from
        the last fault) when every attempt failed, or immediately on a
        permanent outage — retrying a dead service only burns time.
        """
        attempt = 1
        while True:
            logged_before = len(self.log) if self.log is not None else 0
            try:
                return fn()
            except (ServiceTimeoutError, ServiceUnavailableError) as exc:
                service = exc.service
                permanent = getattr(exc, "permanent", False)
                if permanent or attempt >= self.policy.max_attempts:
                    self.gave_up += 1
                    raise RetryExhaustedError(
                        f"service {service!r} failed after {attempt} "
                        f"attempt{'s' if attempt != 1 else ''}: {exc}",
                        service=service,
                        attempts=attempt,
                    ) from exc
                wait = self.policy.backoff(attempt, self.rng)
                with self.tracer.span(
                    "retry.backoff",
                    service=service,
                    attempt=attempt,
                    wait=wait,
                ):
                    if wait and self.clock is not None:
                        self.clock.advance(wait)
                if wait and self.log is not None:
                    self._amend_failed_attempt(logged_before, service, wait)
                self.retries += 1
                attempt += 1

    def _amend_failed_attempt(
        self, logged_before: int, service: str | None, wait: float
    ) -> None:
        """Amend the backoff wait onto the failed attempt's own record.

        A fault can fire *before* the attempt appends its record (the
        invocation machinery raised early), and with a shared log another
        caller may have appended in between — blindly amending the last
        record would then charge the wait to an unrelated call.  Only a
        record this attempt appended, matching the failing service and a
        failed outcome, is amended; otherwise the wait advances the clock
        but is attributed to no call.
        """
        log = self.log
        assert log is not None
        for index in range(len(log.records) - 1, logged_before - 1, -1):
            record = log.records[index]
            if record.failed and (service is None or record.service == service):
                log.amend_at(index, backoff_wait=wait)
                return
