"""Asyncio real-execution backend beside the virtual-clock simulator.

Every plan in this repo historically ran as a single-threaded
discrete-event simulation: one generator, one virtual clock, service
latencies added up serially.  That is the right *oracle* — deterministic,
seed-reproducible, exactly the paper's cost model — but it can never
show wall-clock throughput, because nothing ever overlaps.

This module adds the second backend: :class:`AsyncPlanExecutor` runs the
*same* optimized plan graph on an asyncio event loop with genuinely
concurrent service calls —

* every plan node becomes a task awaiting its parents, so independent
  branches (e.g. Movie and Theatre in Fig. 10) overlap;
* within a service node, the per-binding invocations fan out
  concurrently, bounded by a **per-service connection-pool semaphore**
  (a connection is held for the whole round trip);
* each simulated round trip costs ``latency * time_scale`` seconds of
  real ``await asyncio.sleep`` — the latency draw itself still comes
  from the seeded simulator, so the data, faults, and per-call costs are
  bit-for-bit those of the virtual backend;
* per-call timeouts and retries reuse the same :class:`RetryPolicy`,
  with backoff waits slept on wall time and amended onto the failing
  attempt's own call record (by index — with concurrent callers "the
  last record" is somebody else's);
* spans go through the existing :mod:`repro.obs` tracer via
  :meth:`~repro.obs.tracer.Tracer.record_span`, on a wall-clock axis
  rescaled back to virtual seconds so traces from both backends are
  comparable.

**Why equivalence holds.**  All CPU work — binding construction,
selection filtering, join kernels, the final joint-witness check — is
delegated to the same :class:`~repro.engine.executor.PlanExecutor`
methods the virtual backend runs, and results are composed in upstream
order regardless of fetch completion order.  The simulated substrate
derives result tuples, latency draws, and fault draws from
``(global seed, interface, bindings)`` via per-invocation RNGs, never
from clock state or call order; chunks within one invocation stay
sequential, so each invocation consumes its RNG streams identically in
both backends.  Hence both backends return digest-identical result
lists — the virtual clock stays the planner/test oracle, the asyncio
runner supplies real throughput (see DESIGN.md, "Execution backends").

Duplicate invocations issued concurrently are **single-flighted**
through :class:`AsyncExecutionContext`: the first caller fetches, later
callers await the same task, so the asyncio backend issues the same
round trips the memoised sequential walk would.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.annotate import pipe_join_selectivity
from repro.engine.executor import (
    _SPAN_KINDS,
    ExecutionResult,
    InvocationCache,
    NodeRunStats,
    PlanExecutor,
    invocation_cache_key,
)
from repro.engine.retry import Degradation, RetryPolicy
from repro.errors import (
    ExecutionError,
    RetryExhaustedError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.model.tuples import CompositeTuple
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)

__all__ = [
    "AsyncExecutionContext",
    "AsyncPlanExecutor",
    "run_plan_async",
    "BACKENDS",
]

#: The execution backends a caller may select.
BACKENDS = ("virtual", "asyncio")


@dataclass
class AsyncExecutionContext:
    """Shared wall-clock execution context: pools, pacing, single-flight.

    One context may be shared by many :class:`AsyncPlanExecutor`\\ s
    running on the same event loop (the async serving path does), in
    which case the per-service connection pools bound *global*
    concurrency per interface and identical concurrent invocations
    coalesce across executors.

    Parameters
    ----------
    time_scale:
        Wall seconds per virtual second: each simulated round trip
        sleeps ``latency * time_scale``.  ``0.0`` sleeps nothing but
        still yields to the loop, preserving cooperative interleaving —
        the right setting for equivalence tests that only check results.
    default_connections:
        Connection-pool size for interfaces absent from
        ``connection_limits``.
    connection_limits:
        Interface name -> max in-flight round trips to that service.
    invocation_cache:
        Optional cross-executor invocation memo (the serving hook); an
        executor built with this context and no cache of its own adopts
        it.
    """

    time_scale: float = 0.001
    default_connections: int = 8
    connection_limits: Mapping[str, int] = field(default_factory=dict)
    invocation_cache: InvocationCache | None = None
    _semaphores: dict[str, asyncio.Semaphore] = field(
        default_factory=dict, repr=False
    )
    _inflight: dict[tuple, "asyncio.Future"] = field(
        default_factory=dict, repr=False
    )
    _loop: Any = field(default=None, repr=False)
    #: Shared wall-clock zero for the span axis.  Set when a loop first
    #: attaches, so every executor sharing this context (the async
    #: serving path runs many) stamps spans on one common timeline
    #: instead of each request restarting at t=0.
    wall_epoch: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.time_scale < 0:
            raise ExecutionError("time_scale cannot be negative")
        if self.default_connections < 1:
            raise ExecutionError("default_connections must be at least 1")
        for name, limit in self.connection_limits.items():
            if limit < 1:
                raise ExecutionError(
                    f"connection limit for {name!r} must be at least 1"
                )

    def attach_loop(self) -> None:
        """Bind to the running loop; a new loop drops stale pool state.

        Semaphores and in-flight futures belong to one event loop.  A
        context reused across ``asyncio.run`` calls (a session issuing
        ``more`` twice) would otherwise await primitives bound to a
        closed loop.
        """
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._semaphores.clear()
            self._inflight.clear()
            self.wall_epoch = time.perf_counter()

    def semaphore(self, interface: str) -> asyncio.Semaphore:
        """The connection-pool semaphore for ``interface`` (lazily built)."""
        semaphore = self._semaphores.get(interface)
        if semaphore is None:
            limit = self.connection_limits.get(
                interface, self.default_connections
            )
            semaphore = self._semaphores[interface] = asyncio.Semaphore(limit)
        return semaphore

    async def sleep(self, virtual_seconds: float) -> None:
        """Spend ``virtual_seconds`` of simulated latency on wall time.

        Always awaits (even at scale 0) so concurrent tasks interleave
        the way real I/O waits would.
        """
        await asyncio.sleep(virtual_seconds * self.time_scale)


class AsyncPlanExecutor:
    """Executes one plan concurrently on an asyncio event loop.

    Construction mirrors :class:`~repro.engine.executor.PlanExecutor`
    (same plan/query/pool/options); ``context`` adds the wall-clock
    knobs.  All CPU work is delegated to an inner ``PlanExecutor`` so
    the two backends cannot drift apart: this class only owns *when*
    fetches happen, never *what* they produce.
    """

    def __init__(
        self,
        plan,
        query,
        pool,
        inputs: Mapping[str, Any],
        fetches: Mapping[str, int] | None = None,
        k: int | None = None,
        final_semantic_check: bool = True,
        retry: RetryPolicy | None = None,
        degradation: Degradation | str = Degradation.FAIL,
        invocation_cache_size: int | None = 1024,
        tracer=None,
        invocation_cache: InvocationCache | None = None,
        context: AsyncExecutionContext | None = None,
        join_kernel: str = "binary",
    ) -> None:
        self.context = context or AsyncExecutionContext()
        if invocation_cache is None:
            invocation_cache = self.context.invocation_cache
        self._sync = PlanExecutor(
            plan=plan,
            query=query,
            pool=pool,
            inputs=inputs,
            fetches=fetches,
            k=k,
            final_semantic_check=final_semantic_check,
            retry=retry,
            degradation=degradation,
            invocation_cache_size=invocation_cache_size,
            tracer=tracer,
            invocation_cache=invocation_cache,
            join_kernel=join_kernel,
        )
        self._backoff_rng = random.Random(pool.global_seed ^ 0xA51C)
        #: Total re-attempts issued across all calls (wall-time retries).
        self.retries = 0
        #: Calls abandoned after exhausting the policy.
        self.gave_up = 0
        self._wall_start = 0.0

    # -- properties mirroring the sync executor ------------------------------

    @property
    def plan(self):
        return self._sync.plan

    @property
    def pool(self):
        return self._sync.pool

    @property
    def tracer(self):
        return self._sync.tracer

    @property
    def k(self) -> int | None:
        return self._sync.k

    @k.setter
    def k(self, value: int | None) -> None:
        self._sync.k = value

    def _now(self) -> float:
        """Elapsed wall time rescaled to virtual seconds (span axis).

        Measured from the context's shared ``wall_epoch`` when one is
        set (executors sharing a context share a span timeline); a
        standalone run falls back to its own start.
        """
        epoch = self.context.wall_epoch or self._wall_start
        elapsed = time.perf_counter() - epoch
        scale = self.context.time_scale
        return elapsed / scale if scale > 0 else elapsed

    # -- entry points --------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute on a fresh event loop (synchronous convenience)."""
        return asyncio.run(self.execute())

    async def execute(self) -> ExecutionResult:
        """Execute the plan; node tasks overlap wherever the DAG allows."""
        self.context.attach_loop()
        self._wall_start = time.perf_counter()
        sync = self._sync
        outputs: dict[str, list[CompositeTuple]] = {}
        stats: dict[str, NodeRunStats] = {}
        tasks: dict[str, asyncio.Task] = {}
        for node_id in sync.plan.topological_order():
            tasks[node_id] = asyncio.ensure_future(
                self._run_node(node_id, tasks, outputs, stats)
            )
        try:
            pair_counts = await asyncio.gather(*tasks.values())
        except BaseException:
            for task in tasks.values():
                task.cancel()
            await asyncio.gather(*tasks.values(), return_exceptions=True)
            raise
        wall = time.perf_counter() - self._wall_start
        if sync.tracer.enabled:
            sync.tracer.record_span(
                "plan.execute",
                start=0.0,
                end=self._now(),
                nodes=len(sync.plan.nodes),
                k=sync.k,
                backend="asyncio",
            )
        return ExecutionResult(
            tuples=outputs[sync.plan.output_node.node_id],
            log=sync.pool.log,
            node_stats=stats,
            execution_time=sync._critical_path(stats),
            time_to_screen=sync._critical_path(stats, first_call_only=True),
            total_candidates=sum(pair_counts),
            pairs_probed=sync._pairs_probed,
            cache_stats=sync.cache_stats,
            failed_aliases=tuple(sorted(sync.failed_aliases)),
            backend="asyncio",
            wall_time=wall,
            join_kernel=sync.join_kernel,
        )

    # -- node tasks ----------------------------------------------------------

    async def _run_node(
        self,
        node_id: str,
        tasks: dict[str, asyncio.Task],
        outputs: dict[str, list[CompositeTuple]],
        stats: dict[str, NodeRunStats],
    ) -> int:
        sync = self._sync
        node = sync.plan.node(node_id)
        parents = sync.plan.parents(node_id)
        for parent in parents:
            await tasks[parent]
        started = self._now()
        acc = NodeRunStats()
        pairs = 0
        if isinstance(node, InputNode):
            result: list[CompositeTuple] = [CompositeTuple({}, 0.0)]
        elif isinstance(node, ServiceNode):
            upstream = outputs[parents[0]]
            acc.tin = len(upstream)
            result = await self._run_service(node, upstream, acc)
        elif isinstance(node, SelectionNode):
            upstream = outputs[parents[0]]
            acc.tin = len(upstream)
            result = [
                comp
                for comp in upstream
                if sync._satisfies_evaluable(
                    comp, node.selections, node.join_filters
                )
            ]
        elif isinstance(node, ParallelJoinNode):
            left = outputs[parents[0]]
            right = outputs[parents[1]]
            acc.tin = len(left) * len(right)
            probes_before = sync._pairs_probed
            # Join kernels are pure CPU (no awaits): the probe-counter
            # delta cannot interleave with another node's.
            result, pairs = sync._run_parallel_join(node, left, right)
            acc.pairs_probed = sync._pairs_probed - probes_before
        elif isinstance(node, OutputNode):
            upstream = outputs[parents[0]]
            acc.tin = len(upstream)
            result = sync._finalise(upstream)
        else:  # pragma: no cover - future node kinds
            raise ExecutionError(f"cannot execute node kind {node.kind}")
        acc.tout = len(result)
        outputs[node_id] = result
        stats[node_id] = acc
        if sync.tracer.enabled:
            attrs: dict[str, Any] = {
                "node": node_id,
                "tin": acc.tin,
                "tout": acc.tout,
            }
            alias = getattr(node, "alias", None)
            if alias is not None:
                attrs["alias"] = alias
            if acc.calls:
                attrs["calls"] = acc.calls
            if acc.pairs_probed:
                attrs["pairs_probed"] = acc.pairs_probed
            sync.tracer.record_span(
                f"node.{_SPAN_KINDS[node.kind]}",
                start=started,
                end=self._now(),
                **attrs,
            )
        return pairs

    # -- service fetches -----------------------------------------------------

    async def _run_service(
        self,
        node: ServiceNode,
        upstream: list[CompositeTuple],
        acc: NodeRunStats,
    ) -> list[CompositeTuple]:
        """Fan the node's invocations out concurrently; compose in order."""
        sync = self._sync
        factor = max(1, int(sync.fetches.get(node.alias, 1)))
        selections = list(sync.query.selections_on(node.alias))
        specs = [sync._service_call_spec(node, comp) for comp in upstream]
        fetches: list[asyncio.Task | None] = []
        for spec in specs:
            if spec is None:
                fetches.append(None)
                continue
            bindings, constraints = spec
            fetches.append(
                asyncio.ensure_future(
                    self._fetch(node, bindings, constraints, factor, acc)
                )
            )
        live = [task for task in fetches if task is not None]
        try:
            await asyncio.gather(*live)
        except BaseException:
            for task in live:
                task.cancel()
            await asyncio.gather(*live, return_exceptions=True)
            raise
        out: list[CompositeTuple] = []
        for composite, task in zip(upstream, fetches):
            if task is None:
                # Pipe source never materialised (partial degradation):
                # the upstream combination flows through unchanged.
                out.append(composite)
                continue
            tuples, failed = task.result()
            sync._compose_service_results(
                node, composite, tuples, failed, selections, out
            )
        return out

    async def _fetch(
        self,
        node: ServiceNode,
        bindings: Mapping[str, Any],
        constraints: list,
        factor: int,
        acc: NodeRunStats,
    ) -> tuple[list, bool]:
        """Memoised, single-flighted fetch of one invocation's chunks."""
        sync = self._sync
        assert node.interface is not None
        availability = pipe_join_selectivity(node, sync.query, sync._estimator)
        key = invocation_cache_key(
            node.interface.name,
            node.alias,
            factor,
            bindings,
            constraints=constraints,
            availability=availability,
        )
        pending = self.context._inflight.get(key)
        if pending is not None:
            # An identical invocation is in flight: join it.  Mirrors the
            # sequential walk, where the second caller would hit the memo.
            sync._invocation_cache.stats.hits += 1
            sync.cache_stats.hits += 1
            if sync.tracer.enabled:
                wait_start = self._now()
                joined = await asyncio.shield(pending)
                sync.tracer.record_span(
                    "service.invoke",
                    start=wait_start,
                    end=self._now(),
                    alias=node.alias,
                    interface=node.interface.name,
                    cached=True,
                    coalesced=True,
                    tuples=len(joined[0]),
                )
                return joined
            return await asyncio.shield(pending)
        cached = sync._invocation_cache.get(key, sync.cache_stats)
        if cached is not None:
            if sync.tracer.enabled:
                now = self._now()
                sync.tracer.record_span(
                    "service.invoke",
                    start=now,
                    end=now,
                    alias=node.alias,
                    interface=node.interface.name,
                    cached=True,
                    tuples=len(cached[0]),
                )
            return cached
        task = asyncio.ensure_future(
            self._fetch_fresh(
                node, bindings, constraints, factor, key, availability, acc
            )
        )
        self.context._inflight[key] = task
        try:
            return await task
        finally:
            if self.context._inflight.get(key) is task:
                self.context._inflight.pop(key, None)

    async def _fetch_fresh(
        self,
        node: ServiceNode,
        bindings: Mapping[str, Any],
        constraints: list,
        factor: int,
        key: tuple,
        availability: float,
        acc: NodeRunStats,
    ) -> tuple[list, bool]:
        sync = self._sync
        assert node.interface is not None
        started = self._now()
        invocation = sync.pool.invoke(
            node.interface.name,
            bindings,
            alias=node.alias,
            constraints=constraints,
            availability=availability,
            call_timeout=sync.retry.call_timeout,
        )
        tuples: list = []
        failed = False
        try:
            # Chunks stay sequential within one invocation — chunk i+1
            # requests the page after chunk i, and the invocation's RNG
            # streams must be consumed in the virtual backend's order.
            for index in range(factor):
                chunk = await self._fetch_one_chunk(invocation, node, acc)
                if chunk is None:
                    break
                tuples.extend(chunk)
        except RetryExhaustedError:
            if sync.degradation is Degradation.FAIL:
                raise
            failed = True
            sync.failed_aliases.add(node.alias)
        sync._invocation_cache.put(key, (tuples, failed), sync.cache_stats)
        if sync.tracer.enabled:
            sync.tracer.record_span(
                "service.invoke",
                start=started,
                end=self._now(),
                alias=node.alias,
                interface=node.interface.name,
                cached=False,
                factor=factor,
                tuples=len(tuples),
                failed=failed,
            )
        return tuples, failed

    async def _fetch_one_chunk(
        self, invocation, node: ServiceNode, acc: NodeRunStats
    ):
        """One chunk draw under the retry policy, backoff on wall time."""
        sync = self._sync
        policy = sync.retry
        assert node.interface is not None
        attempt = 1
        while True:
            failed_index = -1
            try:
                return await self._round_trip(invocation, node, acc)
            except (ServiceTimeoutError, ServiceUnavailableError) as exc:
                failed_index = getattr(exc, "_log_index", -1)
                service = exc.service
                permanent = getattr(exc, "permanent", False)
                if permanent or attempt >= policy.max_attempts:
                    self.gave_up += 1
                    raise RetryExhaustedError(
                        f"service {service!r} failed after {attempt} "
                        f"attempt{'s' if attempt != 1 else ''}: {exc}",
                        service=service,
                        attempts=attempt,
                    ) from exc
                wait = policy.backoff(attempt, self._backoff_rng)
                if wait:
                    log = sync.pool.log
                    if 0 <= failed_index < len(log.records):
                        record = log.records[failed_index]
                        # Amend only our own failed attempt — by index,
                        # verified against the failing service (see the
                        # Retrier bugfix): concurrent callers interleave
                        # appends, so positional guesses misattribute.
                        if record.failed and record.service == service:
                            log.amend_at(failed_index, backoff_wait=wait)
                    acc.busy_time += wait
                    if sync.tracer.enabled:
                        span_start = self._now()
                        await self.context.sleep(wait)
                        sync.tracer.record_span(
                            "retry.backoff",
                            start=span_start,
                            end=self._now(),
                            service=service,
                            attempt=attempt,
                            wait=wait,
                        )
                    else:
                        await self.context.sleep(wait)
                self.retries += 1
                attempt += 1

    async def _round_trip(self, invocation, node: ServiceNode, acc: NodeRunStats):
        """One request-response: holds a pooled connection for its latency."""
        sync = self._sync
        assert node.interface is not None
        semaphore = self.context.semaphore(node.interface.name)
        if sync.tracer.enabled and semaphore.locked():
            # The pool is saturated: attribute the connection wait so the
            # timeline shows queueing at the service, not "slow" calls.
            wait_start = self._now()
            await semaphore.acquire()
            sync.tracer.record_span(
                "pool.wait",
                start=wait_start,
                end=self._now(),
                alias=node.alias,
                interface=node.interface.name,
            )
        else:
            await semaphore.acquire()
        try:
            return await self._round_trip_locked(invocation, node, acc)
        finally:
            semaphore.release()

    async def _round_trip_locked(
        self, invocation, node: ServiceNode, acc: NodeRunStats
    ):
        """The round trip proper, with the pooled connection already held."""
        sync = self._sync
        log = sync.pool.log
        before = len(log.records)
        try:
            chunk = invocation.next_chunk()
        except (ServiceTimeoutError, ServiceUnavailableError) as exc:
            latency = self._account(before, acc)
            # Remember which record was ours so the retry loop can
            # amend the backoff wait onto it, not onto whatever a
            # concurrent task logged afterwards.
            exc._log_index = (
                len(log.records) - 1 if len(log.records) > before else -1
            )
            await self.context.sleep(latency)
            raise
        latency = self._account(before, acc)
        await self.context.sleep(latency)
        return chunk

    def _account(self, before: int, acc: NodeRunStats) -> float:
        """Fold records appended by one call into the node's stats."""
        records = self._sync.pool.log.records
        latency = 0.0
        for record in records[before:]:
            if acc.calls == 0:
                acc.first_call_latency = record.latency
            acc.calls += 1
            acc.busy_time += record.latency
            latency += record.latency
        return latency


def run_plan_async(
    plan,
    query,
    pool,
    inputs: Mapping[str, Any],
    fetches: Mapping[str, int] | None = None,
    k: int | None = None,
    *,
    retry: RetryPolicy | None = None,
    degradation: Degradation | str = Degradation.FAIL,
    invocation_cache_size: int | None = 1024,
    tracer=None,
    invocation_cache: InvocationCache | None = None,
    context: AsyncExecutionContext | None = None,
    time_scale: float = 0.001,
    max_connections: int = 8,
    connection_limits: Mapping[str, int] | None = None,
    join_kernel: str = "binary",
) -> ExecutionResult:
    """Convenience wrapper: run one plan on the asyncio backend.

    Builds an :class:`AsyncPlanExecutor` (and, unless ``context`` is
    given, a private :class:`AsyncExecutionContext` from the keyword
    knobs) and drives it with ``asyncio.run``.  The virtual-clock twin
    is :func:`~repro.engine.executor.execute_plan`.
    """
    if context is None:
        context = AsyncExecutionContext(
            time_scale=time_scale,
            default_connections=max_connections,
            connection_limits=dict(connection_limits or {}),
        )
    executor = AsyncPlanExecutor(
        plan=plan,
        query=query,
        pool=pool,
        inputs=inputs,
        fetches=fetches,
        k=k,
        retry=retry,
        degradation=degradation,
        invocation_cache_size=invocation_cache_size,
        tracer=tracer,
        invocation_cache=invocation_cache,
        context=context,
        join_kernel=join_kernel,
    )
    return executor.run()
