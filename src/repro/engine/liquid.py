"""Liquid-query sessions: the user interactions Section 3.2 describes.

"A user can either be satisfied with the first k answers, or ask for more
results of the same query, or change the choice of input keywords and
resubmit the same query, or turn to a different query...  Ranking
functions ... can also be altered dynamically through the query
interface."  (Details are deferred to the book's Chapter 13; this module
implements the interaction loop as an extension feature.)

A :class:`LiquidQuerySession` wraps an optimized plan and a service pool
and supports:

* :meth:`run` — execute and materialise the current result list;
* :meth:`more` — raise every fetch factor and re-execute, returning a
  strictly larger (or equal, when services are exhausted) result list;
  invocation memoisation in the executor means already-fetched chunks are
  regenerated identically, so earlier results remain stable;
* :meth:`rerank` — change the ranking-function weights *without* new
  service calls: cached combinations are re-scored and re-ordered;
* :meth:`resubmit` — change INPUT bindings and re-execute (fresh
  invocations, same plan);
* a running :attr:`total_calls` account across the whole interaction.

Every call-issuing interaction also has a **step-generator twin**
(:meth:`run_steps`, :meth:`more_steps`, :meth:`resubmit_steps`) built on
:meth:`~repro.engine.executor.PlanExecutor.steps`: the generator yields a
:class:`~repro.engine.executor.StepEvent` before each service round trip
and returns the presented result list.  The synchronous methods simply
drain their twin, so a serving scheduler (:mod:`repro.serve`) can
interleave session interactions with other in-flight queries while the
interactive behaviour stays byte-identical.

``executor_options`` forwards extra keyword arguments to every
:class:`~repro.engine.executor.PlanExecutor` the session builds — the
hook for retry policies, degradation modes, a shared cross-query
invocation cache, or a tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core.optimizer import PlanCandidate
from repro.engine.async_runner import (
    BACKENDS,
    AsyncExecutionContext,
    AsyncPlanExecutor,
)
from repro.engine.executor import ExecutionResult, PlanExecutor
from repro.errors import ExecutionError
from repro.model.tuples import CompositeTuple, RankingFunction
from repro.query.compile import CompiledQuery

__all__ = ["LiquidQuerySession"]


def _drain(stepper: Iterator):
    """Run a step generator to completion; return its result."""
    while True:
        try:
            next(stepper)
        except StopIteration as stop:
            return stop.value


@dataclass
class LiquidQuerySession:
    """Interactive result-list management over one optimized plan.

    Parameters
    ----------
    candidate:
        The optimizer's chosen plan (fetch vector included).
    query:
        The compiled query it implements.
    pool:
        Simulated-service pool; its seed fixes the session's data.
    inputs:
        Initial INPUT variable bindings.
    growth:
        Multiplicative fetch-factor step used by :meth:`more`.
    executor_options:
        Extra keyword arguments for every executor this session builds
        (``retry``, ``degradation``, ``invocation_cache``, ``tracer``,
        ``invocation_cache_size``).
    backend:
        ``"virtual"`` (default) executes on the discrete-event simulator
        — deterministic, step-resumable, the oracle.  ``"asyncio"`` runs
        the same plan with genuinely concurrent service calls; results
        are digest-identical (see :mod:`repro.engine.async_runner`), but
        the step-generator twins are unavailable — concurrency replaces
        cooperative stepping.
    async_context:
        Wall-clock knobs (and shared connection pools / single-flight
        state) for the asyncio backend; a private default-configured
        context is built when omitted.
    """

    candidate: PlanCandidate
    query: CompiledQuery
    pool: Any  # ServicePool (kept untyped to avoid an import cycle)
    inputs: dict[str, Any]
    growth: int = 2
    executor_options: dict[str, Any] = field(default_factory=dict)
    backend: str = "virtual"
    async_context: AsyncExecutionContext | None = None
    _fetches: dict[str, int] = field(init=False)
    _ranking: RankingFunction = field(init=False)
    _last: ExecutionResult | None = field(init=False, default=None)
    _raw: list[CompositeTuple] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.growth < 2:
            raise ExecutionError("growth must be at least 2")
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.backend == "asyncio" and self.async_context is None:
            self.async_context = AsyncExecutionContext()
        self._fetches = dict(self.candidate.fetch_vector())
        self._ranking = self.query.ranking

    # -- execution ------------------------------------------------------------

    def _make_executor(self) -> PlanExecutor:
        executor = PlanExecutor(
            plan=self.candidate.plan,
            query=self.query,
            pool=self.pool,
            inputs=self.inputs,
            fetches=self._fetches,
            k=None,
            **self.executor_options,
        )
        # Materialise the *raw* (untruncated) list so re-ranking and
        # "more" can reuse it; presentation applies k.
        executor.k = 10**9
        return executor

    def _make_async_executor(self) -> AsyncPlanExecutor:
        executor = AsyncPlanExecutor(
            plan=self.candidate.plan,
            query=self.query,
            pool=self.pool,
            inputs=self.inputs,
            fetches=self._fetches,
            k=None,
            context=self.async_context,
            **self.executor_options,
        )
        executor.k = 10**9
        return executor

    def _absorb(self, result: ExecutionResult) -> ExecutionResult:
        self._raw = list(result.tuples)
        self._last = result
        return result

    def execute_steps(self):
        """Step generator for one (re-)execution; absorbs the result.

        Virtual backend only: stepping pauses a query between round
        trips, which is meaningless once round trips genuinely overlap.
        """
        if self.backend != "virtual":
            raise ExecutionError(
                "step generators require the virtual backend; the "
                "asyncio backend interleaves via the event loop instead"
            )
        result = yield from self._make_executor().steps()
        return self._absorb(result)

    async def execute_async(self) -> ExecutionResult:
        """Awaitable (re-)execution on the asyncio backend; absorbs the
        result.  Usable from a running event loop regardless of the
        session's default ``backend``."""
        return self._absorb(await self._make_async_executor().execute())

    def _execute(self) -> ExecutionResult:
        if self.backend == "asyncio":
            return self._absorb(self._make_async_executor().run())
        return _drain(self.execute_steps())

    def run(self, k: int | None = None) -> list[CompositeTuple]:
        """Execute (or re-present) the current query; returns the top-k."""
        if self.backend == "asyncio":
            if self._last is None:
                self._execute()
            return self._present(k)
        return _drain(self.run_steps(k))

    def run_steps(self, k: int | None = None):
        """Step-generator twin of :meth:`run` (virtual backend only)."""
        if self._last is None:
            yield from self.execute_steps()
        return self._present(k)

    async def run_async(self, k: int | None = None) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`run` for a running event loop."""
        if self._last is None:
            await self.execute_async()
        return self._present(k)

    def _present(self, k: int | None) -> list[CompositeTuple]:
        limit = self.query.k if k is None else k
        rescored = [
            CompositeTuple(c.components, self._ranking.score_composite(c.components))
            for c in self._raw
        ]
        rescored.sort(key=lambda c: -c.score)
        return rescored[:limit]

    # -- interactions --------------------------------------------------------------

    def more(self, k: int | None = None) -> list[CompositeTuple]:
        """Ask for more results: grow every fetch factor and re-execute.

        "A plan execution can be continued, after an explicit user
        request, thereby producing more tuples."
        """
        if self.backend == "asyncio":
            before = self._grow_fetches()
            self._execute()
            return self._present_more(before, k)
        return _drain(self.more_steps(k))

    def more_steps(self, k: int | None = None):
        """Step-generator twin of :meth:`more` (virtual backend only)."""
        before = self._grow_fetches()
        yield from self.execute_steps()
        return self._present_more(before, k)

    async def more_async(self, k: int | None = None) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`more` for a running event loop."""
        before = self._grow_fetches()
        await self.execute_async()
        return self._present_more(before, k)

    def _grow_fetches(self) -> int:
        """Grow every fetch factor; returns the pre-growth result count."""
        self._fetches = {
            alias: factor * self.growth for alias, factor in self._fetches.items()
        }
        return len(self._raw)

    def _present_more(self, before: int, k: int | None) -> list[CompositeTuple]:
        if len(self._raw) < before:  # pragma: no cover - defensive
            raise ExecutionError("result list shrank while fetching more")
        limit = self.query.k if k is None else k
        return self._present(max(limit, before + 1) if self._raw else limit)

    def rerank(
        self, weights: Mapping[str, float], k: int | None = None
    ) -> list[CompositeTuple]:
        """Alter the ranking function dynamically — no new service calls.

        "Ranking functions may be ... altered dynamically through the
        query interface, yielding to changes in the query execution
        strategy.  Only ranking functions defined at query definition
        time can be used for query optimization" — so the plan is kept
        and only presentation changes.
        """
        for alias in weights:
            if alias not in self.query.aliases:
                raise ExecutionError(f"unknown alias {alias!r} in ranking weights")
        calls_before = self.pool.log.total_calls()
        self._ranking = RankingFunction(dict(weights))
        if self._last is None:
            self._execute()
            calls_before = None  # first run necessarily calls services
        result = self._present(k)
        if calls_before is not None:
            assert self.pool.log.total_calls() == calls_before
        return result

    def resubmit(
        self, inputs: Mapping[str, Any], k: int | None = None
    ) -> list[CompositeTuple]:
        """Change the INPUT keywords and re-execute the same plan."""
        if self.backend == "asyncio":
            self._reset_inputs(inputs)
            self._execute()
            return self._present(k)
        return _drain(self.resubmit_steps(inputs, k))

    def resubmit_steps(self, inputs: Mapping[str, Any], k: int | None = None):
        """Step-generator twin of :meth:`resubmit` (virtual backend only)."""
        self._reset_inputs(inputs)
        yield from self.execute_steps()
        return self._present(k)

    async def resubmit_async(
        self, inputs: Mapping[str, Any], k: int | None = None
    ) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`resubmit` for a running event loop."""
        self._reset_inputs(inputs)
        await self.execute_async()
        return self._present(k)

    def _reset_inputs(self, inputs: Mapping[str, Any]) -> None:
        self.inputs = dict(inputs)
        self._fetches = dict(self.candidate.fetch_vector())

    # -- accounting -------------------------------------------------------------------

    @property
    def total_calls(self) -> int:
        """Service calls issued across the whole interaction so far."""
        return self.pool.log.total_calls()

    @property
    def fetch_factors(self) -> dict[str, int]:
        return dict(self._fetches)

    @property
    def result_count(self) -> int:
        return len(self._raw)
