"""Liquid-query sessions: the user interactions Section 3.2 describes.

"A user can either be satisfied with the first k answers, or ask for more
results of the same query, or change the choice of input keywords and
resubmit the same query, or turn to a different query...  Ranking
functions ... can also be altered dynamically through the query
interface."  (Details are deferred to the book's Chapter 13; this module
implements the interaction loop as an extension feature.)

A :class:`LiquidQuerySession` wraps an optimized plan and a service pool
and supports:

* :meth:`run` — execute and materialise the current result list;
* :meth:`more` — raise every fetch factor and re-execute, returning a
  strictly larger (or equal, when services are exhausted) result list;
  invocation memoisation in the executor means already-fetched chunks are
  regenerated identically, so earlier results remain stable;
* :meth:`rerank` — change the ranking-function weights *without* new
  service calls: cached combinations are re-scored and re-ordered;
* :meth:`resubmit` — change INPUT bindings and re-execute (fresh
  invocations, same plan);
* a running :attr:`total_calls` account across the whole interaction.

Every call-issuing interaction also has a **step-generator twin**
(:meth:`run_steps`, :meth:`more_steps`, :meth:`resubmit_steps`) built on
:meth:`~repro.engine.executor.PlanExecutor.steps`: the generator yields a
:class:`~repro.engine.executor.StepEvent` before each service round trip
and returns the presented result list.  The synchronous methods simply
drain their twin, so a serving scheduler (:mod:`repro.serve`) can
interleave session interactions with other in-flight queries while the
interactive behaviour stays byte-identical.

``executor_options`` forwards extra keyword arguments to every
:class:`~repro.engine.executor.PlanExecutor` the session builds — the
hook for retry policies, degradation modes, a shared cross-query
invocation cache, or a tracer.

**Interaction journal.**  Every interaction (``run`` / ``more`` /
``rerank`` / ``resubmit``, on either backend) is recorded in an
append-only journal of ``{kind, args, steps, failed}`` entries, and the
interaction currently executing — if any — is exposed as
:attr:`inflight_interaction` with the number of step-generator yields it
has consumed so far.  Because the simulated substrate derives *all*
nondeterminism (data, latencies, fault draws, retry jitter) from seeds
and bindings, a fresh session replaying the journal reconstructs the
exact mid-plan state — chunk cursors, retry counters, virtual-clock
offset and all.  That replay is the durability subsystem's restore path
(:mod:`repro.durability.checkpoint`); :meth:`checkpoint` and
:meth:`restore` are thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.core.optimizer import PlanCandidate
from repro.engine.async_runner import (
    BACKENDS,
    AsyncExecutionContext,
    AsyncPlanExecutor,
)
from repro.engine.executor import ExecutionResult, PlanExecutor
from repro.errors import ExecutionError
from repro.model.tuples import CompositeTuple, RankingFunction
from repro.query.compile import CompiledQuery

__all__ = ["LiquidQuerySession"]


def _drain(stepper: Iterator):
    """Run a step generator to completion; return its result."""
    while True:
        try:
            next(stepper)
        except StopIteration as stop:
            return stop.value


@dataclass
class LiquidQuerySession:
    """Interactive result-list management over one optimized plan.

    Parameters
    ----------
    candidate:
        The optimizer's chosen plan (fetch vector included).
    query:
        The compiled query it implements.
    pool:
        Simulated-service pool; its seed fixes the session's data.
    inputs:
        Initial INPUT variable bindings.
    growth:
        Multiplicative fetch-factor step used by :meth:`more`.
    executor_options:
        Extra keyword arguments for every executor this session builds
        (``retry``, ``degradation``, ``invocation_cache``, ``tracer``,
        ``invocation_cache_size``).
    backend:
        ``"virtual"`` (default) executes on the discrete-event simulator
        — deterministic, step-resumable, the oracle.  ``"asyncio"`` runs
        the same plan with genuinely concurrent service calls; results
        are digest-identical (see :mod:`repro.engine.async_runner`), but
        the step-generator twins are unavailable — concurrency replaces
        cooperative stepping.
    async_context:
        Wall-clock knobs (and shared connection pools / single-flight
        state) for the asyncio backend; a private default-configured
        context is built when omitted.
    """

    candidate: PlanCandidate
    query: CompiledQuery
    pool: Any  # ServicePool (kept untyped to avoid an import cycle)
    inputs: dict[str, Any]
    growth: int = 2
    executor_options: dict[str, Any] = field(default_factory=dict)
    backend: str = "virtual"
    async_context: AsyncExecutionContext | None = None
    _fetches: dict[str, int] = field(init=False)
    _ranking: RankingFunction = field(init=False)
    _last: ExecutionResult | None = field(init=False, default=None)
    _raw: list[CompositeTuple] = field(init=False, default_factory=list)
    _initial_inputs: dict[str, Any] = field(init=False)
    _journal: list[dict[str, Any]] = field(init=False, default_factory=list)
    _inflight: dict[str, Any] | None = field(init=False, default=None)
    #: Set by :func:`repro.durability.checkpoint.restore_session` when the
    #: checkpoint captured a mid-interaction stepper: the re-suspended
    #: generator, ready to be driven to completion.
    pending_stepper: Any = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.growth < 2:
            raise ExecutionError("growth must be at least 2")
        if self.backend not in BACKENDS:
            raise ExecutionError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.backend == "asyncio" and self.async_context is None:
            self.async_context = AsyncExecutionContext()
        self._fetches = dict(self.candidate.fetch_vector())
        self._ranking = self.query.ranking
        self._initial_inputs = dict(self.inputs)

    # -- interaction journal --------------------------------------------------

    def _journaled_steps(self, entry: dict[str, Any], gen):
        """Wrap an interaction's step generator with journal bookkeeping.

        ``entry["steps"]`` counts the yields already consumed, so a
        checkpoint taken while the wrapper is suspended knows exactly how
        far to re-drive the interaction on restore.  A failing
        interaction is journaled with ``failed=True`` (its replay raises
        the same error); an *abandoned* one (``close()``) is not
        journaled at all — it never completed and absorbed no results.
        """
        entry.setdefault("steps", 0)
        entry["failed"] = False
        self._inflight = entry
        while True:
            try:
                step = next(gen)
            except StopIteration as stop:
                self._inflight = None
                self._journal.append(entry)
                return stop.value
            except BaseException:
                entry["failed"] = True
                self._inflight = None
                self._journal.append(entry)
                raise
            entry["steps"] += 1
            try:
                yield step
            except GeneratorExit:
                self._inflight = None
                gen.close()
                raise

    def _journaled_call(self, entry: dict[str, Any], fn):
        """Journal a non-stepping interaction (asyncio execute, rerank)."""
        entry["steps"] = 0
        entry["failed"] = False
        self._inflight = entry
        try:
            result = fn()
        except BaseException:
            entry["failed"] = True
            self._inflight = None
            self._journal.append(entry)
            raise
        self._inflight = None
        self._journal.append(entry)
        return result

    @property
    def interaction_journal(self) -> tuple[dict[str, Any], ...]:
        """Completed interactions, oldest first (entries are copies)."""
        return tuple(dict(entry) for entry in self._journal)

    @property
    def inflight_interaction(self) -> dict[str, Any] | None:
        """The interaction currently executing, or ``None`` (a copy)."""
        return dict(self._inflight) if self._inflight is not None else None

    @property
    def initial_inputs(self) -> dict[str, Any]:
        """The INPUT bindings the session was constructed with."""
        return dict(self._initial_inputs)

    def checkpoint(
        self,
        *,
        schema: str,
        query_text: str,
        template: str | None = None,
        metric: str = "execution-time",
    ) -> dict:
        """Serialize this session's state as a versioned checkpoint payload.

        ``schema`` names the registry (resolvable via
        :data:`repro.durability.checkpoint.REGISTRY_FACTORIES`) and
        ``query_text`` is the original query string (a compiled query
        keeps no source text), so the restore path can rebuild pool and
        plan.  See :func:`repro.durability.checkpoint.checkpoint_session`.
        """
        from repro.durability.checkpoint import checkpoint_session

        return checkpoint_session(
            self,
            schema=schema,
            query_text=query_text,
            template=template,
            metric=metric,
        )

    @classmethod
    def restore(cls, payload: dict, **options) -> "LiquidQuerySession":
        """Rebuild a session from a checkpoint payload by journal replay.

        Returns the restored session; a mid-interaction stepper — when
        the checkpoint captured one — is re-suspended at the same step
        and available as ``restored.pending_stepper`` (see
        :func:`repro.durability.checkpoint.restore_session`).
        """
        from repro.durability.checkpoint import restore_session

        return restore_session(payload, **options)

    # -- execution ------------------------------------------------------------

    def _options_with_kernel(self) -> dict[str, Any]:
        """Executor options, defaulting the join kernel from the plan.

        The optimizer resolved ``join_kernel`` per candidate (an
        ``auto`` request became concrete at plan time); an explicit
        option still wins so tests and ad-hoc callers can override.
        """
        options = dict(self.executor_options)
        options.setdefault(
            "join_kernel", getattr(self.candidate, "join_kernel", "binary")
        )
        return options

    def _make_executor(self) -> PlanExecutor:
        executor = PlanExecutor(
            plan=self.candidate.plan,
            query=self.query,
            pool=self.pool,
            inputs=self.inputs,
            fetches=self._fetches,
            k=None,
            **self._options_with_kernel(),
        )
        # Materialise the *raw* (untruncated) list so re-ranking and
        # "more" can reuse it; presentation applies k.
        executor.k = 10**9
        return executor

    def _make_async_executor(self) -> AsyncPlanExecutor:
        executor = AsyncPlanExecutor(
            plan=self.candidate.plan,
            query=self.query,
            pool=self.pool,
            inputs=self.inputs,
            fetches=self._fetches,
            k=None,
            context=self.async_context,
            **self._options_with_kernel(),
        )
        executor.k = 10**9
        return executor

    def _absorb(self, result: ExecutionResult) -> ExecutionResult:
        self._raw = list(result.tuples)
        self._last = result
        return result

    def execute_steps(self):
        """Step generator for one (re-)execution; absorbs the result.

        Virtual backend only: stepping pauses a query between round
        trips, which is meaningless once round trips genuinely overlap.
        """
        if self.backend != "virtual":
            raise ExecutionError(
                "step generators require the virtual backend; the "
                "asyncio backend interleaves via the event loop instead"
            )
        result = yield from self._make_executor().steps()
        return self._absorb(result)

    async def execute_async(self) -> ExecutionResult:
        """Awaitable (re-)execution on the asyncio backend; absorbs the
        result.  Usable from a running event loop regardless of the
        session's default ``backend``."""
        return self._absorb(await self._make_async_executor().execute())

    def _execute(self) -> ExecutionResult:
        if self.backend == "asyncio":
            return self._absorb(self._make_async_executor().run())
        return _drain(self.execute_steps())

    async def _journaled_await(self, entry: dict[str, Any], thunk):
        """Async twin of :meth:`_journaled_call` (``thunk`` is awaited)."""
        entry["steps"] = 0
        entry["failed"] = False
        self._inflight = entry
        try:
            result = await thunk()
        except BaseException:
            entry["failed"] = True
            self._inflight = None
            self._journal.append(entry)
            raise
        self._inflight = None
        self._journal.append(entry)
        return result

    def run(self, k: int | None = None) -> list[CompositeTuple]:
        """Execute (or re-present) the current query; returns the top-k."""
        if self.backend == "asyncio":

            def go() -> list[CompositeTuple]:
                if self._last is None:
                    self._execute()
                return self._present(k)

            return self._journaled_call({"kind": "run", "k": k}, go)
        return _drain(self.run_steps(k))

    def run_steps(self, k: int | None = None):
        """Step-generator twin of :meth:`run` (virtual backend only)."""
        return self._journaled_steps({"kind": "run", "k": k}, self._run_steps_impl(k))

    def _run_steps_impl(self, k: int | None):
        if self._last is None:
            yield from self.execute_steps()
        return self._present(k)

    async def run_async(self, k: int | None = None) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`run` for a running event loop."""

        async def go() -> list[CompositeTuple]:
            if self._last is None:
                await self.execute_async()
            return self._present(k)

        return await self._journaled_await({"kind": "run", "k": k}, go)

    def _present(self, k: int | None) -> list[CompositeTuple]:
        limit = self.query.k if k is None else k
        rescored = [
            CompositeTuple(c.components, self._ranking.score_composite(c.components))
            for c in self._raw
        ]
        rescored.sort(key=lambda c: -c.score)
        return rescored[:limit]

    # -- interactions --------------------------------------------------------------

    def more(self, k: int | None = None) -> list[CompositeTuple]:
        """Ask for more results: grow every fetch factor and re-execute.

        "A plan execution can be continued, after an explicit user
        request, thereby producing more tuples."
        """
        if self.backend == "asyncio":

            def go() -> list[CompositeTuple]:
                before = self._grow_fetches()
                self._execute()
                return self._present_more(before, k)

            return self._journaled_call({"kind": "more", "k": k}, go)
        return _drain(self.more_steps(k))

    def more_steps(self, k: int | None = None):
        """Step-generator twin of :meth:`more` (virtual backend only)."""
        return self._journaled_steps(
            {"kind": "more", "k": k}, self._more_steps_impl(k)
        )

    def _more_steps_impl(self, k: int | None):
        before = self._grow_fetches()
        yield from self.execute_steps()
        return self._present_more(before, k)

    async def more_async(self, k: int | None = None) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`more` for a running event loop."""

        async def go() -> list[CompositeTuple]:
            before = self._grow_fetches()
            await self.execute_async()
            return self._present_more(before, k)

        return await self._journaled_await({"kind": "more", "k": k}, go)

    def _grow_fetches(self) -> int:
        """Grow every fetch factor; returns the pre-growth result count."""
        self._fetches = {
            alias: factor * self.growth for alias, factor in self._fetches.items()
        }
        return len(self._raw)

    def _present_more(self, before: int, k: int | None) -> list[CompositeTuple]:
        if len(self._raw) < before:  # pragma: no cover - defensive
            raise ExecutionError("result list shrank while fetching more")
        limit = self.query.k if k is None else k
        return self._present(max(limit, before + 1) if self._raw else limit)

    def rerank(
        self, weights: Mapping[str, float], k: int | None = None
    ) -> list[CompositeTuple]:
        """Alter the ranking function dynamically — no new service calls.

        "Ranking functions may be ... altered dynamically through the
        query interface, yielding to changes in the query execution
        strategy.  Only ranking functions defined at query definition
        time can be used for query optimization" — so the plan is kept
        and only presentation changes.
        """
        for alias in weights:
            if alias not in self.query.aliases:
                raise ExecutionError(f"unknown alias {alias!r} in ranking weights")

        def go() -> list[CompositeTuple]:
            calls_before = self.pool.log.total_calls()
            self._ranking = RankingFunction(dict(weights))
            if self._last is None:
                self._execute()
                calls_before = None  # first run necessarily calls services
            result = self._present(k)
            if calls_before is not None:
                assert self.pool.log.total_calls() == calls_before
            return result

        return self._journaled_call(
            {"kind": "rerank", "weights": dict(weights), "k": k}, go
        )

    def resubmit(
        self, inputs: Mapping[str, Any], k: int | None = None
    ) -> list[CompositeTuple]:
        """Change the INPUT keywords and re-execute the same plan."""
        if self.backend == "asyncio":

            def go() -> list[CompositeTuple]:
                self._reset_inputs(inputs)
                self._execute()
                return self._present(k)

            return self._journaled_call(
                {"kind": "resubmit", "inputs": dict(inputs), "k": k}, go
            )
        return _drain(self.resubmit_steps(inputs, k))

    def resubmit_steps(self, inputs: Mapping[str, Any], k: int | None = None):
        """Step-generator twin of :meth:`resubmit` (virtual backend only)."""
        return self._journaled_steps(
            {"kind": "resubmit", "inputs": dict(inputs), "k": k},
            self._resubmit_steps_impl(inputs, k),
        )

    def _resubmit_steps_impl(self, inputs: Mapping[str, Any], k: int | None):
        self._reset_inputs(inputs)
        yield from self.execute_steps()
        return self._present(k)

    async def resubmit_async(
        self, inputs: Mapping[str, Any], k: int | None = None
    ) -> list[CompositeTuple]:
        """Awaitable twin of :meth:`resubmit` for a running event loop."""

        async def go() -> list[CompositeTuple]:
            self._reset_inputs(inputs)
            await self.execute_async()
            return self._present(k)

        return await self._journaled_await(
            {"kind": "resubmit", "inputs": dict(inputs), "k": k}, go
        )

    def _reset_inputs(self, inputs: Mapping[str, Any]) -> None:
        self.inputs = dict(inputs)
        self._fetches = dict(self.candidate.fetch_vector())

    # -- accounting -------------------------------------------------------------------

    @property
    def total_calls(self) -> int:
        """Service calls issued across the whole interaction so far."""
        return self.pool.log.total_calls()

    @property
    def fetch_factors(self) -> dict[str, int]:
        return dict(self._fetches)

    @property
    def result_count(self) -> int:
        return len(self._raw)
