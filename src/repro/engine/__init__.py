"""Execution engine: virtual time, call logging, clocks, plan execution."""

from repro.engine.async_runner import (
    AsyncExecutionContext,
    AsyncPlanExecutor,
    run_plan_async,
)
from repro.engine.clock import JoinClock
from repro.engine.events import CallLog, CallRecord, VirtualClock
from repro.engine.liquid import LiquidQuerySession
from repro.engine.retry import NO_RETRY, Degradation, Retrier, RetryPolicy
from repro.engine.streaming import StreamedJoin, stream_binary_join
from repro.engine.executor import (
    ExecutionResult,
    NodeRunStats,
    PlanExecutor,
    execute_plan,
)

__all__ = [
    "AsyncExecutionContext",
    "AsyncPlanExecutor",
    "run_plan_async",
    "LiquidQuerySession",
    "StreamedJoin",
    "stream_binary_join",
    "JoinClock",
    "CallLog",
    "CallRecord",
    "VirtualClock",
    "RetryPolicy",
    "Retrier",
    "Degradation",
    "NO_RETRY",
    "ExecutionResult",
    "NodeRunStats",
    "PlanExecutor",
    "execute_plan",
]
