"""Serving-stack observability: SLO tracking, span trees, and reports.

PR 3 built the tracing/metrics substrate around the single-query
engine; this module is the serving-side vocabulary on top of it:

* :class:`SloTracker` — windowed latency-SLO accounting on the virtual
  clock: exact quantiles (p50/p95/p99/p999) plus per-threshold
  violation fractions, cumulative and over a sliding window.
* :func:`record_request_span` — renders one terminal
  :class:`~repro.serve.scheduler.RequestOutcome` as a span *tree*
  (``serve.request`` root with ``serve.park`` / ``serve.queue`` /
  ``serve.execute`` / ``serve.plan`` children) tagged with session,
  shard, and template.  The scheduler calls it live at request finish;
  durable resume calls it again for pre-crash outcomes so a resumed
  trace reconciles with an uninterrupted one.
* :func:`replay_outcome_telemetry` — the resume-side half of that
  contract: re-absorbs checkpointed terminal outcomes into a fresh
  registry/tracer/SLO tracker exactly the way the scheduler would have.
* :func:`serving_metrics_summary` — the compact per-shard metrics
  digest embedded in ``BENCH_serving.json`` / ``BENCH_sharding.json``.
* :func:`render_serve_report` — the ``repro serve-report`` renderer: a
  post-run shard-utilization and bottleneck summary built from a JSONL
  span trace plus an optional metrics snapshot.

Everything here is duck-typed against the serve-layer dataclasses (no
``repro.serve`` imports) to keep ``obs`` dependency-free below the
engine, mirroring how ``metrics.py`` absorbs legacy stat carriers.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import SpanRecord, Tracer

__all__ = [
    "DEFAULT_SLO_THRESHOLDS",
    "SloTracker",
    "record_request_span",
    "replay_outcome_telemetry",
    "serving_metrics_summary",
    "load_trace_jsonl",
    "render_serve_report",
]

#: Default latency SLO thresholds, in virtual seconds.  The serving
#: benchmarks' p50/p95/p99 sit around these bands at moderate load.
DEFAULT_SLO_THRESHOLDS = (5.0, 20.0, 60.0)

_TERMINAL = ("completed", "failed", "rejected")


def _threshold_key(threshold: float) -> str:
    return f"{threshold:g}"


@dataclass
class SloTracker:
    """Windowed latency-SLO accounting over completed requests.

    ``observe(latency, at=now)`` feeds one completed request.  The
    tracker keeps cumulative counts per threshold plus a sliding window
    of the last ``window`` virtual seconds (``window=0`` disables the
    windowed view), and exact quantiles over everything observed —
    consistent with :class:`~repro.obs.metrics.Histogram`, these runs
    observe thousands of values, not millions.
    """

    thresholds: tuple[float, ...] = DEFAULT_SLO_THRESHOLDS
    window: float = 0.0
    count: int = 0
    violations: dict[str, int] = field(default_factory=dict)
    _latencies: Histogram = field(
        default_factory=lambda: Histogram("slo.latency")
    )
    _recent: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.thresholds = tuple(sorted(float(t) for t in self.thresholds))
        if any(t <= 0 for t in self.thresholds):
            raise ValueError("SLO thresholds must be positive")
        if self.window < 0:
            raise ValueError("window must be >= 0")
        for threshold in self.thresholds:
            self.violations.setdefault(_threshold_key(threshold), 0)

    def observe(self, latency: float, at: float = 0.0) -> None:
        latency = float(latency)
        self.count += 1
        self._latencies.observe(latency)
        for threshold in self.thresholds:
            if latency > threshold:
                self.violations[_threshold_key(threshold)] += 1
        if self.window > 0:
            self._recent.append((float(at), latency))
            horizon = float(at) - self.window
            while self._recent and self._recent[0][0] < horizon:
                self._recent.popleft()

    def snapshot(self) -> dict[str, Any]:
        summary = self._latencies.summary()
        quantiles = {
            key: summary[key]
            for key in ("p50", "p95", "p99", "p999")
            if key in summary
        }
        violations = {}
        for threshold in self.thresholds:
            key = _threshold_key(threshold)
            count = self.violations[key]
            violations[key] = {
                "count": count,
                "fraction": count / self.count if self.count else 0.0,
            }
        snapshot: dict[str, Any] = {
            "count": self.count,
            "quantiles": quantiles,
            "violations": violations,
        }
        if self.window > 0:
            recent = [latency for _, latency in self._recent]
            window_violations = {}
            for threshold in self.thresholds:
                violated = sum(1 for value in recent if value > threshold)
                window_violations[_threshold_key(threshold)] = {
                    "count": violated,
                    "fraction": violated / len(recent) if recent else 0.0,
                }
            snapshot["window"] = {
                "seconds": self.window,
                "count": len(recent),
                "violations": window_violations,
            }
        return snapshot


# ----------------------------------------------------------------------------- #
# Request-lifecycle span trees
# ----------------------------------------------------------------------------- #


def _session_of(request: Any) -> int:
    # Mirrors serve.workload.session_key without importing the serve layer.
    if getattr(request, "session_id", None) is not None:
        return request.session_id
    if getattr(request, "target", None) is not None:
        return request.target
    return request.request_id


def record_request_span(
    tracer: "Tracer", outcome: Any, lane: "int | None" = None
) -> "SpanRecord | None":
    """Emit the lifecycle span tree for one terminal request outcome.

    The root ``serve.request`` span covers arrival → finish; children
    attribute where that time went: ``serve.park`` (waiting for the
    target run or a busy session), ``serve.queue`` (admission queue),
    ``serve.execute`` (steps on the scheduler, with a zero-width
    ``serve.plan`` child marking the plan-cache lookup).  Throttle and
    retry accounting ride as root attributes (``rate_wait`` /
    ``rate_hits``) so the tree's shape — and hence resume
    reconciliation — does not depend on per-step event history.
    ``lane`` is the shard-local concurrency slot (Chrome ``tid``); it
    is live-run only and absent from replayed spans.
    """
    request = outcome.request
    shard = outcome.shard
    attrs: dict[str, Any] = {
        "request": request.request_id,
        "kind": request.kind,
        "template": request.template,
        "session": _session_of(request),
        "status": outcome.status,
        "shard": shard,
        "round_trips": outcome.round_trips,
        "steps": outcome.steps,
    }
    if outcome.stolen:
        attrs["stolen"] = True
    if outcome.rate_wait:
        attrs["rate_wait"] = outcome.rate_wait
    rate_hits = getattr(outcome, "rate_hits", 0)
    if rate_hits:
        attrs["rate_hits"] = rate_hits
    if lane is not None:
        attrs["lane"] = lane
    root = tracer.record_span(
        "serve.request",
        start=request.arrival,
        end=outcome.finished_at,
        **attrs,
    )
    child: dict[str, Any] = {"request": request.request_id, "shard": shard}
    if lane is not None:
        child["lane"] = lane
    unparked = getattr(outcome, "unparked_at", 0.0)
    if unparked and unparked > request.arrival:
        tracer.record_span(
            "serve.park",
            start=request.arrival,
            end=unparked,
            parent_id=root.span_id,
            reason=getattr(outcome, "wake_reason", None) or "parked",
            **child,
        )
    started = outcome.started_at
    if started is not None:
        if outcome.queue_wait > 0:
            tracer.record_span(
                "serve.queue",
                start=started - outcome.queue_wait,
                end=started,
                parent_id=root.span_id,
                **child,
            )
        execute = tracer.record_span(
            "serve.execute",
            start=started,
            end=outcome.finished_at,
            parent_id=root.span_id,
            steps=outcome.steps,
            round_trips=outcome.round_trips,
            **child,
        )
        plan_cached = getattr(outcome, "plan_cached", None)
        if plan_cached is not None:
            tracer.record_span(
                "serve.plan",
                start=started,
                end=started,
                parent_id=execute.span_id,
                cached=plan_cached,
                **child,
            )
    return root


# ----------------------------------------------------------------------------- #
# Durable-resume telemetry continuity
# ----------------------------------------------------------------------------- #


def absorb_outcome_metrics(
    metrics: "MetricsRegistry",
    outcome: Any,
    emit_shard_metrics: bool = False,
) -> None:
    """Apply the metric increments the scheduler made for ``outcome``.

    Mirrors ``ServeScheduler._on_finish`` / ``_reject`` / ``_steal_one``
    bookkeeping for one terminal outcome, so replaying checkpointed
    outcomes reconciles counters and histograms with an uninterrupted
    run.  Per-shard ``max_queue_depth`` gauges and the admission peak
    describe pre-crash transients that are not part of an outcome and
    are deliberately out of scope.
    """
    status = outcome.status
    request = outcome.request
    metrics.counter(f"serve.kind.{request.kind}").inc()
    shard = outcome.shard

    def inc_shard(name: str, index: int) -> None:
        if emit_shard_metrics:
            metrics.counter(f"serve.shard.{index}.{name}").inc()

    if status == "rejected":
        metrics.counter("serve.rejected").inc()
        inc_shard("rejected", shard)
        return
    metrics.histogram("serve.queue_wait").observe(outcome.queue_wait)
    inc_shard("started", shard)
    rate_hits = getattr(outcome, "rate_hits", 0)
    if rate_hits:
        metrics.counter("serve.rate_limited").inc(rate_hits)
    if outcome.stolen:
        metrics.counter("serve.steals").inc()
        inc_shard("steals", shard)
        stolen_from = getattr(outcome, "stolen_from", None)
        if stolen_from is not None:
            inc_shard("stolen_from", stolen_from)
    if status == "failed":
        metrics.counter("serve.failed").inc()
        metrics.histogram("serve.latency_failed").observe(outcome.latency)
        inc_shard("failed", shard)
    else:
        metrics.counter("serve.completed").inc()
        metrics.histogram("serve.latency").observe(outcome.latency)
        inc_shard("completed", shard)


def replay_outcome_telemetry(
    outcomes: Iterable[Any],
    metrics: "MetricsRegistry | None" = None,
    tracer: "Tracer | None" = None,
    slo: "SloTracker | None" = None,
    emit_shard_metrics: bool = False,
) -> int:
    """Re-absorb checkpointed terminal outcomes into fresh telemetry.

    Called by ``serve_workload_durable`` on resume, before the scheduler
    runs the remaining workload: every pre-crash terminal outcome is
    replayed into the registry, re-emitted as a span tree, and fed to
    the SLO tracker, in request-id order (deterministic span ids).
    Returns the number of outcomes replayed.
    """
    ordered = sorted(
        (o for o in outcomes if o.status in _TERMINAL),
        key=lambda o: o.request.request_id,
    )
    for outcome in ordered:
        if metrics is not None:
            absorb_outcome_metrics(
                metrics, outcome, emit_shard_metrics=emit_shard_metrics
            )
        if tracer is not None and tracer.enabled:
            record_request_span(tracer, outcome)
        if slo is not None and outcome.status == "completed":
            slo.observe(outcome.latency, at=outcome.finished_at)
    return len(ordered)


# ----------------------------------------------------------------------------- #
# Benchmark-artifact metrics digest
# ----------------------------------------------------------------------------- #


def serving_metrics_summary(report: Any) -> dict[str, Any]:
    """Compact per-shard metrics digest for BENCH_*.json artifacts.

    Reads the live registry a :class:`~repro.serve.scheduler.ServeReport`
    carries and returns plain JSON: global outcome/steal/throttle
    counters, cache hit rates, and one entry per shard with queue-depth
    peak and steal attribution.
    """
    metrics = report.metrics

    def count(name: str) -> int:
        instrument = metrics.counters.get(name)
        return int(instrument.value) if instrument is not None else 0

    def gauge(name: str) -> float:
        instrument = metrics.gauges.get(name)
        return float(instrument.value) if instrument is not None else 0.0

    summary: dict[str, Any] = {
        "completed": count("serve.completed"),
        "failed": count("serve.failed"),
        "rejected": count("serve.rejected"),
        "rate_limited": count("serve.rate_limited"),
        "steals": count("serve.steals"),
        "admission_peak": report.admission_peak,
    }
    if report.plan_cache_stats:
        summary["plan_cache_hit_rate"] = report.plan_cache_stats.get(
            "hit_rate", 0.0
        )
    if report.invocation_cache_stats:
        stats = report.invocation_cache_stats
        hits = stats.get("hits", 0)
        total = hits + stats.get("misses", 0)
        summary["invocation_cache_hit_rate"] = stats.get(
            "hit_rate", hits / total if total else 0.0
        )
    shards = []
    for index in range(report.num_shards):
        prefix = f"serve.shard.{index}"
        shards.append(
            {
                "shard": index,
                "started": count(f"{prefix}.started"),
                "completed": count(f"{prefix}.completed"),
                "failed": count(f"{prefix}.failed"),
                "rejected": count(f"{prefix}.rejected"),
                "steals": count(f"{prefix}.steals"),
                "stolen_from": count(f"{prefix}.stolen_from"),
                "queue_depth_peak": gauge(f"{prefix}.max_queue_depth"),
            }
        )
    summary["shards"] = shards
    return summary


# ----------------------------------------------------------------------------- #
# serve-report: post-run bottleneck summary from trace artifacts
# ----------------------------------------------------------------------------- #


def load_trace_jsonl(source: "str | Path") -> list[dict[str, Any]]:
    """Load a JSONL span trace (as written by ``--trace``) into dicts."""
    spans = []
    with open(source, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _span_dict(span: Any) -> dict[str, Any]:
    if isinstance(span, Mapping):
        return dict(span)
    return {
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "attrs": dict(span.attrs),
    }


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "n/a"


def render_serve_report(
    spans: Iterable[Any],
    metrics: "Mapping[str, Any] | Any | None" = None,
    slo: "SloTracker | Mapping[str, Any] | None" = None,
    top: int = 5,
) -> str:
    """Render a shard-utilization / bottleneck summary from trace spans.

    ``spans`` accepts JSONL dicts (``load_trace_jsonl``) or live
    :class:`~repro.obs.tracer.SpanRecord` objects.  ``metrics`` is an
    optional registry or snapshot (adds cache hit rates and queue-depth
    peaks); ``slo`` an optional tracker or snapshot.
    """
    records = [_span_dict(span) for span in spans]
    requests = [r for r in records if r["name"] == "serve.request"]
    if not requests:
        return "serve-report: no serve.request spans in trace\n"

    makespan = max(r["end"] for r in records)
    statuses: dict[str, int] = {}
    by_shard: dict[int, dict[str, Any]] = {}
    by_template: dict[str, list[float]] = {}
    total_request_time = 0.0
    waits = {"execute": 0.0, "queue": 0.0, "park": 0.0, "throttle": 0.0}
    latencies = Histogram("report.latency")

    def shard_entry(index: int) -> dict[str, Any]:
        entry = by_shard.get(index)
        if entry is None:
            entry = by_shard[index] = {
                "requests": 0,
                "completed": 0,
                "failed": 0,
                "rejected": 0,
                "stolen": 0,
                "busy": 0.0,
                "queue": 0.0,
            }
        return entry

    for record in requests:
        attrs = record.get("attrs", {})
        status = attrs.get("status", "unknown")
        statuses[status] = statuses.get(status, 0) + 1
        duration = record["end"] - record["start"]
        total_request_time += duration
        waits["throttle"] += attrs.get("rate_wait", 0.0)
        entry = shard_entry(attrs.get("shard", 0))
        entry["requests"] += 1
        if status in entry:
            entry[status] += 1
        if attrs.get("stolen"):
            entry["stolen"] += 1
        if status == "completed":
            latencies.observe(duration)
        by_template.setdefault(attrs.get("template", "?"), []).append(duration)

    for record in records:
        attrs = record.get("attrs", {})
        duration = record["end"] - record["start"]
        if record["name"] == "serve.execute":
            waits["execute"] += duration
            shard_entry(attrs.get("shard", 0))["busy"] += duration
        elif record["name"] == "serve.queue":
            waits["queue"] += duration
            shard_entry(attrs.get("shard", 0))["queue"] += duration
        elif record["name"] == "serve.park":
            waits["park"] += duration
    # Throttle waits happen inside execute spans; carve them out so the
    # four components attribute disjoint slices of request time.
    waits["execute"] = max(0.0, waits["execute"] - waits["throttle"])

    snapshot = (
        metrics.snapshot()
        if metrics is not None and hasattr(metrics, "snapshot")
        else metrics
    )
    gauges = snapshot.get("gauges", {}) if snapshot else {}

    lines = []
    num_shards = max(by_shard) + 1 if by_shard else 1
    lines.append(
        f"serve-report — {len(requests)} requests, {num_shards} shard(s), "
        f"makespan {makespan:.2f}s"
    )
    outcome_bits = ", ".join(
        f"{statuses.get(status, 0)} {status}"
        for status in ("completed", "failed", "rejected")
    )
    throughput = len(requests) / makespan if makespan > 0 else 0.0
    lines.append(f"  outcomes: {outcome_bits}; throughput {throughput:.2f} req/s")
    summary = latencies.summary()
    if summary.get("count"):
        lines.append(
            "  completed latency: "
            f"p50 {summary['p50']:.2f}s, p95 {summary['p95']:.2f}s, "
            f"p99 {summary['p99']:.2f}s, p999 {summary['p999']:.2f}s"
        )
    attribution = " | ".join(
        f"{name} {_pct(value, total_request_time)}"
        for name, value in sorted(
            waits.items(), key=lambda item: -item[1]
        )
    )
    lines.append(f"  request-time attribution: {attribution}")

    dominant = max(waits, key=lambda name: waits[name])
    advice = {
        "execute": "service execution dominates; add shards or faster services",
        "queue": "admission queueing dominates; raise concurrency or add shards",
        "park": "session serialization dominates (follow-up chains wait on targets)",
        "throttle": "token-bucket throttling dominates; raise per-service rates",
    }[dominant]
    lines.append(
        f"  bottleneck: {dominant} "
        f"({_pct(waits[dominant], total_request_time)} of request time) — {advice}"
    )

    lines.append("shards:")
    busiest = max(by_shard.values(), key=lambda e: e["busy"])["busy"] if by_shard else 0.0
    for index in sorted(by_shard):
        entry = by_shard[index]
        util = entry["busy"] / makespan if makespan > 0 else 0.0
        peak = gauges.get(f"serve.shard.{index}.max_queue_depth")
        peak_bit = f", queue peak {int(peak)}" if peak is not None else ""
        stolen_bit = f", {entry['stolen']} stolen-in" if entry["stolen"] else ""
        lines.append(
            f"  shard {index}: {entry['requests']} requests "
            f"({entry['completed']} ok, {entry['failed']} failed, "
            f"{entry['rejected']} rejected), busy {entry['busy']:.1f}s "
            f"(~{util:.2f} lanes){peak_bit}{stolen_bit}"
        )
    idle = [
        index
        for index, entry in by_shard.items()
        if busiest > 0 and entry["busy"] < 0.5 * busiest
    ]
    if idle and len(by_shard) > 1:
        lines.append(
            f"  imbalance: shard(s) {sorted(idle)} under half the busiest "
            "shard's load — check ring balance / steal settings"
        )

    ranked = sorted(
        by_template.items(), key=lambda item: -sum(item[1])
    )[: max(0, top)]
    if ranked:
        lines.append(f"templates (top {len(ranked)} by total request time):")
        for template, durations in ranked:
            hist = Histogram("t")
            for value in durations:
                hist.observe(value)
            stats = hist.summary()
            lines.append(
                f"  {template}: {stats['count']} requests, "
                f"mean {stats['mean']:.2f}s, p95 {stats['p95']:.2f}s, "
                f"total {stats['sum']:.1f}s"
            )

    if snapshot:
        cache_bits = []
        plan_rate = gauges.get("serve.plan_cache.hit_rate")
        if plan_rate is not None:
            cache_bits.append(f"plan cache {plan_rate:.1%}")
        invocation_rate = gauges.get("serve.invocation_cache.hit_rate")
        if invocation_rate is not None:
            cache_bits.append(f"invocation cache {invocation_rate:.1%}")
        if cache_bits:
            lines.append("caches: " + ", ".join(cache_bits) + " hit rate")

    if slo is not None:
        state = slo.snapshot() if hasattr(slo, "snapshot") else slo
        bits = []
        for key, entry in state.get("violations", {}).items():
            bits.append(f">{key}s: {entry['fraction']:.1%}")
        if bits:
            lines.append(
                f"slo: {state.get('count', 0)} observed; violations "
                + ", ".join(bits)
            )
    return "\n".join(lines) + "\n"
