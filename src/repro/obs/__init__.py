"""Unified observability: tracing, metrics, exporters, and explain.

The chapter's cost model is defined over observable execution facts —
service round trips, chunk fetches, join probes, bottleneck time — so
every benchmark claim should be auditable from a trace.  This package
provides the zero-dependency telemetry layer the engine, optimizer, and
CLI thread their accounting through:

* :mod:`repro.obs.tracer` — a span tree on **virtual time**, carried by
  an explicit :class:`Tracer` context object (no globals), with a
  near-zero-overhead no-op path (:data:`NULL_TRACER`) used whenever
  tracing is off;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters/gauges/histograms unifying the legacy scattered stats
  (``BnBStats``, ``InvocationCacheStats``, ``pairs_probed``, ``CallLog``
  aggregates) behind one snapshot API;
* :mod:`repro.obs.export` — JSONL span logs and Chrome ``trace_event``
  JSON (loadable in ``chrome://tracing`` / Perfetto against the virtual
  clock);
* :mod:`repro.obs.explain` — the ``repro explain`` surface: a
  per-plan-node tree annotating estimated vs. actual cardinality, calls,
  cache hits, probes, and bottleneck attribution.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer, coerce_tracer

# The engine and optimizer import ``repro.obs.tracer`` from their module
# bodies, which executes this package ``__init__`` mid-way through
# ``repro``'s own import.  Only the dependency-free tracer module may be
# imported eagerly here; metrics/export/explain reach back into
# ``repro.engine``/``repro.core`` and are resolved lazily (PEP 562).
_LAZY = {
    "MetricsRegistry": "repro.obs.metrics",
    "TimeSeries": "repro.obs.metrics",
    "record_call_log": "repro.obs.metrics",
    "record_execution": "repro.obs.metrics",
    "record_optimization": "repro.obs.metrics",
    "snapshot_run": "repro.obs.metrics",
    "spans_to_jsonl": "repro.obs.export",
    "spans_to_chrome_trace": "repro.obs.export",
    "write_trace": "repro.obs.export",
    "metrics_to_prometheus": "repro.obs.export",
    "write_prometheus": "repro.obs.export",
    "TRACE_FORMATS": "repro.obs.export",
    "ExplainNode": "repro.obs.explain",
    "ExplainReport": "repro.obs.explain",
    "build_explain": "repro.obs.explain",
    "DEFAULT_SLO_THRESHOLDS": "repro.obs.serving",
    "SloTracker": "repro.obs.serving",
    "record_request_span": "repro.obs.serving",
    "replay_outcome_telemetry": "repro.obs.serving",
    "serving_metrics_summary": "repro.obs.serving",
    "load_trace_jsonl": "repro.obs.serving",
    "render_serve_report": "repro.obs.serving",
}

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "coerce_tracer",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
