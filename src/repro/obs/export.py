"""Span exporters: JSONL and Chrome ``trace_event`` JSON.

Both formats are rendered from the tracer's finished spans on the
virtual clock, so a trace is byte-identical across runs with the same
seed and query — the reproducible-profile analogue of the paper's
deterministic cost measurements.

* **JSONL** — one span object per line in span-id (start) order; the
  stable machine-readable archive format, and the one the determinism
  tests hash.
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` document of
  complete (``"ph": "X"``) events, loadable in ``chrome://tracing`` and
  Perfetto.  Virtual seconds map to trace microseconds; compile- and
  optimizer-phase spans sit at t=0 with zero duration (virtual time only
  moves during execution) but keep their nesting via stack depth.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Sequence

from repro.errors import SearchComputingError
from repro.obs.tracer import SpanRecord

__all__ = [
    "TRACE_FORMATS",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "write_trace",
]

#: Supported ``--trace-format`` values.
TRACE_FORMATS = ("jsonl", "chrome")

#: Virtual seconds -> trace_event microseconds.
_US = 1_000_000.0


def _ordered(spans: Iterable[SpanRecord]) -> list[SpanRecord]:
    return sorted(spans, key=lambda span: span.span_id)


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """One JSON object per line, in span-id order; deterministic bytes."""
    lines = []
    for span in _ordered(spans):
        lines.append(
            json.dumps(
                {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": {
                        key: span.attrs[key] for key in sorted(span.attrs)
                    },
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_chrome_trace(
    spans: Iterable[SpanRecord], label: str = "repro"
) -> dict:
    """A Chrome/Perfetto ``trace_event`` document over the virtual clock."""
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": label},
        },
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "virtual-time"},
        },
    ]
    for span in _ordered(spans):
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": label},
    }


def write_trace(
    spans: Sequence[SpanRecord],
    destination: "str | Path | IO[str]",
    fmt: str = "jsonl",
    label: str = "repro",
) -> None:
    """Serialise ``spans`` to ``destination`` in ``fmt`` (jsonl|chrome)."""
    if fmt not in TRACE_FORMATS:
        raise SearchComputingError(
            f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}"
        )
    if fmt == "jsonl":
        payload = spans_to_jsonl(spans)
    else:
        payload = (
            json.dumps(
                spans_to_chrome_trace(spans, label=label),
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(payload)  # type: ignore[arg-type]
