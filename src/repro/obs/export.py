"""Span exporters: JSONL and Chrome ``trace_event`` JSON.

Both formats are rendered from the tracer's finished spans on the
virtual clock, so a trace is byte-identical across runs with the same
seed and query — the reproducible-profile analogue of the paper's
deterministic cost measurements.

* **JSONL** — one span object per line in span-id (start) order; the
  stable machine-readable archive format, and the one the determinism
  tests hash.
* **Chrome trace_event** — a ``{"traceEvents": [...]}`` document of
  complete (``"ph": "X"``) events, loadable in ``chrome://tracing`` and
  Perfetto.  Virtual seconds map to trace microseconds; compile- and
  optimizer-phase spans sit at t=0 with zero duration (virtual time only
  moves during execution) but keep their nesting via stack depth.
  Serving spans carry ``shard``/``lane`` attributes which map to
  ``pid``/``tid``, so an N-shard run renders as N process swimlanes with
  one thread row per concurrency lane.
* **Prometheus text format** — the metrics-side counterpart: a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot rendered in the
  text exposition format (``# TYPE`` lines, ``{shard="i"}`` labels for
  the per-shard ``serve.shard.<i>.*`` families, histogram summaries
  with quantile labels), scrape-ready and deterministically ordered.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Sequence

from repro.errors import SearchComputingError
from repro.obs.tracer import SpanRecord

__all__ = [
    "TRACE_FORMATS",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "write_trace",
    "metrics_to_prometheus",
    "write_prometheus",
]

#: Supported ``--trace-format`` values.
TRACE_FORMATS = ("jsonl", "chrome")

#: Virtual seconds -> trace_event microseconds.
_US = 1_000_000.0


def _ordered(spans: Iterable[SpanRecord]) -> list[SpanRecord]:
    return sorted(spans, key=lambda span: span.span_id)


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """One JSON object per line, in span-id order; deterministic bytes."""
    lines = []
    for span in _ordered(spans):
        lines.append(
            json.dumps(
                {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": {
                        key: span.attrs[key] for key in sorted(span.attrs)
                    },
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _span_pid(span: SpanRecord) -> int:
    """Chrome process id: shard ``i`` -> pid ``i + 1``; engine spans -> 1."""
    shard = span.attrs.get("shard")
    if isinstance(shard, int) and not isinstance(shard, bool) and shard >= 0:
        return shard + 1
    return 1


def _span_tid(span: SpanRecord) -> int:
    """Chrome thread id: concurrency lane ``l`` -> tid ``l + 1``."""
    lane = span.attrs.get("lane")
    if isinstance(lane, int) and not isinstance(lane, bool) and lane >= 0:
        return lane + 1
    return 1


def spans_to_chrome_trace(
    spans: Iterable[SpanRecord], label: str = "repro"
) -> dict:
    """A Chrome/Perfetto ``trace_event`` document over the virtual clock.

    Spans with a ``shard`` attribute land on ``pid = shard + 1`` (one
    Perfetto swimlane per shard, named via ``process_name`` metadata);
    spans with a ``lane`` attribute get a stable per-concurrency-slot
    ``tid``.  Everything else keeps the original single-process layout
    at pid 1 / tid 1.
    """
    ordered = _ordered(spans)
    shard_pids: set[int] = set()
    threads: set[tuple[int, int]] = set()
    for span in ordered:
        pid = _span_pid(span)
        if pid != 1 or "shard" in span.attrs:
            shard_pids.add(pid)
        threads.add((pid, _span_tid(span)))
    pids = {1} | {pid for pid, _ in threads}
    threads |= {(pid, 1) for pid in pids}

    events: list[dict] = []
    for pid in sorted(pids):
        name = f"{label}: shard {pid - 1}" if pid in shard_pids else label
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "name": "process_name",
                "args": {"name": name},
            }
        )
    for pid, tid in sorted(threads):
        name = "virtual-time" if tid == 1 else f"lane {tid - 1}"
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for span in ordered:
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "X",
                "pid": _span_pid(span),
                "tid": _span_tid(span),
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": label},
    }


# ----------------------------------------------------------------------------- #
# Prometheus text exposition format
# ----------------------------------------------------------------------------- #

#: ``serve.shard.<i>.<rest>`` families collapse to one metric with a
#: ``shard`` label, which is how a scraper wants per-shard breakdowns.
_SHARD_METRIC = re.compile(r"^serve\.shard\.(\d+)\.(.+)$")

_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"), ("0.999", "p999"))


def _prom_ident(name: str) -> str:
    ident = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if ident and ident[0].isdigit():
        ident = "_" + ident
    return ident


def _prom_value(value: Any) -> str:
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return "{" + rendered + "}"


def _family_of(name: str) -> tuple[str, dict[str, str]]:
    match = _SHARD_METRIC.match(name)
    if match:
        return "serve.shard." + match.group(2), {"shard": match.group(1)}
    return name, {}


def metrics_to_prometheus(
    metrics: Any, namespace: str = "repro", slo: Any = None
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` or the
    mapping its ``snapshot()`` returns.  Counters and gauges become
    their Prometheus namesakes; histograms become ``summary`` families
    with ``quantile`` labels plus ``_sum``/``_count``; a ``TimeSeries``
    contributes ``_peak``/``_last`` gauges.  Passing an
    :class:`~repro.obs.serving.SloTracker` as ``slo`` appends
    ``<ns>_slo_*`` violation-fraction gauges.  Output ordering is fully
    deterministic so snapshots diff cleanly across runs.
    """
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics

    families: dict[str, dict[str, Any]] = {}

    def family(name: str, kind: str) -> list[tuple[str, dict[str, str], Any]]:
        entry = families.setdefault(name, {"type": kind, "samples": []})
        return entry["samples"]

    for name, value in snapshot.get("counters", {}).items():
        base, labels = _family_of(name)
        family(base, "counter").append(("", labels, value))
    for name, value in snapshot.get("gauges", {}).items():
        base, labels = _family_of(name)
        family(base, "gauge").append(("", labels, value))
    for name, summary in snapshot.get("histograms", {}).items():
        base, labels = _family_of(name)
        samples = family(base, "summary")
        for quantile, key in _QUANTILES:
            if key in summary:
                samples.append(
                    ("", {**labels, "quantile": quantile}, summary[key])
                )
        if "sum" in summary:
            samples.append(("_sum", labels, summary["sum"]))
        samples.append(("_count", labels, summary.get("count", 0)))
    for name, summary in snapshot.get("timeseries", {}).items():
        base, labels = _family_of(name)
        if summary.get("count"):
            family(base + ".peak", "gauge").append(("", labels, summary["max"]))
            family(base + ".last", "gauge").append(("", labels, summary["last"]))

    if slo is not None:
        state = slo.snapshot() if hasattr(slo, "snapshot") else slo
        family("slo.requests", "gauge").append(("", {}, state.get("count", 0)))
        for quantile, key in _QUANTILES:
            if key in state.get("quantiles", {}):
                family("slo.latency", "summary").append(
                    ("", {"quantile": quantile}, state["quantiles"][key])
                )
        for threshold, entry in state.get("violations", {}).items():
            labels = {"threshold": str(threshold)}
            family("slo.violations", "gauge").append(
                ("", labels, entry["count"])
            )
            family("slo.violation_ratio", "gauge").append(
                ("", labels, entry["fraction"])
            )

    lines: list[str] = []
    for base in sorted(families):
        entry = families[base]
        metric = f"{namespace}_{_prom_ident(base)}"
        lines.append(f"# TYPE {metric} {entry['type']}")
        for suffix, labels, value in sorted(
            entry["samples"], key=lambda sample: (sample[0], sorted(sample[1].items()))
        ):
            lines.append(
                f"{metric}{suffix}{_prom_labels(labels)} {_prom_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    metrics: Any,
    destination: "str | Path | IO[str]",
    namespace: str = "repro",
    slo: Any = None,
) -> None:
    """Serialise a metrics snapshot to ``destination`` as Prometheus text."""
    payload = metrics_to_prometheus(metrics, namespace=namespace, slo=slo)
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(payload)  # type: ignore[arg-type]


def write_trace(
    spans: Sequence[SpanRecord],
    destination: "str | Path | IO[str]",
    fmt: str = "jsonl",
    label: str = "repro",
) -> None:
    """Serialise ``spans`` to ``destination`` in ``fmt`` (jsonl|chrome)."""
    if fmt not in TRACE_FORMATS:
        raise SearchComputingError(
            f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}"
        )
    if fmt == "jsonl":
        payload = spans_to_jsonl(spans)
    else:
        payload = (
            json.dumps(
                spans_to_chrome_trace(spans, label=label),
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
    if hasattr(destination, "write"):
        destination.write(payload)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(payload)  # type: ignore[arg-type]
