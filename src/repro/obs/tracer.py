"""Span tracing on virtual time.

A :class:`Tracer` is the explicit observability context threaded through
the optimizer, engine, and joins — there is deliberately no global or
thread-local registry, so two concurrently running executions can never
contaminate each other's traces.  Spans form a tree: the tracer keeps a
stack of open spans and each new span parents to the innermost open one.

Timestamps come from the **virtual clock**, not wall time.  Measured cost
in this repro is a function of the simulated clock (see
``repro.engine.events``); putting spans on the same axis makes a trace an
exact, seed-reproducible decomposition of measured execution time.
Compile- and optimization-phase spans run before any service call, so
they sit at virtual time 0 with zero duration — they still carry their
counts and attributes, and their tree order is preserved by span ids.

The disabled path is near-zero-overhead: :data:`NULL_TRACER` returns one
shared, attribute-dropping span handle, and hot loops guard on
``tracer.enabled`` so they do not even build the attribute dict.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol

__all__ = ["SpanRecord", "Tracer", "NullTracer", "NULL_TRACER", "coerce_tracer"]


class _ClockLike(Protocol):  # pragma: no cover - typing only
    now: float


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named interval of virtual time plus attributes.

    ``span_id`` is assigned in *start* order (1-based) and ``parent_id``
    is the id of the innermost span open at start time (``None`` for
    roots), so the tree and its traversal order are reconstructible from
    the flat list.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attrs: Mapping[str, Any]

    @property
    def duration(self) -> float:
        return self.end - self.start


class _SpanHandle:
    """An open span; a context manager that finishes it on exit."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def add(self, key: str, delta: float = 1) -> None:
        """Increment a numeric attribute (created at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + delta

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False


class _NullSpan:
    """Shared no-op span handle: accepts and drops everything."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, delta: float = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every ``span()`` is the same shared no-op.

    Components default to this, so the instrumented hot paths cost one
    attribute load (``tracer.enabled``) or one trivially inlinable method
    call when tracing is off.
    """

    enabled: bool = False
    spans: tuple[SpanRecord, ...] = ()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> None:
        return None

    def bind_clock(self, clock: _ClockLike | None) -> None:
        pass


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


@dataclass
class Tracer:
    """Collects a span tree over a virtual clock.

    Parameters
    ----------
    clock:
        Any object with a ``now`` attribute (typically the service pool's
        :class:`~repro.engine.events.VirtualClock`).  ``None`` pins
        timestamps to 0.0 — the right value for phases that precede
        execution (compile, optimization); bind the real clock with
        :meth:`bind_clock` before executing.
    """

    clock: _ClockLike | None = None
    enabled: bool = True
    spans: list[SpanRecord] = field(default_factory=list)
    _stack: list[_SpanHandle] = field(default_factory=list, repr=False)
    _ids: "itertools.count[int]" = field(
        default_factory=lambda: itertools.count(1), repr=False
    )

    def bind_clock(self, clock: _ClockLike | None) -> None:
        """Point subsequent spans at ``clock`` (e.g. once the pool exists)."""
        self.clock = clock

    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a child span of the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        handle = _SpanHandle(
            self, next(self._ids), parent, name, self.now(), attrs
        )
        self._stack.append(handle)
        return handle

    def _finish(self, handle: _SpanHandle) -> None:
        # Close any spans left open inside first (defensive: a component
        # that returns without exiting a child still yields a well-formed
        # tree — the orphans finish at their parent's end time).
        while self._stack and self._stack[-1] is not handle:
            self._record(self._stack.pop())
        if self._stack:
            self._stack.pop()
        self._record(handle)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Append an already-measured span retrospectively.

        The serving scheduler measures a request's life (arrival →
        completion) on the *server* clock and only knows the interval
        once it closes — a stack-based ``span()`` cannot express dozens
        of overlapping request lifetimes anyway.  The record joins the
        span list as a root (or a child of ``parent_id``) with its id in
        creation order, like any other span.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return record

    def _record(self, handle: _SpanHandle) -> None:
        self.spans.append(
            SpanRecord(
                span_id=handle.span_id,
                parent_id=handle.parent_id,
                name=handle.name,
                start=handle.start,
                end=self.now(),
                attrs=dict(handle.attrs),
            )
        )

    # -- introspection helpers ---------------------------------------------------

    def finished(self, name: str | None = None) -> list[SpanRecord]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self.spans)
        return [span for span in self.spans if span.name == name]

    def ordered(self) -> list[SpanRecord]:
        """Finished spans in start (span id) order — the tree's preorder."""
        return sorted(self.spans, key=lambda span: span.span_id)

    def roots(self) -> list[SpanRecord]:
        return [span for span in self.ordered() if span.parent_id is None]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        return [span for span in self.ordered() if span.parent_id == span_id]

    def render_tree(self) -> str:
        """Indented text rendering of the span tree (debugging aid)."""
        by_parent: dict[int | None, list[SpanRecord]] = {}
        for span in self.ordered():
            by_parent.setdefault(span.parent_id, []).append(span)
        lines: list[str] = []

        def walk(parent_id: int | None, depth: int) -> None:
            for span in by_parent.get(parent_id, ()):
                attrs = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
                lines.append(
                    "  " * depth
                    + f"{span.name} [{span.start:.3f}..{span.end:.3f}]"
                    + (f" {{{attrs}}}" if attrs else "")
                )
                walk(span.span_id, depth + 1)

        walk(None, 0)
        return "\n".join(lines)


def coerce_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Map ``None`` to the shared disabled tracer."""
    return NULL_TRACER if tracer is None else tracer
