"""The ``repro explain`` surface: estimated vs. actual, per plan node.

The chapter's Fig. 10 walks one fully instantiated plan and argues about
its cost through per-node annotations (``tin``/``tout``/fetches/calls).
This module turns that worked example into a verifiable artifact: it
lines the optimizer's *estimates* (:class:`~repro.plans.plan.PlanAnnotations`)
up against the executor's *measurements*
(:class:`~repro.engine.executor.NodeRunStats` and the call log), node by
node, and attributes the measured execution time to its bottleneck —
the service whose busy time dominates the critical path.

Rendering is plain text (output-rooted, like ``QueryPlan.render``), one
node per line::

    OUTPUT k=10  [est tout=10.0 | act tout=10]
      JOIN(T.UAddress=R.UAddress)  [est 36.0 -> 14.4 | act 25 -> 9]  probes=25
        SERVICE T:Theatre1  [est calls=2.0 | act calls=2 (2 ok)]  busy=1.40s <- bottleneck 52%
        ...

A node's ``est a -> b | act c -> d`` reads "estimated ``tin`` a producing
``tout`` b; measured ``tin`` c producing ``tout`` d".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.plans.nodes import OutputNode, ParallelJoinNode, ServiceNode
from repro.plans.plan import PlanAnnotations, QueryPlan

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.engine.executor import ExecutionResult

__all__ = ["ExplainNode", "ExplainReport", "build_explain"]


@dataclass
class ExplainNode:
    """One plan node's estimated-vs-actual comparison."""

    node_id: str
    label: str
    kind: str
    alias: str | None = None
    est_tin: float | None = None
    est_tout: float | None = None
    est_calls: float | None = None
    est_fetches: int | None = None
    act_tin: int | None = None
    act_tout: int | None = None
    act_calls: int | None = None
    act_calls_ok: int | None = None
    busy_time: float | None = None
    pairs_probed: int | None = None
    bottleneck_share: float | None = None
    children: "list[ExplainNode]" = field(default_factory=list)

    @property
    def is_bottleneck(self) -> bool:
        return (self.bottleneck_share or 0.0) >= 0.5

    def render_line(self) -> str:
        parts = [self.label]
        est = _flow(self.est_tin, self.est_tout)
        act = _flow(self.act_tin, self.act_tout)
        if est or act:
            parts.append(f"[est {est or '-'} | act {act or '-'}]")
        if self.est_calls is not None or self.act_calls is not None:
            bits = []
            if self.est_calls is not None:
                bits.append(f"est calls={self.est_calls:g}")
            if self.act_calls is not None:
                delivered = (
                    f" ({self.act_calls_ok} ok)"
                    if self.act_calls_ok is not None
                    and self.act_calls_ok != self.act_calls
                    else ""
                )
                bits.append(f"act calls={self.act_calls}{delivered}")
            parts.append("[" + ", ".join(bits) + "]")
        if self.est_fetches is not None:
            parts.append(f"fetches={self.est_fetches}")
        if self.pairs_probed is not None:
            parts.append(f"probes={self.pairs_probed}")
        if self.busy_time:
            parts.append(f"busy={self.busy_time:.2f}s")
        if self.bottleneck_share is not None:
            parts.append(f"<- bottleneck {self.bottleneck_share:.0%}")
        return "  ".join(parts)


def _flow(tin: "float | None", tout: "float | None") -> str:
    if tin is None and tout is None:
        return ""
    left = f"{tin:g}" if tin is not None else "?"
    right = f"{tout:g}" if tout is not None else "?"
    return f"{left} -> {right}"


@dataclass
class ExplainReport:
    """The full explain tree plus run-level summary figures."""

    root: ExplainNode
    estimated_results: float | None = None
    actual_results: int | None = None
    execution_time: float | None = None
    time_to_screen: float | None = None
    total_calls: int | None = None
    delivered_calls: int | None = None
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_hit_rate: float | None = None
    pairs_probed: int | None = None
    bottleneck_alias: str | None = None
    bottleneck_share: float | None = None

    def render(self) -> str:
        lines: list[str] = []

        def walk(node: ExplainNode, depth: int) -> None:
            lines.append("  " * depth + node.render_line())
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        summary: list[str] = []
        if self.estimated_results is not None or self.actual_results is not None:
            summary.append(
                "results: estimated "
                + (f"{self.estimated_results:g}" if self.estimated_results is not None else "?")
                + ", actual "
                + (f"{self.actual_results}" if self.actual_results is not None else "?")
            )
        if self.execution_time is not None:
            line = f"measured: {self.execution_time:.2f}s execution"
            if self.time_to_screen is not None:
                line += f", {self.time_to_screen:.2f}s to screen"
            summary.append(line)
        if self.total_calls is not None:
            line = f"calls: {self.total_calls} round trips"
            if (
                self.delivered_calls is not None
                and self.delivered_calls != self.total_calls
            ):
                line += f" ({self.delivered_calls} delivered)"
            summary.append(line)
        if self.cache_hits is not None and self.cache_misses is not None:
            summary.append(
                f"invocation cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses"
                + (
                    f" ({self.cache_hit_rate:.0%} hit rate)"
                    if self.cache_hit_rate is not None
                    else ""
                )
            )
        if self.pairs_probed is not None:
            summary.append(f"join probes: {self.pairs_probed} pairs")
        if self.bottleneck_alias is not None:
            summary.append(
                f"bottleneck: {self.bottleneck_alias} "
                f"({self.bottleneck_share:.0%} of service busy time)"
            )
        if summary:
            lines.append("")
            lines.extend(summary)
        return "\n".join(lines)


def build_explain(
    plan: QueryPlan,
    annotations: PlanAnnotations | None = None,
    result: "ExecutionResult | None" = None,
) -> ExplainReport:
    """Assemble the explain tree from a plan, its estimates, and (when the
    plan was executed) the measured :class:`ExecutionResult`."""
    node_stats: Mapping[str, object] = result.node_stats if result is not None else {}
    busy_by_node = {
        node_id: getattr(stats, "busy_time", 0.0)
        for node_id, stats in node_stats.items()
    }
    total_busy = sum(busy_by_node.values())
    calls_ok = (
        result.log.calls_by_alias(ok_only=True) if result is not None else {}
    )

    def build(node_id: str) -> ExplainNode:
        node = plan.node(node_id)
        out = ExplainNode(
            node_id=node_id,
            label=node.label(),
            kind=node.kind,
            alias=getattr(node, "alias", None),
        )
        if annotations is not None and node_id in annotations.by_node:
            ann = annotations.by_node[node_id]
            out.est_tin = ann.tin
            out.est_tout = ann.tout
            out.est_fetches = ann.fetches
            if isinstance(node, ServiceNode):
                out.est_calls = ann.calls
        stats = node_stats.get(node_id)
        if stats is not None:
            out.act_tin = getattr(stats, "tin", None)
            out.act_tout = getattr(stats, "tout", None)
            if isinstance(node, ServiceNode):
                out.act_calls = getattr(stats, "calls", None)
                out.act_calls_ok = calls_ok.get(node.alias, 0)
            probed = getattr(stats, "pairs_probed", 0)
            if isinstance(node, ParallelJoinNode) and probed is not None:
                out.pairs_probed = probed
            busy = busy_by_node.get(node_id, 0.0)
            if busy:
                out.busy_time = busy
                if isinstance(node, ServiceNode) and total_busy > 0:
                    out.bottleneck_share = busy / total_busy
        for parent in plan.parents(node_id):
            out.children.append(build(parent))
        return out

    root = build(plan.output_node.node_id)

    # Only the dominant service is *the* bottleneck; clear the share
    # marker on the others so the tree flags a single node.
    services: list[ExplainNode] = []

    def collect(node: ExplainNode) -> None:
        if node.kind == "ServiceNode" and node.bottleneck_share is not None:
            services.append(node)
        for child in node.children:
            collect(child)

    collect(root)
    bottleneck: ExplainNode | None = None
    if services:
        bottleneck = max(services, key=lambda n: (n.busy_time or 0.0, n.node_id))
        for node in services:
            if node is not bottleneck:
                node.bottleneck_share = None

    report = ExplainReport(root=root)
    if annotations is not None:
        out_node = plan.output_node.node_id
        if out_node in annotations.by_node:
            report.estimated_results = annotations.by_node[out_node].tout
    if result is not None:
        report.actual_results = len(result.tuples)
        report.execution_time = result.execution_time
        report.time_to_screen = result.time_to_screen
        report.total_calls = result.total_calls
        report.delivered_calls = sum(
            result.log.calls_by_alias(ok_only=True).values()
        )
        cache = result.cache_stats
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        report.cache_hit_rate = cache.hit_rate
        report.pairs_probed = result.pairs_probed
        if bottleneck is not None and bottleneck.busy_time:
            report.bottleneck_alias = bottleneck.alias
            report.bottleneck_share = (
                (bottleneck.busy_time / total_busy) if total_busy else None
            )
    return report
