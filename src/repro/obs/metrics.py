"""A unified metrics registry over the repro's scattered statistics.

Before this layer, execution accounting lived in ad-hoc dataclasses:
``BnBStats`` (optimizer search), ``InvocationCacheStats`` and
``pairs_probed`` (executor), and ``CallLog`` aggregate methods (round
trips, retries, latency).  Those legacy carriers stay — existing tests
and callers read them directly, and they remain the live stores the hot
paths increment — but the :class:`MetricsRegistry` absorbs them behind
one snapshot API: :func:`record_optimization`, :func:`record_execution`,
and :func:`record_call_log` translate each into named counters, gauges,
and histograms, so one ``snapshot()`` call yields the complete,
JSON-serialisable picture of a run.

Metric names are dotted and stable (``optimizer.expanded``,
``executor.cache.hits``, ``calls.delivered.<alias>``); benchmark reports
embed snapshots under these names, which makes BENCH_*.json diffs
meaningful across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.core.bnb import BnBStats
    from repro.engine.events import CallLog
    from repro.engine.executor import ExecutionResult

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "record_call_log",
    "record_execution",
    "record_optimization",
]


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: float = 0

    def inc(self, delta: float = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += delta


@dataclass
class Gauge:
    """A point-in-time named value (can move both ways)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    """A named distribution; snapshots report summary statistics.

    Observations are kept (these runs observe thousands of values, not
    millions), so percentiles are exact and deterministic under a seed.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0}
        ordered = sorted(self.values)
        count = len(ordered)

        def quantile(q: float) -> float:
            index = min(count - 1, max(0, round(q * (count - 1))))
            return ordered[index]

        return {
            "count": count,
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / count,
            "p50": quantile(0.50),
            "p95": quantile(0.95),
            "p99": quantile(0.99),
            "p999": quantile(0.999),
        }


@dataclass
class TimeSeries:
    """A bounded ``(time, value)`` series with deterministic decimation.

    Serving runs sample queue depth and admission occupancy on every
    scheduler event — at 100k requests that is far too many points to
    keep.  When the retained buffer reaches ``max_points`` the series
    drops every other retained point and doubles its sampling stride, so
    memory stays bounded while coverage stays uniform over the whole
    run.  The decimation schedule depends only on the observation count,
    never on wall time or randomness, so a seeded run yields identical
    retained points every time.  True extremes (``floor``/``peak``) are
    tracked against *every* observation, not just retained ones.
    """

    name: str
    max_points: int = 2048
    points: list[tuple[float, float]] = field(default_factory=list)
    observed: int = 0
    peak: float = float("-inf")
    floor: float = float("inf")
    _stride: int = 1

    def sample(self, at: float, value: float) -> None:
        value = float(value)
        if value > self.peak:
            self.peak = value
        if value < self.floor:
            self.floor = value
        if self.observed % self._stride == 0:
            self.points.append((float(at), value))
            if len(self.points) >= self.max_points:
                self.points = self.points[::2]
                self._stride *= 2
        self.observed += 1

    def summary(self) -> dict[str, float]:
        if not self.observed:
            return {"count": 0}
        return {
            "count": self.observed,
            "retained": len(self.points),
            "stride": self._stride,
            "min": self.floor,
            "max": self.peak,
            "last": self.points[-1][1],
        }


@dataclass
class MetricsRegistry:
    """Named counters, gauges, and histograms with one snapshot API.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and live for the registry's lifetime.  ``view()`` registers a lazy
    gauge: a zero-argument callable evaluated at snapshot time, which is
    how live legacy objects (an executor's cache stats, a pool's call
    log) are exposed without double bookkeeping.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    series: dict[str, TimeSeries] = field(default_factory=dict)
    _views: dict[str, Callable[[], float]] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def timeseries(self, name: str, max_points: int = 2048) -> TimeSeries:
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = TimeSeries(
                name, max_points=max_points
            )
        return instrument

    def view(self, name: str, fn: Callable[[], float]) -> None:
        """Register a lazy gauge evaluated at snapshot time."""
        self._views[name] = fn

    def snapshot(self) -> dict[str, Any]:
        """The complete current state, deterministically ordered."""
        gauges = {name: gauge.value for name, gauge in self.gauges.items()}
        for name, fn in self._views.items():
            gauges[name] = fn()
        snapshot = {
            "counters": {
                name: self.counters[name].value
                for name in sorted(self.counters)
            },
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }
        if self.series:
            snapshot["timeseries"] = {
                name: self.series[name].summary()
                for name in sorted(self.series)
            }
        return snapshot


# ----------------------------------------------------------------------------- #
# Absorbers: legacy stat carriers -> registry
# ----------------------------------------------------------------------------- #


def record_call_log(registry: MetricsRegistry, log: CallLog) -> None:
    """Absorb a :class:`~repro.engine.events.CallLog` into the registry.

    ``calls.by_alias.*`` counts round trips (what virtual time was spent
    on); ``calls.delivered.*`` counts only successful responses — the
    figure the chapter's per-call cost metrics mean.
    """
    registry.counter("calls.total").inc(log.total_calls())
    registry.counter("calls.failed").inc(log.failed_calls())
    registry.counter("calls.retries").inc(log.retries())
    registry.counter("calls.tuples_transferred").inc(log.tuples_transferred())
    registry.gauge("calls.latency_time").set(log.total_latency())
    registry.gauge("calls.retry_overhead").set(log.retry_overhead())
    latency = registry.histogram("calls.latency")
    for record in log.records:
        latency.observe(record.latency)
    for alias, count in sorted(log.calls_by_alias().items()):
        registry.counter(f"calls.by_alias.{alias}").inc(count)
    for alias, count in sorted(log.calls_by_alias(ok_only=True).items()):
        registry.counter(f"calls.delivered.{alias}").inc(count)


def record_execution(
    registry: MetricsRegistry, result: "ExecutionResult"
) -> None:
    """Absorb an :class:`~repro.engine.executor.ExecutionResult`."""
    registry.counter("executor.combinations").inc(len(result.tuples))
    registry.counter("executor.candidates").inc(result.total_candidates)
    registry.counter("executor.pairs_probed").inc(result.pairs_probed)
    cache = result.cache_stats
    registry.counter("executor.cache.hits").inc(cache.hits)
    registry.counter("executor.cache.misses").inc(cache.misses)
    registry.counter("executor.cache.evictions").inc(cache.evictions)
    registry.gauge("executor.cache.hit_rate").set(cache.hit_rate)
    registry.gauge("executor.execution_time").set(result.execution_time)
    registry.gauge("executor.time_to_screen").set(result.time_to_screen)
    registry.counter("executor.failed_aliases").inc(len(result.failed_aliases))
    record_call_log(registry, result.log)


def record_optimization(
    registry: MetricsRegistry,
    stats: "BnBStats",
    best_cost: float | None = None,
    estimated_results: float | None = None,
) -> None:
    """Absorb a :class:`~repro.core.bnb.BnBStats` (plus outcome gauges)."""
    for name in (
        "expanded",
        "pruned",
        "leaves",
        "incumbent_updates",
        "enqueued",
        "deduped",
        "dominated",
    ):
        registry.counter(f"optimizer.{name}").inc(getattr(stats, name))
    registry.gauge("optimizer.budget_exhausted").set(
        1.0 if stats.budget_exhausted else 0.0
    )
    if best_cost is not None:
        registry.gauge("optimizer.best_cost").set(best_cost)
    if estimated_results is not None:
        registry.gauge("optimizer.estimated_results").set(estimated_results)


def snapshot_run(
    stats: "BnBStats | None",
    result: "ExecutionResult | None",
    best_cost: float | None = None,
    estimated_results: float | None = None,
) -> Mapping[str, Any]:
    """One-shot convenience: absorb everything, return the snapshot."""
    registry = MetricsRegistry()
    if stats is not None:
        record_optimization(
            registry,
            stats,
            best_cost=best_cost,
            estimated_results=estimated_results,
        )
    if result is not None:
        record_execution(registry, result)
    return registry.snapshot()
