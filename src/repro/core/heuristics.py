"""The six optimizer heuristics (Sections 5.3-5.5).

Each branch-and-bound phase comes with two alternative heuristics that
order (or propose) branches; the optimizer explores the full space either
way, but a good heuristic finds a cheap incumbent early, which makes the
pruning step bite:

* Phase 1 (access-pattern / interface selection):
  **bound-is-better** — prefer interfaces with many input attributes (more
  bound inputs, smaller answer sets, faster services); **unbound-is-easier**
  — prefer few inputs (easier to reach feasibility).
* Phase 2 (topology): **selective-first** — build long linear paths
  ordered by decreasing selectivity; **parallel-is-better** — always make
  the choice that maximises parallelism.
* Phase 3 (fetch counts): **greedy** — increment the fetch factor with the
  highest marginal results-per-cost sensitivity; **square-is-better** —
  increment every factor proportionally to its chunk size so all chunked
  services explore about the same number of tuples (binary join search
  spaces stay square).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

from repro.core.annotate import annotate
from repro.model.service import ServiceInterface
from repro.plans.plan import PlanAnnotations, QueryPlan
from repro.query.compile import CompiledQuery
from repro.stats.estimate import Estimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost import CostMetric
    from repro.core.topology import Move, TopologyBuilder

#: Annotator signature the optimizer threads into phase-3 heuristics:
#: ``annotate_fn(fetches, base=parent_fetches) -> PlanAnnotations``.
AnnotateFn = Callable[..., PlanAnnotations]

#: Plan-cost signature the optimizer threads into phase-3 heuristics:
#: ``cost_fn(fetches, annotations) -> float`` (memoized per vector).
CostFn = Callable[..., float]


def _default_annotate_fn(
    plan: QueryPlan, query: CompiledQuery, estimator: Estimator
) -> AnnotateFn:
    """Plain full re-annotation (the seed behaviour, no memoization)."""

    def annotate_fn(
        fetches: Mapping[str, int],
        base: Optional[Mapping[str, int]] = None,
    ) -> PlanAnnotations:
        del base
        return annotate(plan, query, fetches=fetches, estimator=estimator)

    return annotate_fn

__all__ = [
    "AnnotateFn",
    "CostFn",
    "Phase1Heuristic",
    "BoundIsBetter",
    "UnboundIsEasier",
    "Phase2Heuristic",
    "SelectiveFirst",
    "ParallelIsBetter",
    "Phase3Heuristic",
    "GreedyFetch",
    "SquareIsBetter",
    "fetch_cap",
]


# --------------------------------------------------------------------------- #
# Phase 1
# --------------------------------------------------------------------------- #


class Phase1Heuristic:
    """Orders candidate interfaces for one query atom."""

    name = "abstract"

    def order_interfaces(
        self, alias: str, candidates: Sequence[ServiceInterface]
    ) -> list[ServiceInterface]:
        raise NotImplementedError


@dataclass
class BoundIsBetter(Phase1Heuristic):
    """Prefer access patterns with many input attributes.

    "The more attributes are bound to a given input, the smaller is the
    answer set, and therefore the service is faster in producing results."
    """

    name = "bound-is-better"

    def order_interfaces(
        self, alias: str, candidates: Sequence[ServiceInterface]
    ) -> list[ServiceInterface]:
        return sorted(
            candidates, key=lambda i: (-len(i.input_paths()), i.name)
        )


@dataclass
class UnboundIsEasier(Phase1Heuristic):
    """Prefer access patterns with few input attributes.

    "With many input attributes it is more difficult to find an assignment
    that makes the query feasible."
    """

    name = "unbound-is-easier"

    def order_interfaces(
        self, alias: str, candidates: Sequence[ServiceInterface]
    ) -> list[ServiceInterface]:
        return sorted(candidates, key=lambda i: (len(i.input_paths()), i.name))


# --------------------------------------------------------------------------- #
# Phase 2
# --------------------------------------------------------------------------- #


class Phase2Heuristic:
    """Orders the available topology-construction moves."""

    name = "abstract"

    def order_moves(
        self, builder: "TopologyBuilder", moves: Sequence["Move"]
    ) -> list["Move"]:
        raise NotImplementedError

    @staticmethod
    def _selectivity_rank(builder: "TopologyBuilder", alias: str) -> float:
        """Expected output tuples per input tuple: lower is more selective."""
        interface = builder.interface_of(alias)
        return interface.stats.avg_cardinality


@dataclass
class SelectiveFirst(Phase2Heuristic):
    """Long linear paths, most selective services first.

    Extends are preferred over merges and starts (chains over bushiness);
    within extends, the most selective service goes first.
    """

    name = "selective-first"

    def order_moves(
        self, builder: "TopologyBuilder", moves: Sequence["Move"]
    ) -> list["Move"]:
        def key(move: "Move"):
            if move.kind == "extend":
                return (0, self._selectivity_rank(builder, move.alias or ""))
            if move.kind == "start":
                # Starting a branch is unavoidable for the first service
                # but otherwise ranks behind chaining.
                penalty = 0 if not builder.placed else 1
                return (penalty, self._selectivity_rank(builder, move.alias or ""))
            if move.kind == "fork":
                # Forks create parallel branches: the opposite of chaining.
                return (3, self._selectivity_rank(builder, move.alias or ""))
            return (2, 0.0)

        return sorted(moves, key=key)


@dataclass
class ParallelIsBetter(Phase2Heuristic):
    """Maximise parallelism: starts first, merges next, extends last.

    "In absence of access limitations, this gives the optimal solution, as
    proved in [22]" — for time-oriented metrics.
    """

    name = "parallel-is-better"

    def order_moves(
        self, builder: "TopologyBuilder", moves: Sequence["Move"]
    ) -> list["Move"]:
        def key(move: "Move"):
            if move.kind == "start":
                return (0, self._selectivity_rank(builder, move.alias or ""))
            if move.kind == "fork":
                # A fork mounts a piped consumer on its own branch: the
                # parallelism-maximising placement for dependent services.
                return (1, self._selectivity_rank(builder, move.alias or ""))
            if move.kind == "extend":
                return (3, self._selectivity_rank(builder, move.alias or ""))
            return (2, 0.0)

        return sorted(moves, key=key)


# --------------------------------------------------------------------------- #
# Phase 3
# --------------------------------------------------------------------------- #


def fetch_cap(interface: ServiceInterface) -> int:
    """Largest useful fetch factor: beyond it the service is exhausted."""
    if not interface.is_chunked:
        return 1
    return max(1, math.ceil(interface.stats.avg_cardinality / interface.chunk_size))


class Phase3Heuristic:
    """Proposes successor fetch vectors for an under-producing plan."""

    name = "abstract"

    def propose(
        self,
        plan: QueryPlan,
        query: CompiledQuery,
        fetches: Mapping[str, int],
        estimator: Estimator,
        metric: "CostMetric",
        k: int,
        annotate_fn: "AnnotateFn | None" = None,
        cost_fn: "CostFn | None" = None,
    ) -> list[dict[str, int]]:
        """Candidate next vectors, best first.  Empty when saturated.

        ``annotate_fn(fetches, base=...)`` — when provided — replaces
        direct calls to :func:`~repro.core.annotate.annotate`; the
        optimizer passes its memoizing incremental annotator so heuristics
        that score candidate vectors reuse cached annotations and only
        recompute the changed cone.  ``cost_fn(fetches, annotations)``
        likewise replaces ``metric.cost`` with the optimizer's per-vector
        cost memo — the same candidate is re-priced at most once, and the
        price is reused when the candidate is enqueued.
        """
        raise NotImplementedError

    @staticmethod
    def _chunked_aliases(plan: QueryPlan) -> list:
        return [
            node
            for node in plan.service_nodes()
            if node.interface is not None and node.interface.is_chunked
        ]


@dataclass
class GreedyFetch(Phase3Heuristic):
    """Increment the factor with the best marginal results-per-cost.

    "The Fi to be incremented is the one that corresponds to the node in
    the plan with the highest sensitivity with respect to the increase in
    the number of tuples in the query result per cost unit."
    """

    name = "greedy"

    def propose(
        self,
        plan: QueryPlan,
        query: CompiledQuery,
        fetches: Mapping[str, int],
        estimator: Estimator,
        metric: "CostMetric",
        k: int,
        annotate_fn: "AnnotateFn | None" = None,
        cost_fn: "CostFn | None" = None,
    ) -> list[dict[str, int]]:
        if annotate_fn is None:
            annotate_fn = _default_annotate_fn(plan, query, estimator)
        if cost_fn is None:
            cost_fn = lambda f, ann: metric.cost(plan, ann)  # noqa: E731
        base_ann = annotate_fn(fetches)
        base_results = base_ann.estimated_results(plan)
        base_cost = cost_fn(fetches, base_ann)
        scored: list[tuple[float, dict[str, int]]] = []
        for node in self._chunked_aliases(plan):
            assert node.interface is not None
            alias = node.alias
            current = fetches.get(alias, 1)
            if current >= fetch_cap(node.interface):
                continue
            child = dict(fetches)
            child[alias] = current + 1
            ann = annotate_fn(child, base=fetches)
            gain = ann.estimated_results(plan) - base_results
            extra = cost_fn(child, ann) - base_cost
            sensitivity = gain / max(extra, 1e-9)
            scored.append((sensitivity, child))
        scored.sort(key=lambda pair: -pair[0])
        return [child for _, child in scored]


@dataclass
class SquareIsBetter(Phase3Heuristic):
    """Increment every factor proportionally to keep search spaces square.

    "Each Fi is incremented by a value that is proportional to its chunk
    size ... all chunked services will have explored about the same number
    of tuples."  Since the increment is proportional to the *tuples per
    step*, small-chunk services get proportionally more fetches.
    """

    name = "square-is-better"

    def propose(
        self,
        plan: QueryPlan,
        query: CompiledQuery,
        fetches: Mapping[str, int],
        estimator: Estimator,
        metric: "CostMetric",
        k: int,
        annotate_fn: "AnnotateFn | None" = None,
        cost_fn: "CostFn | None" = None,
    ) -> list[dict[str, int]]:
        nodes = self._chunked_aliases(plan)
        if not nodes:
            return []
        max_chunk = max(n.interface.chunk_size for n in nodes)  # type: ignore[union-attr]
        child = dict(fetches)
        moved = False
        for node in nodes:
            assert node.interface is not None
            alias = node.alias
            current = child.get(alias, 1)
            cap = fetch_cap(node.interface)
            if current >= cap:
                continue
            step = max(1, round(max_chunk / node.interface.chunk_size))
            child[alias] = min(cap, current + step)
            moved = True
        return [child] if moved else []


# --------------------------------------------------------------------------- #
# Join-method suggestion (Section 4.3's strategy-selection rule)
# --------------------------------------------------------------------------- #


def suggest_join_methods(scoring_x, scoring_y, chunk_size_x: int = 10):
    """Join-method specs fitting the branches' score distributions.

    Section 4.3: "The choice of invocation strategy depends on the
    distribution of the ranking of the results and the cost of service
    invocation" — nested-loop when the first service exhibits a clear
    step, merge-scan otherwise.  Returns the sensible candidates, most
    recommended first:

    * a step-scored X side adds nested-loop/rectangular with ``h`` set
      from the step position (the optimizer explores it alongside the
      default);
    * otherwise only merge-scan/triangular is proposed.

    Opaque rankings (``OpaqueScoring``) report ``has_step = False``, so
    they fall back to merge-scan — the chapter's own remark that with an
    opaque function "classifying services and determining h ... is more
    difficult".
    """
    from repro.joins.spec import (
        CompletionStrategy,
        InvocationStrategy,
        JoinMethodSpec,
    )

    suggestions = []
    if getattr(scoring_x, "has_step", False):
        step_chunks = 1
        step_fn = getattr(scoring_x, "step_chunks", None)
        if callable(step_fn):
            step_chunks = step_fn(max(1, chunk_size_x))
        suggestions.append(
            JoinMethodSpec(
                invocation=InvocationStrategy.NESTED_LOOP,
                completion=CompletionStrategy.RECTANGULAR,
                step_chunks=step_chunks,
            )
        )
    suggestions.append(JoinMethodSpec())  # merge-scan + triangular default
    return suggestions
