"""The three-phase branch-and-bound query optimizer (Section 5, Fig. 8).

Given a compiled query, the optimizer explores "the combinatorial solution
space of all possible translations of the conjunctive query into fully
instantiated invocation schedules", organised in three phases:

1. **Access-pattern / interface selection** — choose a service interface
   per mart-level atom and an acyclic binding (provider per input
   attribute); unfeasible assignments are dead ends.
2. **Topology selection** — incremental DAG construction via
   :class:`~repro.core.topology.TopologyBuilder` moves (start / extend /
   merge), deduplicated by cost-relevant signature.
3. **Fetch counts** — starting from the all-ones vector ("the lowest
   admissible value ... as all services must contribute to the result"),
   increment fetch factors per the phase-3 heuristic until the estimated
   results reach ``k``.

All phases share one best-first branch-and-bound engine.  Lower bounds
come from the monotonic cost metric evaluated on the partial construction;
an optional greedy warm start (following the heuristics to one complete
plan) seeds the incumbent so pruning engages immediately.  The search is
anytime: an expansion budget returns the best incumbent found so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.annotate import annotate
from repro.core.bnb import BnBStats, BranchAndBound
from repro.core.cost import CostMetric, ExecutionTimeMetric
from repro.core.heuristics import (
    BoundIsBetter,
    GreedyFetch,
    ParallelIsBetter,
    Phase1Heuristic,
    Phase2Heuristic,
    Phase3Heuristic,
)
from repro.core.topology import TopologyBuilder, topology_signature
from repro.errors import OptimizationError
from repro.joins.spec import JoinMethodSpec
from repro.model.service import ServiceInterface
from repro.plans.plan import PlanAnnotations, QueryPlan
from repro.query.compile import CompiledQuery
from repro.query.feasibility import (
    BindingChoice,
    check_feasibility,
    enumerate_binding_choices,
)
from repro.stats.estimate import Estimator

__all__ = [
    "PlanCandidate",
    "OptimizerConfig",
    "OptimizationOutcome",
    "Optimizer",
    "optimize_query",
]


@dataclass(frozen=True)
class PlanCandidate:
    """One fully instantiated invocation schedule: plan + fetch factors."""

    plan: QueryPlan
    fetches: Mapping[str, float]
    annotations: PlanAnnotations
    cost: float
    estimated_results: float
    satisfies_k: bool
    assignment: Mapping[str, ServiceInterface] = field(default_factory=dict)

    def fetch_vector(self) -> dict[str, int]:
        return {alias: int(f) for alias, f in self.fetches.items()}

    def render(self) -> str:
        return self.plan.render(self.annotations)


@dataclass
class OptimizerConfig:
    """Tunable knobs of the optimizer (heuristics, metric, budgets)."""

    metric: CostMetric = field(default_factory=ExecutionTimeMetric)
    phase1: Phase1Heuristic = field(default_factory=BoundIsBetter)
    phase2: Phase2Heuristic = field(default_factory=ParallelIsBetter)
    phase3: Phase3Heuristic = field(default_factory=GreedyFetch)
    join_method_options: Sequence[JoinMethodSpec] = (JoinMethodSpec(),)
    #: When True, merges additionally try the join methods suggested by
    #: the branches' scoring shapes (nested-loop for step services —
    #: Section 4.3's strategy-selection rule).
    auto_join_methods: bool = False
    k: int | None = None  # defaults to the query's k
    prune: bool = True  # disable for the E12 pruning ablation
    budget: int | None = None  # max expansions (anytime behaviour)
    warm_start: bool = True  # greedy heuristic dive seeds the incumbent
    binding_choice_limit: int | None = 64
    max_phase3_depth: int = 256


@dataclass
class OptimizationOutcome:
    """Search result: the chosen candidate plus exploration accounting."""

    best: PlanCandidate | None
    stats: BnBStats
    incumbents: list[tuple[int, float, bool]]

    @property
    def found(self) -> bool:
        return self.best is not None


# ----------------------------------------------------------------------------- #
# Search states
# ----------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _AssignState:
    assignment: tuple[tuple[str, ServiceInterface], ...]
    next_index: int
    depth: int


@dataclass(frozen=True)
class _TopoState:
    builder: TopologyBuilder
    assignment: tuple[tuple[str, ServiceInterface], ...]
    depth: int


@dataclass(frozen=True)
class _FetchState:
    plan: QueryPlan
    assignment: tuple[tuple[str, ServiceInterface], ...]
    fetches: tuple[tuple[str, int], ...]
    depth: int


class Optimizer:
    """Three-phase branch-and-bound optimizer over one compiled query."""

    def __init__(self, query: CompiledQuery, config: OptimizerConfig | None = None):
        self.query = query
        self.config = config or OptimizerConfig()
        self.k = self.config.k if self.config.k is not None else query.k
        self.estimator = Estimator(query)
        self._open_aliases = tuple(
            atom.alias for atom in query.atoms if atom.interface is None
        )
        self._seen_topologies: set[tuple] = set()
        self._seen_partial: set[tuple] = set()
        self._seen_fetches: set[tuple] = set()
        # Fetch-state dedup keys on id(plan); keep every finished plan
        # alive so a garbage-collected plan's id cannot be recycled by a
        # new plan and shadow its fetch vectors.
        self._plan_refs: list[QueryPlan] = []

    # -- phase 1 ----------------------------------------------------------------

    def _candidates_for(self, alias: str) -> list[ServiceInterface]:
        mart = self.query.atom(alias).mart
        candidates = list(self.query.registry.interfaces_of(mart.name))
        return self.config.phase1.order_interfaces(alias, candidates)

    def _expand_assign(self, state: _AssignState) -> list:
        if state.next_index < len(self._open_aliases):
            alias = self._open_aliases[state.next_index]
            children = []
            for interface in self._candidates_for(alias):
                children.append(
                    _AssignState(
                        assignment=state.assignment + ((alias, interface),),
                        next_index=state.next_index + 1,
                        depth=state.depth + 1,
                    )
                )
            return children
        # Assignment complete: branch over acyclic binding choices.
        assignment = dict(state.assignment)
        if not check_feasibility(self.query, assignment).feasible:
            return []
        children = []
        for choice in enumerate_binding_choices(
            self.query, assignment, limit=self.config.binding_choice_limit
        ):
            builder = TopologyBuilder.initial(self.query, assignment, choice)
            children.append(
                _TopoState(
                    builder=builder,
                    assignment=state.assignment,
                    depth=state.depth + 1,
                )
            )
        return children

    # -- phase 2 ----------------------------------------------------------------

    def _expand_topology(self, state: _TopoState) -> list:
        children = []
        moves = self.config.phase2.order_moves(
            state.builder, state.builder.available_moves()
        )
        for move in moves:
            if move.kind == "merge":
                methods = list(self.config.join_method_options)
                if self.config.auto_join_methods:
                    methods.extend(self._suggested_methods(state.builder, move))
                    # Deduplicate while keeping order.
                    unique: list[JoinMethodSpec] = []
                    for method in methods:
                        if method not in unique:
                            unique.append(method)
                    methods = unique
                applied = [
                    state.builder.apply(replace(move, method=method))
                    for method in methods
                ]
            else:
                applied = [state.builder.apply(move)]
            for builder in applied:
                if builder.is_complete:
                    plan = builder.finish()
                    assignment_key = tuple(
                        (alias, iface.name) for alias, iface in state.assignment
                    )
                    signature = (assignment_key, topology_signature(plan))
                    if signature in self._seen_topologies:
                        continue
                    self._seen_topologies.add(signature)
                    self._plan_refs.append(plan)
                    children.append(
                        _FetchState(
                            plan=plan,
                            assignment=state.assignment,
                            fetches=self._initial_fetches(plan),
                            depth=state.depth + 1,
                        )
                    )
                else:
                    # Different move orders reach identical partial DAGs;
                    # enqueue one representative per partial signature.
                    assignment_key = tuple(
                        (alias, iface.name) for alias, iface in state.assignment
                    )
                    partial = (assignment_key, topology_signature(builder.plan))
                    if partial in self._seen_partial:
                        continue
                    self._seen_partial.add(partial)
                    children.append(
                        _TopoState(
                            builder=builder,
                            assignment=state.assignment,
                            depth=state.depth + 1,
                        )
                    )
        return children

    def _suggested_methods(self, builder, move) -> list[JoinMethodSpec]:
        """Join methods suggested by the merged branches' scoring shapes."""
        from repro.core.heuristics import suggest_join_methods
        from repro.plans.nodes import ServiceNode

        leaves = builder.leaves()
        assert move.stream is not None and move.other is not None

        def terminal_interface(leaf_id: str):
            node_id = leaf_id
            while True:
                node = builder.plan.node(node_id)
                if isinstance(node, ServiceNode):
                    return node.interface
                parents = builder.plan.parents(node_id)
                if not parents:
                    return None
                node_id = parents[0]

        left = terminal_interface(leaves[move.stream])
        right = terminal_interface(leaves[move.other])
        if left is None or right is None:
            return []
        return suggest_join_methods(
            left.scoring, right.scoring, chunk_size_x=left.chunk_size
        )

    @staticmethod
    def _initial_fetches(plan: QueryPlan) -> tuple[tuple[str, int], ...]:
        return tuple(
            (node.alias, 1)
            for node in plan.service_nodes()
            if node.interface is not None and node.interface.is_chunked
        )

    # -- phase 3 ----------------------------------------------------------------

    def _annotations(self, state: _FetchState) -> PlanAnnotations:
        return annotate(
            state.plan,
            self.query,
            fetches=dict(state.fetches),
            estimator=self.estimator,
        )

    def _estimated_results(self, state: _FetchState) -> float:
        return self._annotations(state).estimated_results(state.plan)

    def _expand_fetch(self, state: _FetchState) -> list:
        if self._estimated_results(state) >= self.k:
            return []  # leaf: handled by _is_leaf
        if state.depth >= self.config.max_phase3_depth:
            return []
        proposals = self.config.phase3.propose(
            state.plan,
            self.query,
            dict(state.fetches),
            self.estimator,
            self.config.metric,
            self.k,
        )
        children = []
        for vector in proposals:
            key = (id(state.plan), tuple(sorted(vector.items())))
            if key in self._seen_fetches:
                continue
            self._seen_fetches.add(key)
            children.append(
                _FetchState(
                    plan=state.plan,
                    assignment=state.assignment,
                    fetches=tuple(sorted(vector.items())),
                    depth=state.depth + 1,
                )
            )
        return children

    # -- B&B callbacks --------------------------------------------------------------

    def _expand(self, state) -> list:
        if isinstance(state, _AssignState):
            return self._expand_assign(state)
        if isinstance(state, _TopoState):
            return self._expand_topology(state)
        return self._expand_fetch(state)

    def _is_leaf(self, state) -> bool:
        if not isinstance(state, _FetchState):
            return False
        if self._estimated_results(state) >= self.k:
            return True
        if state.depth >= self.config.max_phase3_depth:
            return True
        # Saturated: no proposal can move any factor.
        return not self.config.phase3.propose(
            state.plan,
            self.query,
            dict(state.fetches),
            self.estimator,
            self.config.metric,
            self.k,
        )

    def _leaf_value(self, state: _FetchState):
        annotations = self._annotations(state)
        cost = self.config.metric.cost(state.plan, annotations)
        results = annotations.estimated_results(state.plan)
        candidate = PlanCandidate(
            plan=state.plan,
            fetches=dict(state.fetches),
            annotations=annotations,
            cost=cost,
            estimated_results=results,
            satisfies_k=results >= self.k,
            assignment=dict(state.assignment),
        )
        return cost, candidate, candidate.satisfies_k

    def _lower_bound(self, state) -> float:
        metric = self.config.metric
        if isinstance(state, _AssignState):
            fixed = [
                atom.interface
                for atom in self.query.atoms
                if atom.interface is not None
            ]
            chosen = [iface for _, iface in state.assignment]
            return metric.interfaces_lower_bound(fixed + chosen)
        if isinstance(state, _TopoState):
            annotations = annotate(
                state.builder.plan,
                self.query,
                fetches={},
                estimator=self.estimator,
            )
            return metric.partial_cost(state.builder.plan, annotations)
        annotations = self._annotations(state)
        return metric.cost(state.plan, annotations)

    @staticmethod
    def _depth(state) -> int:
        return state.depth

    # -- entry points -----------------------------------------------------------------

    def greedy_candidate(self) -> PlanCandidate | None:
        """Follow the heuristics' first choice to one complete candidate.

        This is the pure-heuristic construction the chapter describes as
        "heuristics for choosing the branches so as to build efficient
        plans quickly"; its result seeds the branch-and-bound incumbent.
        """
        root = _AssignState(assignment=(), next_index=0, depth=0)
        stack = [root]
        steps = 0
        while stack:
            steps += 1
            if steps > 10_000:  # pragma: no cover - defensive
                raise OptimizationError("greedy dive failed to terminate")
            state = stack.pop()
            if isinstance(state, _FetchState) and self._is_leaf(state):
                _, candidate, _ = self._leaf_value(state)
                return candidate
            children = self._expand(state)
            # Depth-first along the heuristics' first choice, backtracking
            # out of dead ends (e.g. a fork whose merge is degenerate).
            stack.extend(reversed(children))
        return None

    def optimize(self) -> OptimizationOutcome:
        """Run the three-phase branch-and-bound search."""
        engine = BranchAndBound(
            expand=self._expand,
            is_leaf=self._is_leaf,
            leaf_value=self._leaf_value,
            lower_bound=self._lower_bound,
            prune=self.config.prune,
            depth_of=self._depth,
        )
        initial = None
        if self.config.warm_start:
            seed = self.greedy_candidate()
            if seed is not None:
                initial = (seed.cost, seed, seed.satisfies_k)
        # The warm start consumed dedup state; reset so the search space
        # is complete.
        self._seen_topologies.clear()
        self._seen_partial.clear()
        self._seen_fetches.clear()
        self._plan_refs.clear()
        root = _AssignState(assignment=(), next_index=0, depth=0)
        outcome = engine.run(root, budget=self.config.budget, initial=initial)
        return OptimizationOutcome(
            best=outcome.payload,
            stats=outcome.stats,
            incumbents=outcome.incumbents,
        )


def optimize_query(
    query: CompiledQuery, config: OptimizerConfig | None = None
) -> PlanCandidate:
    """Optimize and return the best candidate, raising when none exists."""
    outcome = Optimizer(query, config).optimize()
    if outcome.best is None:
        raise OptimizationError("no feasible plan found")
    return outcome.best
