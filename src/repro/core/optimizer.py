"""The three-phase branch-and-bound query optimizer (Section 5, Fig. 8).

Given a compiled query, the optimizer explores "the combinatorial solution
space of all possible translations of the conjunctive query into fully
instantiated invocation schedules", organised in three phases:

1. **Access-pattern / interface selection** — choose a service interface
   per mart-level atom and an acyclic binding (provider per input
   attribute); unfeasible assignments are dead ends.
2. **Topology selection** — incremental DAG construction via
   :class:`~repro.core.topology.TopologyBuilder` moves (start / extend /
   merge), deduplicated by cost-relevant signature.
3. **Fetch counts** — starting from the all-ones vector ("the lowest
   admissible value ... as all services must contribute to the result"),
   increment fetch factors per the phase-3 heuristic until the estimated
   results reach ``k``.

All phases share one best-first branch-and-bound engine.  Lower bounds
come from the monotonic cost metric evaluated on the partial construction;
an optional greedy warm start (following the heuristics to one complete
plan) seeds the incumbent so pruning engages immediately.  The search is
anytime: an expansion budget returns the best incumbent found so far.

Hot-path memoization (see DESIGN.md, "Performance architecture"):

* every search state carries a canonical **signature**; the engine
  hash-conses states so equivalent constructions reached via different
  move orders are expanded once, and Pareto-dominated fetch states are
  dropped;
* each finished plan gets a **plan key** (one per plan object) under
  which annotations, full costs, and phase-3 proposals are memoized per
  ``(plan key, fetch vector)``; a separate **dedup key**, interned by
  ``(assignment, topology signature)``, scopes the engine's hash-consing
  — the two are deliberately distinct, because the signature conflates
  serial reorderings whose costs coincide but whose per-node annotations
  do not;
* a fetch state remembers its **parent's fetch vector**, so its
  annotations are derived from the parent's via
  :func:`~repro.core.annotate.annotate_delta` — only the services whose
  factor changed, plus their downstream cone, are recomputed;
* partial-topology annotations and costs are memoized per signature
  (:meth:`~repro.core.cost.CostMetric.cached_partial_cost`).

The ``incremental`` / ``dedup`` / ``dominance`` config flags switch the
layers off individually; with all three off the optimizer reproduces the
seed implementation's behaviour exactly (the benchmark harness uses that
as its baseline).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Hashable, Mapping, Sequence

from repro.core.annotate import annotate, annotate_delta
from repro.core.bnb import BnBStats, BranchAndBound
from repro.core.cost import CostMetric, ExecutionTimeMetric
from repro.core.heuristics import (
    AnnotateFn,
    CostFn,
    BoundIsBetter,
    GreedyFetch,
    ParallelIsBetter,
    Phase1Heuristic,
    Phase2Heuristic,
    Phase3Heuristic,
)
from repro.core.topology import TopologyBuilder, topology_signature
from repro.errors import OptimizationError
from repro.obs.tracer import NullTracer, Tracer, coerce_tracer
from repro.joins.spec import JoinMethodSpec
from repro.joins.wcoj import KNOWN_JOIN_KERNELS
from repro.model.service import ServiceInterface
from repro.plans.nodes import ParallelJoinNode
from repro.plans.plan import PlanAnnotations, QueryPlan
from repro.query.ast import Comparator
from repro.query.compile import CompiledQuery
from repro.query.feasibility import (
    BindingChoice,
    check_feasibility,
    enumerate_binding_choices,
)
from repro.stats.estimate import Estimator

__all__ = [
    "PlanCandidate",
    "OptimizerConfig",
    "OptimizationOutcome",
    "Optimizer",
    "optimize_query",
    "plan_signature",
    "resolve_plan_join_kernel",
]


def resolve_plan_join_kernel(plan: QueryPlan, requested: str) -> str:
    """Concrete kernel for ``plan`` under a ``join_kernel`` request.

    ``auto`` picks ``wcoj`` exactly when some merge node carries two or
    more equality predicates — the shape a cyclic / multi-predicate join
    graph collapses into (the topology builder attaches *every*
    unrealized crossing predicate to the merge that first connects its
    aliases, so a triangle's closing edge lands on an already-
    predicated node).  Single-predicate plans stay on the binary kernel,
    whose hash index is already optimal for them.
    """
    if requested not in KNOWN_JOIN_KERNELS:
        raise OptimizationError(
            f"unknown join kernel {requested!r}; "
            f"expected one of {KNOWN_JOIN_KERNELS}"
        )
    if requested != "auto":
        return requested
    for node in plan.nodes.values():
        if not isinstance(node, ParallelJoinNode):
            continue
        eq_predicates = sum(
            1
            for pred in node.predicates
            if pred.comparator is Comparator.EQ
        )
        if eq_predicates >= 2:
            return "wcoj"
    return "binary"

#: Entries kept in the per-optimizer annotation memo; beyond this the
#: least-recently-used annotations are evicted (they can be recomputed).
_ANN_CACHE_CAP = 8192


@dataclass(frozen=True)
class PlanCandidate:
    """One fully instantiated invocation schedule: plan + fetch factors."""

    plan: QueryPlan
    fetches: Mapping[str, float]
    annotations: PlanAnnotations
    cost: float
    estimated_results: float
    satisfies_k: bool
    assignment: Mapping[str, ServiceInterface] = field(default_factory=dict)
    #: Join kernel the executor should run this plan with ("binary" or
    #: "wcoj" — an ``auto`` request resolves here, at plan time, so a
    #: cached candidate always names its concrete kernel).
    join_kernel: str = "binary"

    def fetch_vector(self) -> dict[str, int]:
        return {alias: int(f) for alias, f in self.fetches.items()}

    def render(self) -> str:
        return self.plan.render(self.annotations)


@dataclass
class OptimizerConfig:
    """Tunable knobs of the optimizer (heuristics, metric, budgets)."""

    metric: CostMetric = field(default_factory=ExecutionTimeMetric)
    phase1: Phase1Heuristic = field(default_factory=BoundIsBetter)
    phase2: Phase2Heuristic = field(default_factory=ParallelIsBetter)
    phase3: Phase3Heuristic = field(default_factory=GreedyFetch)
    join_method_options: Sequence[JoinMethodSpec] = (JoinMethodSpec(),)
    #: When True, merges additionally try the join methods suggested by
    #: the branches' scoring shapes (nested-loop for step services —
    #: Section 4.3's strategy-selection rule).
    auto_join_methods: bool = False
    k: int | None = None  # defaults to the query's k
    prune: bool = True  # disable for the E12 pruning ablation
    budget: int | None = None  # max expansions (anytime behaviour)
    warm_start: bool = True  # greedy heuristic dive seeds the incumbent
    binding_choice_limit: int | None = 64
    max_phase3_depth: int = 256
    #: Derive annotations/costs incrementally from the parent state and
    #: memoize them per (plan key, fetch vector).
    incremental: bool = True
    #: Hash-cons search states in the engine by canonical signature.
    dedup: bool = True
    #: Pareto-prune fetch states dominated by a queued sibling of the
    #: same plan (componentwise >= fetch vector at >= cost bound).
    dominance: bool = True
    #: Parallel-join execution kernel: ``"binary"`` (the hash-indexed
    #: pairwise cascade), ``"wcoj"`` (leapfrog intersection — see
    #: :mod:`repro.joins.wcoj`), or ``"auto"`` (wcoj for plans whose
    #: merges carry multi-predicate equality closures, binary otherwise).
    #: Resolved per plan into :attr:`PlanCandidate.join_kernel` and part
    #: of :func:`plan_signature`, so cached plans are kernel-correct.
    join_kernel: str = "binary"

    def __post_init__(self) -> None:
        if self.join_kernel not in KNOWN_JOIN_KERNELS:
            raise OptimizationError(
                f"unknown join kernel {self.join_kernel!r}; "
                f"expected one of {KNOWN_JOIN_KERNELS}"
            )

    @classmethod
    def legacy(cls, **overrides) -> "OptimizerConfig":
        """The seed implementation's behaviour: no memoization layers."""
        overrides.setdefault("incremental", False)
        overrides.setdefault("dedup", False)
        overrides.setdefault("dominance", False)
        return cls(**overrides)


@dataclass
class OptimizationOutcome:
    """Search result: the chosen candidate plus exploration accounting."""

    best: PlanCandidate | None
    stats: BnBStats
    incumbents: list[tuple[int, float, bool]]

    @property
    def found(self) -> bool:
        return self.best is not None


# ----------------------------------------------------------------------------- #
# Search states
# ----------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _AssignState:
    assignment: tuple[tuple[str, ServiceInterface], ...]
    next_index: int
    depth: int


@dataclass(frozen=True)
class _TopoState:
    builder: TopologyBuilder
    assignment: tuple[tuple[str, ServiceInterface], ...]
    depth: int
    #: ``tuple((alias, interface name))`` — computed once per lineage.
    assignment_key: tuple[tuple[str, str], ...]
    #: Index of the binding choice this lineage descends from.  Partial
    #: plans from different choices can look identical while their
    #: *completions* differ (unplaced aliases have different pipe
    #: dependencies), so the choice participates in the dedup signature.
    choice_index: int
    #: ``topology_signature`` of the partial plan (reused by the bound).
    partial_sig: tuple
    #: Engine dedup signature; ``None`` exempts the state.
    signature: Hashable = None


@dataclass(frozen=True)
class _FetchState:
    plan: QueryPlan
    assignment: tuple[tuple[str, ServiceInterface], ...]
    fetches: tuple[tuple[str, int], ...]
    depth: int
    #: Id of this *plan object* — the memoization key prefix for
    #: annotations/costs/proposals.  Deliberately narrower than the
    #: topology signature: the signature conflates unpiped serial
    #: reorderings whose costs coincide but whose per-node annotations
    #: differ, so sharing cached ``by_node`` tables across it would
    #: corrupt incremental re-annotation.
    plan_key: int = -1
    #: Interned id of ``(assignment_key, topology_signature(plan))`` —
    #: the engine-level dedup scope (one representative per cost class,
    #: exactly the seed's topology dedup).
    dedup_key: int = -1
    #: Fetch vector of the state this one was derived from; lets the
    #: annotator recompute only the changed cone (``annotate_delta``).
    parent_fetches: tuple[tuple[str, int], ...] | None = None
    signature: Hashable = None


class Optimizer:
    """Three-phase branch-and-bound optimizer over one compiled query."""

    def __init__(
        self,
        query: CompiledQuery,
        config: OptimizerConfig | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ):
        self.query = query
        self.config = config or OptimizerConfig()
        #: Observability context; the search emits ``optimize.search`` /
        #: ``optimize.warm_start`` spans plus one ``bnb.expand`` span per
        #: node expansion.  ``None`` keeps the no-op fast path.
        self.tracer = coerce_tracer(tracer)
        self.k = self.config.k if self.config.k is not None else query.k
        self.estimator = Estimator(query)
        self._open_aliases = tuple(
            atom.alias for atom in query.atoms if atom.interface is None
        )
        # Legacy-mode (dedup=False) seen-sets, replicating the seed
        # implementation's optimizer-side deduplication.
        self._seen_topologies: set[tuple] = set()
        self._seen_partial: set[tuple] = set()
        self._seen_fetches: set[tuple] = set()
        # Fetch-state dedup keys on id(plan); keep every finished plan
        # alive so a garbage-collected plan's id cannot be recycled by a
        # new plan and shadow its fetch vectors.
        self._plan_refs: list[QueryPlan] = []
        # Memoization layers (incremental mode).
        self._dedup_keys: dict[tuple, int] = {}
        self._ann_cache: OrderedDict[tuple, PlanAnnotations] = OrderedDict()
        self._cost_cache: dict[tuple, float] = {}
        self._proposal_cache: dict[tuple, list[dict[str, int]]] = {}
        # Scopes this optimizer's entries in the (shared) metric's
        # partial-cost memo; unique per optimizer instance.
        self._cache_token = object()

    # -- phase 1 ----------------------------------------------------------------

    def _candidates_for(self, alias: str) -> list[ServiceInterface]:
        mart = self.query.atom(alias).mart
        candidates = list(self.query.registry.interfaces_of(mart.name))
        return self.config.phase1.order_interfaces(alias, candidates)

    def _expand_assign(self, state: _AssignState) -> list:
        if state.next_index < len(self._open_aliases):
            alias = self._open_aliases[state.next_index]
            children = []
            for interface in self._candidates_for(alias):
                children.append(
                    _AssignState(
                        assignment=state.assignment + ((alias, interface),),
                        next_index=state.next_index + 1,
                        depth=state.depth + 1,
                    )
                )
            return children
        # Assignment complete: branch over acyclic binding choices.
        assignment = dict(state.assignment)
        if not check_feasibility(self.query, assignment).feasible:
            return []
        assignment_key = tuple(
            (alias, iface.name) for alias, iface in state.assignment
        )
        children = []
        for index, choice in enumerate(
            enumerate_binding_choices(
                self.query, assignment, limit=self.config.binding_choice_limit
            )
        ):
            builder = TopologyBuilder.initial(self.query, assignment, choice)
            children.append(
                self._topo_state(
                    builder, state.assignment, assignment_key, index,
                    state.depth + 1,
                )
            )
        return children

    # -- phase 2 ----------------------------------------------------------------

    def _topo_state(
        self,
        builder: TopologyBuilder,
        assignment: tuple[tuple[str, ServiceInterface], ...],
        assignment_key: tuple[tuple[str, str], ...],
        choice_index: int,
        depth: int,
    ) -> _TopoState:
        partial_sig = topology_signature(builder.plan)
        signature = None
        if self.config.dedup:
            signature = ("topo", assignment_key, choice_index, partial_sig)
        return _TopoState(
            builder=builder,
            assignment=assignment,
            depth=depth,
            assignment_key=assignment_key,
            choice_index=choice_index,
            partial_sig=partial_sig,
            signature=signature,
        )

    def _fetch_state(
        self,
        plan: QueryPlan,
        assignment: tuple[tuple[str, ServiceInterface], ...],
        plan_key: int,
        dedup_key: int,
        fetches: tuple[tuple[str, int], ...],
        parent_fetches: tuple[tuple[str, int], ...] | None,
        depth: int,
    ) -> _FetchState:
        signature = ("fetch", dedup_key, fetches) if self.config.dedup else None
        return _FetchState(
            plan=plan,
            assignment=assignment,
            fetches=fetches,
            depth=depth,
            plan_key=plan_key,
            dedup_key=dedup_key,
            parent_fetches=parent_fetches,
            signature=signature,
        )

    def _intern_dedup_key(self, assignment_key: tuple, plan_sig: tuple) -> int:
        key = (assignment_key, plan_sig)
        dedup_key = self._dedup_keys.get(key)
        if dedup_key is None:
            dedup_key = len(self._dedup_keys)
            self._dedup_keys[key] = dedup_key
        return dedup_key

    def _expand_topology(self, state: _TopoState) -> list:
        children = []
        moves = self.config.phase2.order_moves(
            state.builder, state.builder.available_moves()
        )
        for move in moves:
            if move.kind == "merge":
                methods = list(self.config.join_method_options)
                if self.config.auto_join_methods:
                    methods.extend(self._suggested_methods(state.builder, move))
                    # Deduplicate while keeping order.
                    unique: list[JoinMethodSpec] = []
                    for method in methods:
                        if method not in unique:
                            unique.append(method)
                    methods = unique
                applied = [
                    state.builder.apply(replace(move, method=method))
                    for method in methods
                ]
            else:
                applied = [state.builder.apply(move)]
            for builder in applied:
                if builder.is_complete:
                    plan = builder.finish()
                    full_key = (state.assignment_key, topology_signature(plan))
                    if not self.config.dedup:
                        if full_key in self._seen_topologies:
                            continue
                        self._seen_topologies.add(full_key)
                    self._plan_refs.append(plan)
                    children.append(
                        self._fetch_state(
                            plan,
                            state.assignment,
                            len(self._plan_refs) - 1,
                            self._intern_dedup_key(*full_key),
                            self._initial_fetches(plan),
                            None,
                            state.depth + 1,
                        )
                    )
                else:
                    child = self._topo_state(
                        builder,
                        state.assignment,
                        state.assignment_key,
                        state.choice_index,
                        state.depth + 1,
                    )
                    if not self.config.dedup:
                        # Different move orders reach identical partial
                        # DAGs; enqueue one representative per signature.
                        partial = (state.assignment_key, child.partial_sig)
                        if partial in self._seen_partial:
                            continue
                        self._seen_partial.add(partial)
                    children.append(child)
        return children

    def _suggested_methods(self, builder, move) -> list[JoinMethodSpec]:
        """Join methods suggested by the merged branches' scoring shapes."""
        from repro.core.heuristics import suggest_join_methods
        from repro.plans.nodes import ServiceNode

        leaves = builder.leaves()
        assert move.stream is not None and move.other is not None

        def terminal_interface(leaf_id: str):
            node_id = leaf_id
            while True:
                node = builder.plan.node(node_id)
                if isinstance(node, ServiceNode):
                    return node.interface
                parents = builder.plan.parents(node_id)
                if not parents:
                    return None
                node_id = parents[0]

        left = terminal_interface(leaves[move.stream])
        right = terminal_interface(leaves[move.other])
        if left is None or right is None:
            return []
        return suggest_join_methods(
            left.scoring, right.scoring, chunk_size_x=left.chunk_size
        )

    @staticmethod
    def _initial_fetches(plan: QueryPlan) -> tuple[tuple[str, int], ...]:
        return tuple(
            (node.alias, 1)
            for node in plan.service_nodes()
            if node.interface is not None and node.interface.is_chunked
        )

    # -- phase 3 ----------------------------------------------------------------

    def _cached_annotations(
        self,
        plan: QueryPlan,
        plan_key: int,
        fetches: tuple[tuple[str, int], ...],
        parent: tuple[tuple[str, int], ...] | None = None,
    ) -> PlanAnnotations:
        """Memoized annotations, derived from the parent vector's when
        available (only the changed cone is recomputed)."""
        key = (plan_key, fetches)
        cached = self._ann_cache.get(key)
        if cached is not None:
            self._ann_cache.move_to_end(key)
            return cached
        base = self._ann_cache.get((plan_key, parent)) if parent is not None else None
        if base is not None:
            annotations = annotate_delta(
                plan,
                self.query,
                base,
                dict(parent),
                dict(fetches),
                estimator=self.estimator,
            )
        else:
            annotations = annotate(
                plan, self.query, fetches=dict(fetches), estimator=self.estimator
            )
        self._ann_cache[key] = annotations
        while len(self._ann_cache) > _ANN_CACHE_CAP:
            self._ann_cache.popitem(last=False)
        return annotations

    def _annotations(self, state: _FetchState) -> PlanAnnotations:
        if not self.config.incremental:
            return annotate(
                state.plan,
                self.query,
                fetches=dict(state.fetches),
                estimator=self.estimator,
            )
        return self._cached_annotations(
            state.plan, state.plan_key, state.fetches, state.parent_fetches
        )

    def _estimated_results(self, state: _FetchState) -> float:
        return self._annotations(state).estimated_results(state.plan)

    def _full_cost(self, state: _FetchState) -> float:
        """Memoized full-plan cost of a fetch state."""
        if not self.config.incremental:
            return self.config.metric.cost(state.plan, self._annotations(state))
        key = (state.plan_key, state.fetches)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = self.config.metric.cost(state.plan, self._annotations(state))
            self._cost_cache[key] = cost
        return cost

    def _annotate_fn_for(self, state: _FetchState) -> AnnotateFn:
        """The memoizing annotator threaded into phase-3 heuristics."""
        plan, plan_key = state.plan, state.plan_key

        def annotate_fn(
            fetches: Mapping[str, int],
            base: Mapping[str, int] | None = None,
        ) -> PlanAnnotations:
            vector = tuple(sorted((a, int(v)) for a, v in fetches.items()))
            parent = (
                tuple(sorted((a, int(v)) for a, v in base.items()))
                if base is not None
                else None
            )
            return self._cached_annotations(plan, plan_key, vector, parent)

        return annotate_fn

    def _cost_fn_for(self, state: _FetchState) -> CostFn:
        """Per-vector cost memo threaded into phase-3 heuristics; shares
        the cache that later prices the enqueued child states."""
        plan, plan_key = state.plan, state.plan_key
        metric = self.config.metric

        def cost_fn(fetches: Mapping[str, int], annotations) -> float:
            vector = tuple(sorted((a, int(v)) for a, v in fetches.items()))
            key = (plan_key, vector)
            cost = self._cost_cache.get(key)
            if cost is None:
                cost = metric.cost(plan, annotations)
                self._cost_cache[key] = cost
            return cost

        return cost_fn

    def _proposals(self, state: _FetchState) -> list[dict[str, int]]:
        """Phase-3 successor vectors, memoized per (plan, fetch vector)."""
        if not self.config.incremental:
            return self.config.phase3.propose(
                state.plan,
                self.query,
                dict(state.fetches),
                self.estimator,
                self.config.metric,
                self.k,
            )
        key = (state.plan_key, state.fetches)
        cached = self._proposal_cache.get(key)
        if cached is None:
            cached = self.config.phase3.propose(
                state.plan,
                self.query,
                dict(state.fetches),
                self.estimator,
                self.config.metric,
                self.k,
                annotate_fn=self._annotate_fn_for(state),
                cost_fn=self._cost_fn_for(state),
            )
            self._proposal_cache[key] = cached
        return cached

    def _expand_fetch(self, state: _FetchState) -> list:
        if self._estimated_results(state) >= self.k:
            return []  # leaf: handled by _is_leaf
        if state.depth >= self.config.max_phase3_depth:
            return []
        children = []
        for vector in self._proposals(state):
            fetches = tuple(sorted(vector.items()))
            if not self.config.dedup:
                key = (id(state.plan), fetches)
                if key in self._seen_fetches:
                    continue
                self._seen_fetches.add(key)
            children.append(
                self._fetch_state(
                    state.plan,
                    state.assignment,
                    state.plan_key,
                    state.dedup_key,
                    fetches,
                    state.fetches,
                    state.depth + 1,
                )
            )
        return children

    # -- B&B callbacks --------------------------------------------------------------

    def _expand(self, state) -> list:
        if isinstance(state, _AssignState):
            return self._expand_assign(state)
        if isinstance(state, _TopoState):
            return self._expand_topology(state)
        return self._expand_fetch(state)

    def _is_leaf(self, state) -> bool:
        if not isinstance(state, _FetchState):
            return False
        if self._estimated_results(state) >= self.k:
            return True
        if state.depth >= self.config.max_phase3_depth:
            return True
        # Saturated: no proposal can move any factor.
        return not self._proposals(state)

    def _leaf_value(self, state: _FetchState):
        annotations = self._annotations(state)
        cost = self._full_cost(state)
        results = annotations.estimated_results(state.plan)
        candidate = PlanCandidate(
            plan=state.plan,
            fetches=dict(state.fetches),
            annotations=annotations,
            cost=cost,
            estimated_results=results,
            satisfies_k=results >= self.k,
            assignment=dict(state.assignment),
            join_kernel=resolve_plan_join_kernel(
                state.plan, self.config.join_kernel
            ),
        )
        return cost, candidate, candidate.satisfies_k

    def _lower_bound(self, state) -> float:
        metric = self.config.metric
        if isinstance(state, _AssignState):
            fixed = [
                atom.interface
                for atom in self.query.atoms
                if atom.interface is not None
            ]
            chosen = [iface for _, iface in state.assignment]
            return metric.interfaces_lower_bound(fixed + chosen)
        if isinstance(state, _TopoState):
            def partial_annotations() -> PlanAnnotations:
                return annotate(
                    state.builder.plan,
                    self.query,
                    fetches={},
                    estimator=self.estimator,
                )

            if not self.config.incremental:
                return metric.partial_cost(
                    state.builder.plan, partial_annotations()
                )
            # Partial-plan costs depend only on the cost-relevant
            # signature (plus the interface assignment): memoized per
            # signature, the annotation walk runs only on a miss.
            sig_key = (state.assignment_key, state.partial_sig)
            return metric.cached_partial_cost(
                (self._cache_token, sig_key),
                state.builder.plan,
                partial_annotations,
            )
        return self._full_cost(state)

    def _signature(self, state) -> Hashable:
        return getattr(state, "signature", None)

    def _dominance(self, state):
        """Pareto key for fetch states: same plan, componentwise fetch
        vector (plus remaining phase-3 depth) — see DESIGN.md for the
        soundness argument."""
        if not isinstance(state, _FetchState):
            return None
        return (
            ("fetch-dom", state.plan_key),
            (float(state.depth), *(float(v) for _, v in state.fetches)),
        )

    @staticmethod
    def _depth(state) -> int:
        return state.depth

    @staticmethod
    def _phase_of(state) -> str:
        """Span label: which of the three phases a search state is in."""
        if isinstance(state, _AssignState):
            return "phase1:interfaces"
        if isinstance(state, _TopoState):
            return "phase2:topology"
        return "phase3:fetches"

    # -- entry points -----------------------------------------------------------------

    def greedy_candidate(self) -> PlanCandidate | None:
        """Follow the heuristics' first choice to one complete candidate.

        This is the pure-heuristic construction the chapter describes as
        "heuristics for choosing the branches so as to build efficient
        plans quickly"; its result seeds the branch-and-bound incumbent.
        """
        root = _AssignState(assignment=(), next_index=0, depth=0)
        stack = [root]
        dive_seen: set[Hashable] = set()
        steps = 0
        while stack:
            steps += 1
            if steps > 10_000:  # pragma: no cover - defensive
                raise OptimizationError("greedy dive failed to terminate")
            state = stack.pop()
            if isinstance(state, _FetchState) and self._is_leaf(state):
                _, candidate, _ = self._leaf_value(state)
                return candidate
            children = self._expand(state)
            if self.config.dedup:
                # The engine's hash-consing does not apply to this local
                # dive; an own seen-set keeps it from revisiting states.
                fresh = []
                for child in children:
                    signature = getattr(child, "signature", None)
                    if signature is not None:
                        if signature in dive_seen:
                            continue
                        dive_seen.add(signature)
                    fresh.append(child)
                children = fresh
            # Depth-first along the heuristics' first choice, backtracking
            # out of dead ends (e.g. a fork whose merge is degenerate).
            stack.extend(reversed(children))
        return None

    def optimize(self) -> OptimizationOutcome:
        """Run the three-phase branch-and-bound search."""
        tracer = self.tracer
        engine = BranchAndBound(
            expand=self._expand,
            is_leaf=self._is_leaf,
            leaf_value=self._leaf_value,
            lower_bound=self._lower_bound,
            prune=self.config.prune,
            depth_of=self._depth,
            signature_of=self._signature if self.config.dedup else None,
            dominance_of=(
                self._dominance
                if self.config.dominance and self.config.prune
                else None
            ),
            tracer=tracer,
            describe=self._phase_of,
        )
        initial = None
        if self.config.warm_start:
            with tracer.span("optimize.warm_start") as warm_span:
                seed = self.greedy_candidate()
                if seed is not None:
                    initial = (seed.cost, seed, seed.satisfies_k)
                    warm_span.set("cost", seed.cost)
                    warm_span.set("satisfies_k", seed.satisfies_k)
        # The warm start consumed the legacy dedup sets; reset so the
        # search space is complete.  (The memoization caches survive on
        # purpose: a cached annotation is valid whoever asks for it.)
        self._seen_topologies.clear()
        self._seen_partial.clear()
        self._seen_fetches.clear()
        root = _AssignState(assignment=(), next_index=0, depth=0)
        with tracer.span("optimize.search", k=self.k) as span:
            outcome = engine.run(
                root, budget=self.config.budget, initial=initial
            )
            span.set("expanded", outcome.stats.expanded)
            span.set("pruned", outcome.stats.pruned)
            span.set("leaves", outcome.stats.leaves)
            span.set("deduped", outcome.stats.deduped)
            span.set("dominated", outcome.stats.dominated)
            if outcome.payload is not None:
                span.set("best_cost", outcome.cost)
        return OptimizationOutcome(
            best=outcome.payload,
            stats=outcome.stats,
            incumbents=outcome.incumbents,
        )


def optimize_query(
    query: CompiledQuery, config: OptimizerConfig | None = None
) -> PlanCandidate:
    """Optimize and return the best candidate, raising when none exists."""
    outcome = Optimizer(query, config).optimize()
    if outcome.best is None:
        raise OptimizationError("no feasible plan found")
    return outcome.best


# ----------------------------------------------------------------------------- #
# Plan signatures (cross-request optimizer reuse)
# ----------------------------------------------------------------------------- #

#: Signature schema version; bump when the normalization rules change so
#: persisted/capped caches keyed on old signatures cannot alias new ones.
#: v2: the join-kernel choice joined the signature — a plan compiled for
#: one kernel must never be replayed under another.
_SIGNATURE_VERSION = 2


def _operand_signature(operand) -> tuple:
    """Canonical form of a selection operand.

    INPUT variables normalise to their *name only*: the chosen plan does
    not depend on the runtime binding (estimation uses domain statistics,
    not values), which is exactly what lets one cached plan serve every
    parameterization of a query template.  Literal constants stay in the
    signature (type-qualified), since two queries with different baked-in
    constants are different queries even if today's estimator prices them
    alike.
    """
    from repro.query.ast import InputRef

    if isinstance(operand, InputRef):
        return ("input", operand.name.upper())
    return ("const", type(operand).__qualname__, repr(operand))


def plan_signature(
    query: CompiledQuery,
    metric: "CostMetric | str | None" = None,
    k: int | None = None,
    join_kernel: str = "binary",
) -> tuple:
    """Canonical, hashable signature of a compiled query for plan caching.

    Two compiled queries with equal signatures are interchangeable for
    optimization: same atoms (alias → mart/interface), same predicate
    structure, same ranking weights, same ``k``, the same cost metric,
    and the same requested ``join_kernel`` (an ``auto`` request is its
    own signature: it resolves per plan, so it can never alias an
    explicit choice).  Alias *order* and join-side order are normalised
    away; INPUT bindings are deliberately excluded (see
    :func:`_operand_signature`).  The signature does **not** identify the
    registry — callers caching across registries must scope their keys by
    a registry identity of their own (the serving runtime keys by schema
    name).
    """
    metric_name = (
        metric
        if isinstance(metric, str)
        else type(metric).__name__
        if metric is not None
        else None
    )
    atoms = tuple(
        sorted(
            (
                atom.alias,
                atom.mart.name,
                atom.interface.name if atom.interface is not None else None,
            )
            for atom in query.atoms
        )
    )
    selections = tuple(
        sorted(
            (
                str(sel.attr),
                sel.comparator.value,
                _operand_signature(sel.operand),
            )
            for sel in query.selections
        )
    )

    def join_sides(join) -> tuple:
        left = (str(join.left), join.comparator.value, str(join.right))
        right = (str(join.right), join.comparator.flipped.value, str(join.left))
        return min(left, right)

    joins = tuple(
        sorted(
            (*join_sides(join), join.pattern, join.selectivity)
            for join in query.joins
        )
    )
    ranking = tuple(sorted(query.ranking.weights.items()))
    return (
        "plan-sig",
        _SIGNATURE_VERSION,
        metric_name,
        join_kernel,
        query.k if k is None else k,
        atoms,
        selections,
        joins,
        ranking,
    )
