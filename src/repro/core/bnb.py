"""Generic best-first branch-and-bound engine (Section 5.2, Fig. 8).

The chapter's optimizer is "an incremental construction of query plans ...
Each choice in any of the three phases determines a subdivision of the
search space into non-overlapping subsets, which is an ideal branching.
Then, thanks to the mentioned monotonicity, each subset can be assigned a
lower bound for the cost by calculating the cost on the partially
constructed plan. ... if the lower bound for some class A is greater than
the upper bound for some other class B, then A ... may be safely
discarded."

This module hosts the problem-independent engine: a best-first exploration
over abstract states with

* ``expand(state)`` — children of a non-leaf state;
* ``leaf_value(state)`` — ``(cost, payload, satisfies)`` for leaves, where
  ``satisfies`` marks leaves that meet the goal (k results); incumbent
  preference is "satisfying, then cheapest", and pruning compares lower
  bounds against the best *satisfying* incumbent only;
* ``lower_bound(state)`` — a monotone optimistic cost.

The search is **anytime** (Section 5.2: "the search for the optimal plan
can be stopped at any time, and it will nevertheless return a valid
solution"): a node budget bounds expansions, and the incumbent trace
records every improvement with the expansion count at which it occurred.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, TypeVar

__all__ = ["BnBStats", "BnBOutcome", "BranchAndBound"]

S = TypeVar("S")  # search state
P = TypeVar("P")  # leaf payload


@dataclass
class BnBStats:
    """Exploration accounting."""

    expanded: int = 0
    pruned: int = 0
    leaves: int = 0
    incumbent_updates: int = 0
    enqueued: int = 0
    budget_exhausted: bool = False


@dataclass
class BnBOutcome(Generic[P]):
    """Search result: best payload plus statistics and incumbent history."""

    payload: P | None
    cost: float
    satisfies: bool
    stats: BnBStats
    # (expansions at improvement, cost, satisfies) per incumbent update.
    incumbents: list[tuple[int, float, bool]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.payload is not None


class BranchAndBound(Generic[S, P]):
    """Best-first branch and bound over user-supplied callbacks.

    Parameters
    ----------
    expand:
        Children of a state; called only on non-leaves.
    is_leaf:
        Leaf predicate.
    leaf_value:
        ``(cost, payload, satisfies)`` of a leaf.
    lower_bound:
        Monotone optimistic cost of any completion of the state.
    prune:
        Enable the bounding/pruning step (disable for ablation E12).
    depth_of:
        Optional depth function; deeper states win ties so the search
        dives to a first incumbent quickly (quasi-greedy warm start).
    """

    def __init__(
        self,
        expand: Callable[[S], Iterable[S]],
        is_leaf: Callable[[S], bool],
        leaf_value: Callable[[S], tuple[float, P, bool]],
        lower_bound: Callable[[S], float],
        prune: bool = True,
        depth_of: Callable[[S], int] | None = None,
    ) -> None:
        self._expand = expand
        self._is_leaf = is_leaf
        self._leaf_value = leaf_value
        self._lower_bound = lower_bound
        self._prune = prune
        self._depth_of = depth_of or (lambda state: 0)

    def run(
        self,
        root: S,
        budget: int | None = None,
        initial: tuple[float, P, bool] | None = None,
    ) -> BnBOutcome[P]:
        """Search from ``root``; ``initial`` seeds the incumbent (e.g. from
        a greedy heuristic dive), enabling pruning from the first pop."""
        stats = BnBStats()
        incumbents: list[tuple[int, float, bool]] = []
        best_payload: P | None = None
        best_cost = float("inf")
        best_satisfies = False
        if initial is not None:
            best_cost, best_payload, best_satisfies = initial
            incumbents.append((0, best_cost, best_satisfies))
        counter = itertools.count()

        heap: list[tuple[float, int, int, S]] = []

        def push(state: S) -> None:
            bound = self._lower_bound(state)
            heapq.heappush(
                heap, (bound, -self._depth_of(state), next(counter), state)
            )
            stats.enqueued += 1

        def consider_leaf(state: S) -> None:
            nonlocal best_payload, best_cost, best_satisfies
            cost, payload, satisfies = self._leaf_value(state)
            stats.leaves += 1
            better = (satisfies, -cost) > (best_satisfies, -best_cost)
            if best_payload is None or better:
                best_payload = payload
                best_cost = cost
                best_satisfies = satisfies
                stats.incumbent_updates += 1
                incumbents.append((stats.expanded, cost, satisfies))

        push(root)
        while heap:
            if budget is not None and stats.expanded >= budget:
                stats.budget_exhausted = True
                break
            bound, _, _, state = heapq.heappop(heap)
            if self._prune and best_satisfies and bound >= best_cost:
                stats.pruned += 1
                continue
            if self._is_leaf(state):
                consider_leaf(state)
                continue
            stats.expanded += 1
            for child in self._expand(state):
                if self._prune and best_satisfies:
                    if self._lower_bound(child) >= best_cost:
                        stats.pruned += 1
                        continue
                push(child)

        return BnBOutcome(
            payload=best_payload,
            cost=best_cost,
            satisfies=best_satisfies,
            stats=stats,
            incumbents=incumbents,
        )
