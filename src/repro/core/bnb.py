"""Generic best-first branch-and-bound engine (Section 5.2, Fig. 8).

The chapter's optimizer is "an incremental construction of query plans ...
Each choice in any of the three phases determines a subdivision of the
search space into non-overlapping subsets, which is an ideal branching.
Then, thanks to the mentioned monotonicity, each subset can be assigned a
lower bound for the cost by calculating the cost on the partially
constructed plan. ... if the lower bound for some class A is greater than
the upper bound for some other class B, then A ... may be safely
discarded."

This module hosts the problem-independent engine: a best-first exploration
over abstract states with

* ``expand(state)`` — children of a non-leaf state;
* ``leaf_value(state)`` — ``(cost, payload, satisfies)`` for leaves, where
  ``satisfies`` marks leaves that meet the goal (k results); incumbent
  preference is "satisfying, then cheapest", and pruning compares lower
  bounds against the best *satisfying* incumbent only;
* ``lower_bound(state)`` — a monotone optimistic cost;
* ``signature_of(state)`` — optional canonical signature: two states with
  the same signature root identical subtrees, so only the first one
  *actually enqueued* claims it (hash-consing; ``stats.deduped`` counts
  the drops).  Signatures of states rejected by pruning or dominance are
  not recorded — a later equivalent push must be re-judged, because the
  rejected state was never going to be explored;
* ``dominance_of(state)`` — optional ``(group, vector)``: a state whose
  (bound, \\*vector) is componentwise >= that of a state **currently in
  the open queue** of the same group explores a subset of that state's
  completions at no lower cost, so it is dropped (``stats.dominated``).
  The frontier holds only queued states — an entry is retired when its
  state is popped — because a popped state has already spent its one
  expansion and no longer stands in for its subtree; keeping its entry
  would let a parent dominate its own children and wedge the search.
  Only sound when every completion of the dominated state is reachable
  from the dominating one and the metric is monotone — the caller asserts
  that by supplying the callback.

The search is **anytime** (Section 5.2: "the search for the optimal plan
can be stopped at any time, and it will nevertheless return a valid
solution"): a node budget bounds expansions, and the incumbent trace
records every improvement with the expansion count at which it occurred.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Iterable, TypeVar

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, coerce_tracer

__all__ = ["BnBStats", "BnBOutcome", "BranchAndBound"]

S = TypeVar("S")  # search state
P = TypeVar("P")  # leaf payload

#: Pareto-frontier entries kept per dominance group; past this the check
#: degrades gracefully to "record nothing new" rather than growing without
#: bound.
_MAX_FRONTIER = 64


@dataclass
class BnBStats:
    """Exploration accounting."""

    expanded: int = 0
    pruned: int = 0
    leaves: int = 0
    incumbent_updates: int = 0
    enqueued: int = 0
    #: States dropped because an identical-signature state was enqueued.
    deduped: int = 0
    #: States dropped because a same-group state dominates them.
    dominated: int = 0
    budget_exhausted: bool = False


@dataclass
class BnBOutcome(Generic[P]):
    """Search result: best payload plus statistics and incumbent history."""

    payload: P | None
    cost: float
    satisfies: bool
    stats: BnBStats
    # (expansions at improvement, cost, satisfies) per incumbent update.
    incumbents: list[tuple[int, float, bool]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.payload is not None


class BranchAndBound(Generic[S, P]):
    """Best-first branch and bound over user-supplied callbacks.

    Parameters
    ----------
    expand:
        Children of a state; called only on non-leaves.
    is_leaf:
        Leaf predicate.
    leaf_value:
        ``(cost, payload, satisfies)`` of a leaf.
    lower_bound:
        Monotone optimistic cost of any completion of the state.
    prune:
        Enable the bounding/pruning step (disable for ablation E12).
    depth_of:
        Optional depth function; deeper states win ties so the search
        dives to a first incumbent quickly (quasi-greedy warm start).
    signature_of:
        Optional canonical signature; ``None`` results exempt a state from
        deduplication.  See module docstring.
    dominance_of:
        Optional ``(group, vector)`` for dominance pruning; ``None``
        results exempt a state.  See module docstring.
    tracer:
        Observability context; every node expansion becomes a
        ``bnb.expand`` span (with its bound, depth, and child count) and
        every leaf evaluation a ``bnb.leaf`` span.  The default no-op
        tracer keeps the hot loop free of tracing work.
    describe:
        Optional short label for a state (e.g. its phase); recorded as
        the expansion span's ``kind`` attribute.
    """

    def __init__(
        self,
        expand: Callable[[S], Iterable[S]],
        is_leaf: Callable[[S], bool],
        leaf_value: Callable[[S], tuple[float, P, bool]],
        lower_bound: Callable[[S], float],
        prune: bool = True,
        depth_of: Callable[[S], int] | None = None,
        signature_of: Callable[[S], Hashable | None] | None = None,
        dominance_of: (
            Callable[[S], tuple[Hashable, tuple[float, ...]] | None] | None
        ) = None,
        tracer: "Tracer | NullTracer | None" = None,
        describe: Callable[[S], str] | None = None,
    ) -> None:
        self._expand = expand
        self._is_leaf = is_leaf
        self._leaf_value = leaf_value
        self._lower_bound = lower_bound
        self._prune = prune
        self._depth_of = depth_of or (lambda state: 0)
        self._signature_of = signature_of
        self._dominance_of = dominance_of
        self._tracer = coerce_tracer(tracer)
        self._describe = describe

    def run(
        self,
        root: S,
        budget: int | None = None,
        initial: tuple[float, P, bool] | None = None,
    ) -> BnBOutcome[P]:
        """Search from ``root``; ``initial`` seeds the incumbent (e.g. from
        a greedy heuristic dive), enabling pruning from the first pop."""
        stats = BnBStats()
        incumbents: list[tuple[int, float, bool]] = []
        best_payload: P | None = None
        best_cost = float("inf")
        best_satisfies = False
        if initial is not None:
            best_cost, best_payload, best_satisfies = initial
            incumbents.append((0, best_cost, best_satisfies))
        counter = itertools.count()

        heap: list[tuple[float, int, int, S]] = []
        seen: set[Hashable] = set()
        frontiers: dict[Hashable, list[tuple[float, ...]]] = {}

        def frontier_entry(
            state: S, bound: float
        ) -> tuple[Hashable, tuple[float, ...]] | None:
            if self._dominance_of is None:
                return None
            entry = self._dominance_of(state)
            if entry is None:
                return None
            group, vector = entry
            return group, (bound, *vector)

        def retire(state: S, bound: float) -> None:
            """Drop a popped state's frontier entry: it no longer stands
            in for its (now materialised) subtree."""
            entry = frontier_entry(state, bound)
            if entry is None:
                return
            group, full = entry
            frontier = frontiers.get(group)
            if frontier and full in frontier:
                frontier.remove(full)

        def push(state: S) -> None:
            """Enqueue unless deduplicated, prunable, or dominated."""
            signature = (
                self._signature_of(state)
                if self._signature_of is not None
                else None
            )
            if signature is not None and signature in seen:
                stats.deduped += 1
                return
            bound = self._lower_bound(state)
            if self._prune and best_satisfies and bound >= best_cost:
                stats.pruned += 1
                return
            entry = frontier_entry(state, bound)
            if entry is not None:
                group, full = entry
                frontier = frontiers.setdefault(group, [])
                for other in frontier:
                    if len(other) == len(full) and all(
                        a <= b for a, b in zip(other, full)
                    ):
                        stats.dominated += 1
                        return
                if len(frontier) < _MAX_FRONTIER:
                    frontier.append(full)
            if signature is not None:
                seen.add(signature)
            heapq.heappush(
                heap, (bound, -self._depth_of(state), next(counter), state)
            )
            stats.enqueued += 1

        def consider_leaf(state: S) -> None:
            nonlocal best_payload, best_cost, best_satisfies
            cost, payload, satisfies = self._leaf_value(state)
            stats.leaves += 1
            better = (satisfies, -cost) > (best_satisfies, -best_cost)
            if best_payload is None or better:
                best_payload = payload
                best_cost = cost
                best_satisfies = satisfies
                stats.incumbent_updates += 1
                incumbents.append((stats.expanded, cost, satisfies))

        push(root)
        while heap:
            if budget is not None and stats.expanded >= budget:
                stats.budget_exhausted = True
                break
            bound, _, _, state = heapq.heappop(heap)
            retire(state, bound)
            if self._prune and best_satisfies and bound >= best_cost:
                stats.pruned += 1
                continue
            tracer = self._tracer
            if self._is_leaf(state):
                if tracer.enabled:
                    with tracer.span(
                        "bnb.leaf", bound=bound, depth=self._depth_of(state)
                    ):
                        consider_leaf(state)
                else:
                    consider_leaf(state)
                continue
            stats.expanded += 1
            if tracer.enabled:
                with tracer.span(
                    "bnb.expand",
                    bound=bound,
                    depth=self._depth_of(state),
                    kind=(
                        self._describe(state) if self._describe else "state"
                    ),
                ) as span:
                    children = list(self._expand(state))
                    span.set("children", len(children))
            else:
                children = self._expand(state)
            for child in children:
                push(child)

        return BnBOutcome(
            payload=best_payload,
            cost=best_cost,
            satisfies=best_satisfies,
            stats=stats,
            incumbents=incumbents,
        )
