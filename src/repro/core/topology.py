"""Phase 2: incremental construction of query-plan topologies.

Section 5.4: "The construction of all possible DAGs for a query plan can
be done incrementally.  It starts by placing after the initial node some
node corresponding to a reachable service, and then by progressively
adding nodes corresponding to services that are reachable by virtue of the
user input variables and the services already included in the query.
Nodes can be added in series or in parallel with respect to already
included nodes, compatibly with the constraints enforced by I/O
dependencies."

The :class:`TopologyBuilder` is that incremental constructor.  Following
the chapter's wording literally, a service can be **attached after any
already-placed node** whose upstream flow covers its pipe dependencies:

* attaching after the input node *starts* a new branch (a source service
  bound only by constants/INPUT variables);
* attaching after a branch's current leaf *extends* it serially (a pipe
  join when the service is piped from that branch, a serial composition
  with a join-filter selection otherwise);
* attaching after an interior node *forks* a parallel branch at that
  point (Fig. 2's Flight/Hotel branches both fed by the Conference/
  Weather prefix).

The open branches are exactly the DAG's current *leaves*; a **merge** move
joins two leaves with an explicit parallel-join node carrying the join
predicates that cross them.  Merges that would be degenerate (one branch
subsuming the other) or cost-dominated (re-combining branches that share a
prefix one side carries gratuitously) are filtered — see
:meth:`TopologyBuilder.available_moves`.

Enumeration deduplicates complete plans by :func:`topology_signature` — a
cost-relevant canonical form under which serial chains that differ only in
the order of adjacent *unpiped* services coincide (their annotations,
hence costs, are identical under every metric).  With that
canonicalisation the running example yields exactly the four alternative
topologies of Fig. 9.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

from repro.errors import PlanError
from repro.joins.spec import JoinMethodSpec
from repro.model.service import ServiceInterface
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import QueryPlan
from repro.query.ast import JoinPredicate
from repro.query.compile import CompiledQuery
from repro.query.feasibility import BindingChoice, ProviderKind

__all__ = [
    "Move",
    "TopologyBuilder",
    "enumerate_topologies",
    "topology_signature",
]

InterfaceAssignment = Mapping[str, ServiceInterface]


@dataclass(frozen=True)
class Move:
    """One construction step.

    ``kind`` is the flavour the heuristics rank:

    * ``start``  — attach a source service after the input node;
    * ``extend`` — attach a service after a current leaf (serial);
    * ``fork``   — attach a service after an interior node (parallel
      branch at that point);
    * ``merge``  — join two leaves with a parallel-join node.
    """

    kind: str  # "start" | "extend" | "fork" | "merge"
    alias: str | None = None
    node: str | None = None  # attach point for start/extend/fork
    stream: int | None = None  # leaf indexes for merge
    other: int | None = None
    method: JoinMethodSpec | None = None

    def __str__(self) -> str:
        if self.kind == "merge":
            return f"merge(#{self.stream}, #{self.other}, {self.method})"
        return f"{self.kind}({self.alias} after {self.node})"


@dataclass
class TopologyBuilder:
    """Mutable-by-copy incremental plan constructor (one search-tree node)."""

    query: CompiledQuery
    assignment: Mapping[str, ServiceInterface]
    choice: BindingChoice
    plan: QueryPlan = field(default_factory=QueryPlan)
    placed: frozenset[str] = frozenset()
    realized: frozenset[JoinPredicate] = frozenset()
    _counter: int = 0

    @classmethod
    def initial(
        cls,
        query: CompiledQuery,
        assignment: Mapping[str, ServiceInterface],
        choice: BindingChoice,
    ) -> "TopologyBuilder":
        plan = QueryPlan()
        plan.add(InputNode())
        return cls(query=query, assignment=assignment, choice=choice, plan=plan)

    # -- introspection ----------------------------------------------------------

    def leaves(self) -> tuple[str, ...]:
        """Current open branches: nodes with no children (input excluded
        once construction has begun)."""
        out = []
        for node_id in self.plan.nodes:
            if self.plan.children(node_id):
                continue
            if isinstance(self.plan.node(node_id), InputNode) and self.placed:
                continue
            out.append(node_id)
        return tuple(sorted(out))

    def upstream_aliases(self, node_id: str) -> frozenset[str]:
        """Aliases whose tuples flow through ``node_id`` (inclusive)."""
        seen: set[str] = set()
        aliases: set[str] = set()
        stack = [node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.plan.node(current)
            if isinstance(node, ServiceNode):
                aliases.add(node.alias)
            stack.extend(self.plan.parents(current))
        return frozenset(aliases)

    @property
    def is_complete(self) -> bool:
        if self.placed != frozenset(self.query.aliases):
            return False
        return len(self.leaves()) == 1

    def dependencies(self, alias: str) -> frozenset[str]:
        return self.choice.dependencies_over(self.query.aliases)[alias]

    def interface_of(self, alias: str) -> ServiceInterface:
        atom = self.query.atom(alias)
        if atom.interface is not None:
            return atom.interface
        return self.assignment[alias]

    # -- move generation ----------------------------------------------------------

    def available_moves(self) -> list[Move]:
        """All legal construction steps from this state."""
        moves: list[Move] = []
        leaves = self.leaves()
        leaf_set = set(leaves)
        unplaced = [a for a in self.query.aliases if a not in self.placed]

        for alias in unplaced:
            deps = self.dependencies(alias)
            for node_id in self.plan.nodes:
                if isinstance(self.plan.node(node_id), InputNode):
                    if not deps:
                        moves.append(Move("start", alias=alias, node=node_id))
                    continue
                if not deps <= self.upstream_aliases(node_id):
                    continue
                kind = "extend" if node_id in leaf_set else "fork"
                if kind == "fork" and not deps:
                    # Branching an unpiped service off an interior node is
                    # never cheaper than starting it from the input.
                    continue
                moves.append(Move(kind, alias=alias, node=node_id))

        for i, j in itertools.combinations(range(len(leaves)), 2):
            left = self.upstream_aliases(leaves[i])
            right = self.upstream_aliases(leaves[j])
            if left <= right or right <= left:
                continue  # degenerate merge: one branch subsumes the other
            shared = left & right
            if shared and not self._crossing_joins(left, right):
                # Overlapping branches with no crossing predicate join
                # purely on shared provenance.  Legitimate when both
                # branches *need* the shared prefix (a star query's
                # satellites); a dominated re-combination when one branch
                # carries a shared service gratuitously — the filter that
                # keeps the running example at its four Fig. 9 topologies.
                if not (
                    self._prefix_justified(left, shared)
                    and self._prefix_justified(right, shared)
                ):
                    continue
            moves.append(
                Move("merge", stream=i, other=j, method=JoinMethodSpec())
            )
        return moves

    def _crossing_joins(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[JoinPredicate, ...]:
        """Unrealised join predicates crossing the two alias sets."""
        union = left | right
        return tuple(
            join
            for join in self.query.joins
            if join not in self.realized
            and join.left.alias in union
            and join.right.alias in union
            and not join.aliases <= left
            and not join.aliases <= right
        )

    def _prefix_justified(
        self, side: frozenset[str], shared: frozenset[str]
    ) -> bool:
        """Every shared alias is a (transitive) pipe ancestor of an extra."""
        deps = self.choice.dependencies_over(self.query.aliases)

        def ancestors(alias: str) -> frozenset[str]:
            seen: set[str] = set()
            stack = list(deps[alias])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(deps[node])
            return frozenset(seen)

        extras = side - shared
        return all(
            any(alias in ancestors(extra) for extra in extras) for alias in shared
        )

    # -- application --------------------------------------------------------------

    def apply(self, move: Move) -> "TopologyBuilder":
        """Return a new builder with ``move`` applied (self is untouched)."""
        child = replace(
            self,
            plan=self.plan.copy(),
            placed=self.placed,
            realized=self.realized,
        )
        if move.kind in ("start", "extend", "fork"):
            assert move.node is not None
            child._attach(move.alias or "", move.node)
        elif move.kind == "merge":
            assert move.stream is not None and move.other is not None
            child._merge(move.stream, move.other, move.method or JoinMethodSpec())
        else:  # pragma: no cover - defensive
            raise PlanError(f"unknown move kind {move.kind!r}")
        return child

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}:{self._counter}"

    def _service_node(self, alias: str) -> ServiceNode:
        interface = self.interface_of(alias)
        providers = tuple(p for p in self.choice.providers if p.alias == alias)
        # Selections consumed as input bindings (equality or range, e.g.
        # "Openings.Date > INPUT3") are applied server-side by the service
        # and are already reflected in its average-cardinality statistic,
        # so they are not pushed client-side filters.
        binding_sels = {
            id(p.selection)
            for p in providers
            if p.kind is ProviderKind.CONSTANT and p.selection is not None
        }
        pushed = tuple(
            sel
            for sel in self.query.selections_on(alias)
            if id(sel) not in binding_sels
        )
        return ServiceNode(
            node_id=f"svc:{alias}",
            alias=alias,
            interface=interface,
            providers=providers,
            pushed_selections=pushed,
        )

    def _consumed_joins(self, alias: str) -> frozenset[JoinPredicate]:
        """Join predicates realised by this alias's pipe bindings."""
        return frozenset(
            p.join
            for p in self.choice.providers
            if p.alias == alias and p.join is not None
        )

    def _attach(self, alias: str, parent: str) -> None:
        """Append ``alias``'s service (plus newly evaluable join-filter
        selections) after node ``parent``."""
        node = self.plan.add(self._service_node(alias))
        self.plan.connect(parent, node)
        head = node.node_id
        aliases = self.upstream_aliases(parent) | {alias}
        self.placed = self.placed | {alias}
        self.realized = self.realized | self._consumed_joins(alias)
        residual = tuple(
            j
            for j in self.query.joins_involving(alias)
            if j not in self.realized and j.aliases <= aliases
        )
        if residual:
            sel = self.plan.add(
                SelectionNode(node_id=self._next_id("sel"), join_filters=residual)
            )
            self.plan.connect(head, sel)
            self.realized = self.realized | frozenset(residual)

    def _merge(self, i: int, j: int, method: JoinMethodSpec) -> None:
        leaves = self.leaves()
        left_head, right_head = leaves[i], leaves[j]
        left = self.upstream_aliases(left_head)
        right = self.upstream_aliases(right_head)
        predicates = self._crossing_joins(left, right)
        node = self.plan.add(
            ParallelJoinNode(
                node_id=self._next_id("join"),
                predicates=predicates,
                method=method,
            )
        )
        self.plan.connect(left_head, node)
        self.plan.connect(right_head, node)
        self.realized = self.realized | frozenset(predicates)

    def finish(self) -> QueryPlan:
        """Connect the single remaining leaf to the output and validate."""
        if not self.is_complete:
            raise PlanError("cannot finish an incomplete topology")
        plan = self.plan.copy()
        head = self.leaves()[0]
        leftovers = tuple(j for j in self.query.joins if j not in self.realized)
        if leftovers:
            sel = SelectionNode(node_id="sel:final", join_filters=leftovers)
            plan.add(sel)
            plan.connect(head, sel)
            head = sel.node_id
        plan.add(OutputNode())
        plan.connect(head, plan.output_node)
        return plan.validate()


def topology_signature(plan: QueryPlan) -> tuple:
    """Cost-relevant canonical signature of a plan topology.

    Two plans with the same signature have identical annotations (hence
    identical costs under every metric of Section 5.1): the signature
    records, for every service node, its interface, whether it is piped,
    and — only when its calls depend on upstream flow (piped consumers) —
    the set of upstream aliases; plus the branch structure of parallel
    joins and the upstream sets of selection nodes.
    """

    upstream: dict[str, frozenset[str]] = {}
    for node_id in plan.topological_order():
        acc: set[str] = set()
        for parent in plan.parents(node_id):
            acc |= upstream[parent]
            parent_node = plan.node(parent)
            if isinstance(parent_node, ServiceNode):
                acc.add(parent_node.alias)
        upstream[node_id] = frozenset(acc)

    services = []
    for node in plan.service_nodes():
        piped = bool(node.pipe_sources)
        assert node.interface is not None
        services.append(
            (
                node.alias,
                node.interface.name,
                piped,
                upstream[node.node_id] if piped else None,
            )
        )
    joins = []
    for node in plan.join_nodes():
        left, right = plan.parents(node.node_id)
        branches = frozenset(
            (
                upstream[left] | _own_alias(plan, left),
                upstream[right] | _own_alias(plan, right),
            )
        )
        joins.append(
            (
                frozenset(str(p) for p in node.predicates),
                branches,
                node.method.label,
            )
        )
    selections = []
    for node in plan.selection_nodes():
        predicates = frozenset(
            [str(p) for p in node.selections] + [str(p) for p in node.join_filters]
        )
        selections.append((predicates, upstream[node.node_id]))

    return (
        tuple(sorted(services)),
        tuple(sorted(joins, key=str)),
        tuple(sorted(selections, key=str)),
    )


def _own_alias(plan: QueryPlan, node_id: str) -> frozenset[str]:
    node = plan.node(node_id)
    if isinstance(node, ServiceNode):
        return frozenset({node.alias})
    return frozenset()


def enumerate_topologies(
    query: CompiledQuery,
    assignment: Mapping[str, ServiceInterface],
    choice: BindingChoice,
    method_options: Sequence[JoinMethodSpec] = (JoinMethodSpec(),),
    limit: int | None = None,
) -> Iterator[QueryPlan]:
    """Yield all distinct complete topologies (deduplicated by signature).

    ``method_options`` lists the join-method specifications tried at every
    merge (the default is the sensible parallel default, merge-scan with
    triangular completion); passing several multiplies the space
    accordingly.
    """
    seen: set[tuple] = set()
    seen_partial: set[tuple] = set()
    produced = 0

    def recurse(state: TopologyBuilder) -> Iterator[QueryPlan]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if state.is_complete:
            plan = state.finish()
            signature = topology_signature(plan)
            if signature not in seen:
                seen.add(signature)
                produced += 1
                yield plan
            return
        # Different move orders reach identical partial DAGs (attaching X
        # then Y vs. Y then X); expanding one representative suffices.
        partial = topology_signature(state.plan)
        if partial in seen_partial:
            return
        seen_partial.add(partial)
        for move in state.available_moves():
            if move.kind == "merge":
                for method in method_options:
                    yield from recurse(state.apply(replace(move, method=method)))
            else:
                yield from recurse(state.apply(move))

    yield from recurse(TopologyBuilder.initial(query, assignment, choice))
