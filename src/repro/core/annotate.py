"""Plan annotation: estimating tuple flow and call counts per node.

Section 3.2 defines the annotation rules that turn a plan into a *fully
instantiated query plan* (Figs. 3 and 10):

* the user "always injects one single input tuple", so the input node has
  ``tout = 1``;
* for **exact services**, ``tout = tin * avg_cardinality`` (times the
  selectivity of pushed-down selections, which is what makes a service
  "selective in the context of a query");
* for **search services**, ``tout`` is "the product of the chunk size with
  the total number FS of fetches determined by the plan, which may in turn
  depend on the input tin" — per input tuple the node issues its fetch
  factor ``F`` calls and retrieves ``F * chunk`` tuples (capped by the
  service's average cardinality);
* a **pipe-joined** service additionally multiplies the selectivity of the
  join predicates it realises (Section 5.6: Restaurant receives 25 input
  theatres and the 40% DinnerPlace selectivity leaves ``tout = 10``);
* **selection nodes** multiply their predicate selectivity;
* **parallel joins** process ``tout_left * tout_right`` candidate
  combinations — halved by a triangular completion strategy, which
  considers only "the most promising" half of the Cartesian product
  (Section 5.6's 2500 → 1250) — and output candidates times the join
  selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import PlanError
from repro.joins.spec import CompletionStrategy
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import NodeAnnotation, PlanAnnotations, QueryPlan
from repro.query.compile import CompiledQuery
from repro.stats.estimate import Estimator, combined_selection_selectivity

__all__ = [
    "annotate",
    "annotate_delta",
    "AnnotationCounters",
    "ANNOTATION_COUNTERS",
    "TRIANGULAR_CANDIDATE_FACTOR",
    "pipe_join_selectivity",
]


@dataclass
class AnnotationCounters:
    """Global accounting of annotation work (the optimizer's hot path).

    ``node_evals`` counts individual node-annotation computations;
    ``full_annotations``/``delta_annotations`` count whole-plan walks vs.
    incremental re-walks.  The benchmark harness resets and reads these to
    measure how much recomputation the memoization layers avoid.
    """

    node_evals: int = 0
    full_annotations: int = 0
    delta_annotations: int = 0

    def reset(self) -> None:
        self.node_evals = 0
        self.full_annotations = 0
        self.delta_annotations = 0


#: Process-wide counter instance (the benchmarks reset it between runs).
ANNOTATION_COUNTERS = AnnotationCounters()

#: Fraction of the chunk Cartesian product a triangular completion
#: strategy actually processes (Section 5.6: "choosing a triangular
#: completion strategy assures that only the half of the most promising
#: combinations ... are considered").
TRIANGULAR_CANDIDATE_FACTOR = 0.5


def pipe_join_selectivity(
    node: ServiceNode, query: CompiledQuery, estimator: Estimator
) -> float:
    """Selectivity of the join predicates this pipe consumer realises."""
    result = 1.0
    seen: set[frozenset[str]] = set()
    for producer in node.pipe_sources:
        pair = frozenset((node.alias, producer))
        if pair in seen:
            continue
        seen.add(pair)
        result *= estimator.join_selectivity(node.alias, producer)
    return result


def _service_annotation(
    node: ServiceNode,
    tin: float,
    query: CompiledQuery,
    estimator: Estimator,
    fetches: Mapping[str, int],
) -> NodeAnnotation:
    interface = node.interface
    assert interface is not None
    pushed = combined_selection_selectivity(
        node.pushed_selections, query.atom(node.alias).mart
    )
    pipe_sel = pipe_join_selectivity(node, query, estimator)

    # A piped consumer needs one invocation per upstream tuple (each tuple
    # carries fresh bindings); a service bound only by constants/INPUT
    # variables is invoked once, whatever its tin (serial compositions
    # reuse the single result set for every upstream tuple).
    invocations = tin if node.pipe_sources else min(tin, 1.0)

    if interface.is_chunked:
        factor = int(fetches.get(node.alias, 1))
        if factor < 1:
            raise PlanError(f"fetch factor for {node.alias!r} must be >= 1")
        per_input = min(
            factor * interface.chunk_size, max(interface.stats.avg_cardinality, 0.0)
        )
        calls = invocations * factor
    else:
        factor = None
        per_input = interface.stats.avg_cardinality
        calls = invocations

    tout = tin * per_input * pushed * pipe_sel
    return NodeAnnotation(tin=tin, tout=tout, fetches=factor, calls=calls)


def annotate(
    plan: QueryPlan,
    query: CompiledQuery,
    fetches: Mapping[str, int] | None = None,
    estimator: Estimator | None = None,
) -> PlanAnnotations:
    """Annotate every node of ``plan`` with estimated tin/tout/calls.

    Parameters
    ----------
    plan:
        A validated plan over the atoms of ``query``.
    fetches:
        Fetch factors per chunked-service alias; missing aliases default
        to 1 ("the lowest admissible value ... as all services must
        contribute to the result", Section 5.5).
    estimator:
        Selectivity estimator; defaults to a fresh one over ``query``.
    """
    fetches = dict(fetches or {})
    estimator = estimator or Estimator(query)
    annotations = PlanAnnotations()

    for node_id in plan.topological_order():
        annotations.by_node[node_id] = _node_annotation(
            plan, node_id, annotations.by_node, query, estimator, fetches
        )

    ANNOTATION_COUNTERS.full_annotations += 1
    return annotations


def _node_annotation(
    plan: QueryPlan,
    node_id: str,
    by_node: Mapping[str, NodeAnnotation],
    query: CompiledQuery,
    estimator: Estimator,
    fetches: Mapping[str, int],
) -> NodeAnnotation:
    """Annotation of one node given its parents' annotations in ``by_node``."""
    ANNOTATION_COUNTERS.node_evals += 1
    node = plan.node(node_id)
    parents = plan.parents(node_id)
    if isinstance(node, InputNode):
        return NodeAnnotation(tin=0.0, tout=1.0)

    if isinstance(node, ParallelJoinNode):
        if len(parents) != 2:
            raise PlanError(f"join {node_id!r} must have two parents")
        left_out = by_node[parents[0]].tout
        right_out = by_node[parents[1]].tout
        factor = (
            TRIANGULAR_CANDIDATE_FACTOR
            if node.method.completion is CompletionStrategy.TRIANGULAR
            else 1.0
        )
        candidates = left_out * right_out * factor
        selectivity = estimator.predicates_selectivity(node.predicates)
        return NodeAnnotation(tin=candidates, tout=candidates * selectivity)

    if len(parents) != 1:
        raise PlanError(f"node {node_id!r} must have exactly one parent")
    tin = by_node[parents[0]].tout

    if isinstance(node, ServiceNode):
        return _service_annotation(node, tin, query, estimator, fetches)
    if isinstance(node, SelectionNode):
        selectivity = combined_selection_selectivity(
            node.selections,
            query.atom(node.selections[0].attr.alias).mart,
        ) if node.selections else 1.0
        selectivity *= estimator.predicates_selectivity(node.join_filters)
        return NodeAnnotation(tin=tin, tout=tin * selectivity)
    if isinstance(node, OutputNode):
        return NodeAnnotation(tin=tin, tout=tin)
    raise PlanError(f"cannot annotate node kind {node.kind}")  # pragma: no cover


def annotate_delta(
    plan: QueryPlan,
    query: CompiledQuery,
    base: PlanAnnotations,
    base_fetches: Mapping[str, int],
    fetches: Mapping[str, int],
    estimator: Estimator | None = None,
) -> PlanAnnotations:
    """Re-annotate only the nodes affected by a fetch-vector change.

    ``base`` must be the annotations of ``plan`` under ``base_fetches``.
    Only the service nodes whose fetch factor differs between the two
    vectors — plus their downstream cone — are recomputed; everything else
    is shared structurally with ``base`` (:class:`NodeAnnotation` is
    frozen, so sharing is safe).  This is what makes the optimizer's
    phase-3 expansion O(changed nodes) instead of O(plan).
    """
    estimator = estimator or Estimator(query)
    aliases = set(base_fetches) | set(fetches)
    dirty_aliases = {
        alias
        for alias in aliases
        if int(base_fetches.get(alias, 1)) != int(fetches.get(alias, 1))
    }
    if not dirty_aliases:
        return base

    fetches = dict(fetches)
    by_node = dict(base.by_node)
    changed: set[str] = set()
    for node_id in plan.topological_order():
        node = plan.node(node_id)
        parents = plan.parents(node_id)
        needs_recompute = (
            isinstance(node, ServiceNode) and node.alias in dirty_aliases
        ) or any(parent in changed for parent in parents)
        if not needs_recompute:
            continue
        new_annotation = _node_annotation(
            plan, node_id, by_node, query, estimator, fetches
        )
        if new_annotation != by_node.get(node_id):
            changed.add(node_id)
        by_node[node_id] = new_annotation

    ANNOTATION_COUNTERS.delta_annotations += 1
    return PlanAnnotations(by_node=by_node)
