"""Cost metrics over fully instantiated query plans (Section 5.1).

A cost metric maps a plan plus its annotations to a non-negative number.
All metrics implemented here are **monotonic**: extending a partial plan
with more nodes, or increasing a fetch factor, never decreases the cost.
Monotonicity is what justifies the branch-and-bound lower bound of
Section 5.2 ("thanks to the mentioned monotonicity, each subset can be
assigned a lower bound for the cost by calculating the cost on the
partially constructed plan").

Implemented metrics:

* :class:`ExecutionTimeMetric` — expected elapsed virtual time from query
  submission to the k-th answer: the slowest input-to-output path, each
  node contributing its request-response time.
* :class:`SumCostMetric` — sum over all operators of their charged cost
  (service fees plus an optional per-candidate join CPU charge).
* :class:`RequestResponseMetric` — the special case of the sum metric that
  counts only service invocation fees.
* :class:`CallCountMetric` — the further simplification where every call
  costs 1: "the metric simply counts the number of calls".
* :class:`BottleneckMetric` — the execution time of the slowest service
  (Srivastava et al.'s WSMS metric, suited to pipelined continuous
  queries).
* :class:`TimeToScreenMetric` — time to the first output tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plans.nodes import ParallelJoinNode, PlanNode, SelectionNode, ServiceNode
from repro.plans.plan import PlanAnnotations, QueryPlan

__all__ = [
    "CostMetric",
    "ExecutionTimeMetric",
    "SumCostMetric",
    "RequestResponseMetric",
    "CallCountMetric",
    "BottleneckMetric",
    "TimeToScreenMetric",
    "service_node_time",
    "DEFAULT_METRICS",
]


def service_node_time(node: ServiceNode, annotations: PlanAnnotations) -> float:
    """Total request-response time spent by one service node.

    ``calls * latency`` plus transfer time proportional to the tuples
    actually shipped (``calls * chunk`` for chunked services).
    """
    assert node.interface is not None
    ann = annotations.by_node[node.node_id]
    stats = node.interface.stats
    if node.interface.is_chunked:
        transferred = ann.calls * node.interface.chunk_size
    else:
        transferred = ann.calls * stats.avg_cardinality
    return ann.calls * stats.latency + transferred * stats.per_tuple_latency


class CostMetric:
    """Base class: price a fully instantiated plan.

    Subclasses must keep :attr:`monotonic` truthful — the optimizer uses
    partial-plan costs as lower bounds only for monotonic metrics.
    """

    name: str = "abstract"
    monotonic: bool = True

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        raise NotImplementedError

    def partial_cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        """Cost of a *partial* plan (possibly without an output node).

        Used as the branch-and-bound lower bound; metrics whose ``cost``
        needs the output node override this.  By default the full cost
        function works on partial plans too (sum/max over present nodes).
        """
        return self.cost(plan, annotations)

    def cached_partial_cost(
        self, key: object, plan: QueryPlan, annotations_fn
    ) -> float:
        """Memoized :meth:`partial_cost` keyed by a canonical state signature.

        Different move orders in the optimizer's phase 2 reach identical
        partial constructions; the cost-relevant signature (see
        :func:`repro.core.topology.topology_signature`) identifies them, so
        the partial plan is priced once per equivalence class.

        ``annotations_fn`` is a zero-argument callable producing the
        plan's annotations; it is only invoked on a miss, so a signature
        hit skips the annotation walk entirely.  Note the signature only
        guarantees equal *costs* across its equivalence class — per-node
        annotations may differ (unpiped serial reorderings), which is why
        the cache holds the priced scalar and never the annotations.
        The memo lives on the metric instance — share one metric across a
        search, not across unrelated queries.
        """
        cache = self.__dict__.get("_partial_cost_cache")
        if cache is None:
            cache = self.__dict__["_partial_cost_cache"] = {}
        if key in cache:
            return cache[key]
        value = self.partial_cost(plan, annotations_fn())
        cache[key] = value
        return value

    def clear_cost_cache(self) -> None:
        """Drop the partial-cost memo (e.g. between unrelated queries)."""
        self.__dict__.pop("_partial_cost_cache", None)

    def interfaces_lower_bound(self, interfaces) -> float:
        """Optimistic cost given only the set of selected interfaces.

        Every selected service must be invoked at least once in any
        completion; sum-like metrics add one minimal call per service,
        time-like metrics take the largest single-call latency (all calls
        could overlap across parallel branches).  Used to bound phase-1
        states before any plan structure exists.
        """
        return 0.0

    def node_time(self, node: PlanNode, annotations: PlanAnnotations) -> float:
        """Virtual time contributed by one node (shared by path metrics)."""
        if isinstance(node, ServiceNode):
            return service_node_time(node, annotations)
        return 0.0

    def __str__(self) -> str:
        return self.name


def _path_cost(
    plan: QueryPlan,
    annotations: PlanAnnotations,
    node_time,
    to_output: bool = True,
) -> float:
    """Longest input-to-output path under a ``(node, annotations)`` time
    function.

    With ``to_output=False`` (partial plans) the longest path to *any*
    node is returned instead.
    """
    finish: dict[str, float] = {}
    nodes = plan.nodes
    for node_id in plan.topological_order():
        parents = plan.parents(node_id)
        start = 0.0
        for parent in parents:
            t = finish[parent]
            if t > start:
                start = t
        finish[node_id] = start + node_time(nodes[node_id], annotations)
    if to_output:
        return finish[plan.output_node.node_id]
    return max(finish.values(), default=0.0)


@dataclass
class ExecutionTimeMetric(CostMetric):
    """Expected elapsed time to the k-th answer: the slowest dataflow path.

    ``join_cpu_per_candidate`` optionally charges main-memory join work;
    the chapter's default scenario neglects it ("join requires simple
    main-memory comparison operations and can be neglected").
    """

    join_cpu_per_candidate: float = 0.0
    name: str = "execution-time"

    def node_time(self, node: PlanNode, annotations: PlanAnnotations) -> float:
        if isinstance(node, ServiceNode):
            return service_node_time(node, annotations)
        if isinstance(node, ParallelJoinNode) and self.join_cpu_per_candidate:
            return annotations.by_node[node.node_id].tin * self.join_cpu_per_candidate
        return 0.0

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        return _path_cost(plan, annotations, self.node_time)

    def partial_cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        return _path_cost(plan, annotations, self.node_time, to_output=False)

    def interfaces_lower_bound(self, interfaces) -> float:
        return max((i.stats.latency for i in interfaces), default=0.0)


@dataclass
class SumCostMetric(CostMetric):
    """Sum of per-operator costs: invocation fees plus join CPU charges."""

    join_cpu_per_candidate: float = 0.0
    selection_cpu_per_tuple: float = 0.0
    name: str = "sum"

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        total = 0.0
        for node_id, node in plan.nodes.items():
            ann = annotations.by_node[node_id]
            if isinstance(node, ServiceNode):
                assert node.interface is not None
                total += ann.calls * node.interface.stats.invocation_fee
            elif isinstance(node, ParallelJoinNode):
                total += ann.tin * self.join_cpu_per_candidate
            elif isinstance(node, SelectionNode):
                total += ann.tin * self.selection_cpu_per_tuple
        return total

    def interfaces_lower_bound(self, interfaces) -> float:
        return sum(i.stats.invocation_fee for i in interfaces)


@dataclass
class RequestResponseMetric(CostMetric):
    """Only service invocation fees count (network-dominated scenario)."""

    name: str = "request-response"

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        total = 0.0
        for node in plan.service_nodes():
            ann = annotations.by_node[node.node_id]
            assert node.interface is not None
            total += ann.calls * node.interface.stats.invocation_fee
        return total

    def interfaces_lower_bound(self, interfaces) -> float:
        return sum(i.stats.invocation_fee for i in interfaces)


@dataclass
class CallCountMetric(CostMetric):
    """Every service invocation costs exactly one unit."""

    name: str = "call-count"

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        return sum(
            annotations.by_node[node.node_id].calls for node in plan.service_nodes()
        )

    def interfaces_lower_bound(self, interfaces) -> float:
        return float(len(list(interfaces)))


@dataclass
class BottleneckMetric(CostMetric):
    """Execution time of the slowest service in the plan (WSMS metric).

    Note: the metric is monotonic under plan extension (a max over a
    superset cannot shrink) but, as the chapter warns, "it is not advised
    in our context" where search services rarely produce all their tuples.
    """

    name: str = "bottleneck"

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        times = [
            service_node_time(node, annotations) for node in plan.service_nodes()
        ]
        return max(times, default=0.0)

    def interfaces_lower_bound(self, interfaces) -> float:
        return max((i.stats.latency for i in interfaces), default=0.0)


@dataclass
class TimeToScreenMetric(CostMetric):
    """Time until the first output tuple reaches the user.

    Approximated as the slowest input-to-output path where every service
    contributes a single request-response (its first chunk): the earliest
    moment a complete combination can exist.
    """

    name: str = "time-to-screen"

    @staticmethod
    def _first_call_time(node: PlanNode, annotations: PlanAnnotations) -> float:
        if isinstance(node, ServiceNode):
            assert node.interface is not None
            stats = node.interface.stats
            first_tuples = (
                node.interface.chunk_size
                if node.interface.is_chunked
                else stats.avg_cardinality
            )
            return stats.latency + first_tuples * stats.per_tuple_latency
        return 0.0

    def cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        return _path_cost(plan, annotations, self._first_call_time)

    def partial_cost(self, plan: QueryPlan, annotations: PlanAnnotations) -> float:
        return _path_cost(plan, annotations, self._first_call_time, to_output=False)

    def interfaces_lower_bound(self, interfaces) -> float:
        return max((i.stats.latency for i in interfaces), default=0.0)


#: The metrics exercised by the benchmark suite, keyed by name.
DEFAULT_METRICS: dict[str, CostMetric] = {
    metric.name: metric
    for metric in (
        ExecutionTimeMetric(),
        SumCostMetric(),
        RequestResponseMetric(),
        CallCountMetric(),
        BottleneckMetric(),
        TimeToScreenMetric(),
    )
}
