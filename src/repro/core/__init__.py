"""Core contribution: annotation, cost metrics, heuristics, B&B optimizer."""

from repro.core.annotate import TRIANGULAR_CANDIDATE_FACTOR, annotate
from repro.core.bnb import BnBOutcome, BnBStats, BranchAndBound
from repro.core.cost import (
    DEFAULT_METRICS,
    BottleneckMetric,
    CallCountMetric,
    CostMetric,
    ExecutionTimeMetric,
    RequestResponseMetric,
    SumCostMetric,
    TimeToScreenMetric,
    service_node_time,
)
from repro.core.heuristics import (
    BoundIsBetter,
    GreedyFetch,
    ParallelIsBetter,
    Phase1Heuristic,
    Phase2Heuristic,
    Phase3Heuristic,
    SelectiveFirst,
    SquareIsBetter,
    UnboundIsEasier,
    fetch_cap,
)
from repro.core.optimizer import (
    OptimizationOutcome,
    Optimizer,
    OptimizerConfig,
    PlanCandidate,
    optimize_query,
)
from repro.core.topology import (
    Move,
    TopologyBuilder,
    enumerate_topologies,
    topology_signature,
)

__all__ = [
    "TRIANGULAR_CANDIDATE_FACTOR",
    "annotate",
    "BnBOutcome",
    "BnBStats",
    "BranchAndBound",
    "DEFAULT_METRICS",
    "BottleneckMetric",
    "CallCountMetric",
    "CostMetric",
    "ExecutionTimeMetric",
    "RequestResponseMetric",
    "SumCostMetric",
    "TimeToScreenMetric",
    "service_node_time",
    "BoundIsBetter",
    "GreedyFetch",
    "ParallelIsBetter",
    "Phase1Heuristic",
    "Phase2Heuristic",
    "Phase3Heuristic",
    "SelectiveFirst",
    "SquareIsBetter",
    "UnboundIsEasier",
    "fetch_cap",
    "OptimizationOutcome",
    "Optimizer",
    "OptimizerConfig",
    "PlanCandidate",
    "optimize_query",
    "Move",
    "TopologyBuilder",
    "enumerate_topologies",
    "topology_signature",
]

from repro.core.heuristics import suggest_join_methods  # noqa: E402

__all__.append("suggest_join_methods")
