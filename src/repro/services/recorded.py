"""Record/replay service adapter: capture once, replay forever.

A :class:`RecordedService` wraps any service interface behind the same
``invoke → ChunkSource`` contract as
:class:`~repro.services.simulated.SimulatedService`, in one of two
modes:

* **record** — delegate every round trip to the wrapped service and
  capture it into a :class:`Cassette`: the chunk returned (or the fault
  raised), the latency charged, the log outcome.  The capture key is
  ``(interface, input bindings, constraints, availability, timeout)`` —
  the exact tuple the deterministic substrate derives behaviour from —
  so one recording stands in for *every* future invocation with those
  arguments, whichever alias or session issues it.
* **replay** — serve the recorded entries in order without any backing
  service: each ``next_chunk()`` advances the virtual clock by the
  recorded latency, appends a :class:`~repro.engine.events.CallRecord`,
  and returns the recorded chunk or re-raises the recorded fault.  An
  invocation for a key the cassette never saw, or one that asks for
  more round trips than were recorded, raises
  :class:`~repro.errors.CassetteError` — replay never silently invents
  data.

Because retries live *above* the chunk source (the
:class:`~repro.engine.retry.Retrier` re-calls ``next_chunk`` and the
failed round trips are ordinary recorded entries), a fault-and-recovery
sequence replays exactly: same errors in the same order, same latencies,
same eventual chunk.  Cassettes are deterministic JSON — sorted keys,
content-hashed like checkpoints — so they diff cleanly and detect
corruption on load.

:class:`RecordedPool` mirrors the :class:`~repro.services.simulated.ServicePool`
surface (``invoke`` / ``clock`` / ``log`` / ``global_seed`` /
``registry`` / ``reset``), so an executor or a
:class:`~repro.engine.liquid.LiquidQuerySession` runs against a cassette
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.ast import SelectionPredicate

from repro.engine.events import CallLog, CallRecord, VirtualClock
from repro.errors import (
    CassetteError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.joins.methods import ChunkSource
from repro.model.registry import ServiceRegistry
from repro.model.service import ServiceInterface
from repro.model.tuples import ServiceTuple
from repro.services.simulated import (
    FaultModel,
    LatencyModel,
    ServicePool,
    SimulatedInvocation,
    SimulatedService,
)

__all__ = [
    "Cassette",
    "RecordedPool",
    "RecordedService",
    "ReplayInvocation",
]

#: Cassette file format version.
CASSETTE_VERSION = 1


def _encode_tuple(tup: ServiceTuple) -> dict:
    from repro.durability.checkpoint import encode_value

    return {
        "values": {k: encode_value(v) for k, v in tup.values.items()},
        "score": tup.score,
        "source": tup.source,
        "position": tup.position,
    }


def _decode_tuple(data: Mapping[str, Any]) -> ServiceTuple:
    from repro.durability.checkpoint import decode_value

    return ServiceTuple(
        values={k: decode_value(v) for k, v in data["values"].items()},
        score=data["score"],
        source=data["source"],
        position=data["position"],
    )


@dataclass
class Cassette:
    """Deterministic store of recorded invocations, keyed by arguments.

    ``recordings`` maps an invocation key to the ordered list of round
    trips the recorded invocation made.  Each entry is
    ``{"chunk": [tuples] | None, "record": {...} | None, "raise": ...}``:
    the value ``next_chunk`` returned (or would have, had it not
    raised), the call-log record the round trip cost (``None`` for the
    free ``None`` a source returns once already exhausted), and the
    fault it raised (``None`` for success).  First recording wins;
    replays of the same key always start from entry zero — sound
    because the substrate is deterministic per key.
    """

    recordings: dict[str, list[dict]] = field(default_factory=dict)

    @staticmethod
    def key_for(
        interface_name: str,
        inputs: Mapping[str, Any],
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
        call_timeout: float | None = None,
    ) -> str:
        """Canonical key: everything the substrate derives behaviour from.

        The alias is deliberately excluded — data, latency, and fault
        draws all derive from ``(seed, interface, bindings)``, so two
        aliases invoking identically are the *same* interaction.
        """
        bindings = ",".join(
            f"{name}={inputs[name]!r}" for name in sorted(inputs)
        )
        constraint_text = ";".join(repr(c) for c in constraints)
        return (
            f"{interface_name}({bindings})"
            f"|constraints={constraint_text}"
            f"|availability={availability!r}"
            f"|timeout={call_timeout!r}"
        )

    def save(self, path: "str | Path") -> Path:
        """Write the cassette as checksummed, sorted, diff-stable JSON."""
        import json
        import os

        from repro.durability.checkpoint import content_hash

        payload = {"version": CASSETTE_VERSION, "recordings": self.recordings}
        record = {"checksum": content_hash(payload), "payload": payload}
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, indent=1))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "Cassette":
        import json

        from repro.durability.checkpoint import content_hash

        path = Path(path)
        if not path.exists():
            raise CassetteError(f"no cassette at {path}")
        with open(path, encoding="utf-8") as handle:
            try:
                record = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CassetteError(
                    f"cassette {path} is not valid JSON: {exc}"
                ) from exc
        payload = record.get("payload")
        if payload is None or record.get("checksum") != content_hash(payload):
            raise CassetteError(
                f"cassette {path} failed its content-hash check"
            )
        if payload.get("version") != CASSETTE_VERSION:
            raise CassetteError(
                f"cassette {path} has version {payload.get('version')!r}; "
                f"this build reads {CASSETTE_VERSION}"
            )
        return cls(recordings=payload["recordings"])

    def __len__(self) -> int:
        return len(self.recordings)


def _encode_raise(exc: Exception) -> dict:
    if isinstance(exc, ServiceTimeoutError):
        return {"type": "timeout", "timeout": exc.timeout}
    assert isinstance(exc, ServiceUnavailableError)
    return {"type": "unavailable", "permanent": exc.permanent}


class _RecordingInvocation(ChunkSource):
    """Pass-through chunk source that captures each round trip."""

    def __init__(
        self, inner: SimulatedInvocation, entries: list[dict], log: CallLog
    ) -> None:
        self.inner = inner
        self.interface = inner.interface
        self.chunk_size = inner.chunk_size
        self.scoring = inner.scoring
        self._entries = entries
        self._log = log
        self._index = 0

    def next_chunk(self) -> list[ServiceTuple] | None:
        before = len(self._log.records)
        raised: Exception | None = None
        chunk: list[ServiceTuple] | None = None
        try:
            chunk = self.inner.next_chunk()
        except (ServiceTimeoutError, ServiceUnavailableError) as exc:
            raised = exc
        new_records = self._log.records[before:]
        entry: dict[str, Any] = {
            "chunk": (
                [_encode_tuple(t) for t in chunk] if chunk is not None else None
            ),
            "record": None,
            "raise": _encode_raise(raised) if raised is not None else None,
        }
        if new_records:
            # Exactly one record per round trip; backoff_wait is left to
            # the *replaying* retry harness to amend, like the original.
            record = new_records[-1]
            entry["record"] = {
                "latency": record.latency,
                "tuples": record.tuples,
                "outcome": record.outcome,
                "attempt": record.attempt,
            }
        self._capture(entry)
        if raised is not None:
            raise raised
        return chunk

    def _capture(self, entry: dict) -> None:
        """First recording wins; longer reruns extend past its end.

        A later invocation of the same key replays the same determinism,
        so entries at already-recorded indices are skipped (not
        re-verified round trip by round trip — the cassette checksum
        covers integrity); indices past the recorded end append, so the
        cassette always holds the longest round-trip sequence observed.
        A trailing free ``None`` (exhausted source, no log record) is
        not duplicated endlessly.
        """
        if self._index < len(self._entries):
            self._index += 1
            return
        if (
            entry["chunk"] is None
            and entry["record"] is None
            and entry["raise"] is None
            and self._entries
            and self._entries[-1] == entry
        ):
            return
        self._entries.append(entry)
        self._index += 1

    @property
    def remaining(self) -> int:
        return self.inner.remaining


class ReplayInvocation(ChunkSource):
    """Chunk source serving recorded round trips — no backing service."""

    def __init__(
        self,
        interface: ServiceInterface,
        entries: Sequence[Mapping[str, Any]],
        alias: str,
        clock: VirtualClock,
        log: CallLog,
        key: str,
    ) -> None:
        self.interface = interface
        self.chunk_size = interface.chunk_size
        self.scoring = interface.scoring
        self.alias = alias
        self.clock = clock
        self.log = log
        self.key = key
        self._entries = entries
        self._index = 0
        self._calls = 0

    def next_chunk(self) -> list[ServiceTuple] | None:
        if self._index >= len(self._entries):
            last = self._entries[-1] if self._entries else None
            if last is not None and last["chunk"] is None and last["raise"] is None:
                # The recording ended exhausted: further polls are the
                # free ``None`` a drained source keeps returning.
                return None
            raise CassetteError(
                f"cassette recording for {self.key} exhausted after "
                f"{len(self._entries)} round trips"
            )
        entry = self._entries[self._index]
        self._index += 1
        record = entry.get("record")
        if record is not None:
            self.log.record(
                CallRecord(
                    service=self.interface.name,
                    alias=self.alias,
                    chunk_index=self._calls,
                    started_at=self.clock.now,
                    latency=record["latency"],
                    tuples=record["tuples"],
                    outcome=record["outcome"],
                    attempt=record["attempt"],
                )
            )
            self.clock.advance(record["latency"])
            self._calls += 1
        raised = entry.get("raise")
        if raised is not None:
            if raised["type"] == "timeout":
                raise ServiceTimeoutError(
                    f"recorded timeout calling {self.interface.name!r}",
                    service=self.interface.name,
                    timeout=raised.get("timeout"),
                )
            raise ServiceUnavailableError(
                f"recorded failure calling {self.interface.name!r}",
                service=self.interface.name,
                permanent=bool(raised.get("permanent")),
            )
        chunk = entry.get("chunk")
        if chunk is None:
            return None
        return [_decode_tuple(t) for t in chunk]

    @property
    def calls(self) -> int:
        return self._calls


@dataclass
class RecordedService:
    """Record/replay wrapper around one service interface.

    In ``record`` mode ``inner`` (any object with the
    :class:`~repro.services.simulated.SimulatedService` ``invoke``
    contract) performs the real work; in ``replay`` mode no backing
    service exists and every invocation is served from the cassette.
    """

    interface: ServiceInterface
    cassette: Cassette
    mode: str = "replay"
    inner: SimulatedService | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("record", "replay"):
            raise CassetteError(
                f"unknown cassette mode {self.mode!r}; "
                "expected 'record' or 'replay'"
            )
        if self.mode == "record" and self.inner is None:
            raise CassetteError(
                "record mode needs an inner service to delegate to"
            )

    def invoke(
        self,
        inputs: Mapping[str, Any],
        clock: VirtualClock,
        log: CallLog,
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
        call_timeout: float | None = None,
    ) -> ChunkSource:
        key = Cassette.key_for(
            self.interface.name, inputs, constraints, availability, call_timeout
        )
        if self.mode == "record":
            assert self.inner is not None
            inner_invocation = self.inner.invoke(
                inputs,
                clock=clock,
                log=log,
                alias=alias,
                constraints=constraints,
                availability=availability,
                call_timeout=call_timeout,
            )
            entries = self.cassette.recordings.setdefault(key, [])
            return _RecordingInvocation(inner_invocation, entries, log)
        entries = self.cassette.recordings.get(key)
        if entries is None:
            raise CassetteError(
                f"cassette has no recording for {key} "
                f"({len(self.cassette)} keys recorded)"
            )
        return ReplayInvocation(
            interface=self.interface,
            entries=entries,
            alias=alias or self.interface.name,
            clock=clock,
            log=log,
            key=key,
        )


@dataclass
class RecordedPool:
    """Cassette-backed drop-in for :class:`~repro.services.simulated.ServicePool`.

    ``record`` mode owns a private simulated pool over the same clock
    and log, so recorded latencies land on the same timeline the live
    run sees; ``replay`` mode needs only the registry (for interface
    metadata) and the cassette.
    """

    registry: ServiceRegistry
    cassette: Cassette
    mode: str = "replay"
    global_seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    fault_model: FaultModel = field(default_factory=FaultModel)
    clock: VirtualClock = field(default_factory=VirtualClock)
    log: CallLog = field(default_factory=CallLog)
    _services: dict[str, RecordedService] = field(default_factory=dict)
    _inner: ServicePool | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in ("record", "replay"):
            raise CassetteError(
                f"unknown cassette mode {self.mode!r}; "
                "expected 'record' or 'replay'"
            )
        if self.mode == "record":
            self._inner = ServicePool(
                self.registry,
                global_seed=self.global_seed,
                latency_model=self.latency_model,
                fault_model=self.fault_model,
                clock=self.clock,
                log=self.log,
            )

    def service(self, interface_name: str) -> RecordedService:
        if interface_name not in self._services:
            interface = self.registry.interface(interface_name)
            inner = (
                self._inner.service(interface_name)
                if self._inner is not None
                else None
            )
            self._services[interface_name] = RecordedService(
                interface=interface,
                cassette=self.cassette,
                mode=self.mode,
                inner=inner,
            )
        return self._services[interface_name]

    def invoke(
        self,
        interface_name: str,
        inputs: Mapping[str, Any],
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
        call_timeout: float | None = None,
    ) -> ChunkSource:
        return self.service(interface_name).invoke(
            inputs,
            clock=self.clock,
            log=self.log,
            alias=alias,
            constraints=constraints,
            availability=availability,
            call_timeout=call_timeout,
        )

    def reset(self) -> None:
        """Zero the clock and clear the log in place (shared references)."""
        self.clock.reset()
        self.log.clear()
