"""Scenario packs: heterogeneous multi-domain schemas beyond the chapter.

The chapter's two worked examples (movie night, conference trip) exercise
the engine, but a serving runtime earns its keep on *heterogeneous*
traffic: many schemas, different join shapes, different service mixes.
This module adds three self-contained scenario packs, each a registry +
query + default bindings in the exact idiom of
:mod:`repro.services.marts`:

* ``travel`` — flights + hotels + events: a three-hop pipe chain
  (flight destination feeds the hotel search, the hotel city feeds the
  event finder), all chunked search services.
* ``shopping`` — products + reviews + shipping: a fan-out from one
  product search into a review feed (search) and a shipping quote
  (exact), the mixed search/exact shape of Fig. 2.
* ``scholar`` — papers + authors + venues: a citation-ranked paper
  index fanned into a small chunked author lookup and an exact venue
  rank, with a selection predicate (``Year >``) that is *selective in
  the context of the query*.

Everything here is plain schema data.  The serving layer turns packs
into workload templates (:func:`repro.serve.workload.scenario_templates`)
and the durability layer resolves registries by schema name when
restoring a checkpoint (:mod:`repro.durability.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import SchemaError
from repro.model.attributes import Attribute, DataType, Domain, RepeatingGroup
from repro.model.connections import AttributePair, ConnectionPattern
from repro.model.registry import ServiceRegistry
from repro.model.scoring import ExponentialScoring, LinearScoring, PowerLawScoring
from repro.model.service import (
    AccessPattern,
    ServiceInterface,
    ServiceKind,
    ServiceMart,
    ServiceStats,
)

__all__ = [
    "ScenarioPack",
    "SCENARIOS",
    "scenario_pack",
    "travel_registry",
    "shopping_registry",
    "scholar_registry",
    "TRAVEL_QUERY",
    "TRAVEL_INPUTS",
    "SHOPPING_QUERY",
    "SHOPPING_INPUTS",
    "SCHOLAR_QUERY",
    "SCHOLAR_INPUTS",
]

# Shared domains.  As in marts.py, sizes encode join selectivities and
# value universes; the simulated substrate derives tuple data from the
# binding values alone, so every ``domain#n`` value is servable.
_CITY = Domain("city", DataType.STRING, size=20)
_DATE = Domain("caldate", DataType.DATE, size=365)
_NAME = Domain("name", DataType.STRING, size=1000)
_MONEY = Domain("price", DataType.FLOAT, size=500)
_STARS = Domain("stars", DataType.INTEGER, size=5)
_CATEGORY = Domain("category", DataType.STRING, size=6)
_KEYWORD = Domain("keyword", DataType.STRING, size=30)
_PRODUCT = Domain("product", DataType.STRING, size=200)
_REGION = Domain("region", DataType.STRING, size=8)
_TOPIC = Domain("topic", DataType.STRING, size=12)
_TITLE = Domain("papertitle", DataType.STRING, size=300)
_YEAR = Domain("year", DataType.INTEGER, size=60)


def travel_registry() -> ServiceRegistry:
    """Flights + hotels + events: a three-hop chunked pipe chain."""
    registry = ServiceRegistry()

    flight = ServiceMart(
        "TripFlight",
        (
            Attribute("FromCity", _CITY),
            Attribute("ToCity", _CITY),
            Attribute("FDate", _DATE),
            Attribute("Airline", Domain("airline", DataType.STRING, size=15)),
            Attribute("FPrice", _MONEY),
        ),
        description="Flights ranked by price",
    )
    hotel = ServiceMart(
        "TripHotel",
        (
            Attribute("HName", _NAME),
            Attribute("HCity", _CITY),
            Attribute("Stars", _STARS),
            Attribute("HPrice", _MONEY),
        ),
        description="Hotels ranked by value for money",
    )
    event = ServiceMart(
        "TripEvent",
        (
            Attribute("EName", _NAME),
            Attribute("ECity", _CITY),
            Attribute("EDate", _DATE),
            Attribute("ECategory", _CATEGORY),
            Attribute("Popularity", Domain("popularity", DataType.FLOAT, size=100)),
        ),
        description="City events ranked by popularity",
    )

    registry.register_interface(
        ServiceInterface(
            name="FlightSearch",
            mart=flight,
            access_pattern=AccessPattern.from_spec(
                {"FromCity": "I", "ToCity": "I", "FDate": "I", "FPrice": "R"}
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=60, chunk_size=10, latency=1.4, invocation_fee=1.0
            ),
            scoring=PowerLawScoring(exponent=0.3),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="HotelSearch",
            mart=hotel,
            access_pattern=AccessPattern.from_spec({"HCity": "I", "Stars": "R"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=50, chunk_size=10, latency=1.0, invocation_fee=1.0
            ),
            scoring=LinearScoring(horizon=50),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="EventFinder",
            mart=event,
            access_pattern=AccessPattern.from_spec(
                {"ECity": "I", "ECategory": "I", "Popularity": "R"}
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=30, chunk_size=5, latency=0.7, invocation_fee=1.0
            ),
            scoring=ExponentialScoring(rate=0.1),
        )
    )

    registry.register_pattern(
        ConnectionPattern(
            name="Stay",
            source=flight,
            target=hotel,
            pairs=(AttributePair.parse("ToCity", "HCity"),),
            selectivity=0.95,
            description="Hotel in the flight's destination city",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="Nightlife",
            source=hotel,
            target=event,
            pairs=(AttributePair.parse("HCity", "ECity"),),
            selectivity=0.95,
            description="Events in the hotel's city",
        )
    )
    return registry


#: Travel-pack query: destination trip with hotel and an evening event.
TRAVEL_QUERY = (
    "SELECT FlightSearch AS F, HotelSearch AS H, EventFinder AS E "
    "WHERE Stay(F, H) AND Nightlife(H, E) "
    "AND F.FromCity = INPUT1 AND F.ToCity = INPUT2 AND F.FDate = INPUT3 "
    "AND E.ECategory = INPUT4 "
    "RANK BY 0.4*F, 0.3*H, 0.3*E LIMIT 10"
)

#: Default bindings for the travel pack's INPUT variables.
TRAVEL_INPUTS = {
    "INPUT1": "city#2",
    "INPUT2": "city#9",
    "INPUT3": "2009-07-20",
    "INPUT4": "category#1",
}


def shopping_registry() -> ServiceRegistry:
    """Products + reviews + shipping: search fan-out into search + exact."""
    registry = ServiceRegistry()

    product = ServiceMart(
        "Product",
        (
            Attribute("PName", _PRODUCT),
            Attribute("Keyword", _KEYWORD),
            Attribute("Brand", Domain("brand", DataType.STRING, size=25)),
            Attribute("PPrice", _MONEY),
            Attribute("Rating", Domain("stars", DataType.FLOAT, size=10)),
        ),
        description="Products ranked by buyer rating",
    )
    review = ServiceMart(
        "Review",
        (
            Attribute("RProduct", _PRODUCT),
            Attribute("Stars", _STARS),
            Attribute("Reviewer", _NAME),
            RepeatingGroup(
                "Aspects", (Attribute("Aspect", _CATEGORY),), avg_members=2
            ),
        ),
        description="Reviews ranked by helpfulness",
    )
    shipping = ServiceMart(
        "Shipping",
        (
            Attribute("SProduct", _PRODUCT),
            Attribute("Region", _REGION),
            Attribute("Days", Domain("days", DataType.INTEGER, size=30)),
            Attribute("Fee", _MONEY),
        ),
        description="Shipping quotes per product and region",
    )

    registry.register_interface(
        ServiceInterface(
            name="ProductSearch",
            mart=product,
            access_pattern=AccessPattern.from_spec({"Keyword": "I", "Rating": "R"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=100, chunk_size=20, latency=1.2, invocation_fee=1.0
            ),
            scoring=PowerLawScoring(exponent=0.35),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="ReviewFeed",
            mart=review,
            access_pattern=AccessPattern.from_spec({"RProduct": "I", "Stars": "R"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=15, chunk_size=5, latency=0.5, invocation_fee=1.0
            ),
            scoring=ExponentialScoring(rate=0.3),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="ShippingQuote",
            mart=shipping,
            access_pattern=AccessPattern.from_spec(
                {"SProduct": "I", "Region": "I"}
            ),
            kind=ServiceKind.EXACT,
            stats=ServiceStats(avg_cardinality=2, chunk_size=None, latency=0.4),
        )
    )

    registry.register_pattern(
        ConnectionPattern(
            name="Reviewed",
            source=product,
            target=review,
            pairs=(AttributePair.parse("PName", "RProduct"),),
            selectivity=0.9,
            description="Reviews of the product",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="ShipsTo",
            source=product,
            target=shipping,
            pairs=(AttributePair.parse("PName", "SProduct"),),
            selectivity=0.95,
            description="Shipping quote for the product",
        )
    )
    return registry


#: Shopping-pack query: rated products with reviews and a shipping quote.
SHOPPING_QUERY = (
    "SELECT ProductSearch AS P, ReviewFeed AS V, ShippingQuote AS S "
    "WHERE Reviewed(P, V) AND ShipsTo(P, S) "
    "AND P.Keyword = INPUT1 AND S.Region = INPUT2 "
    "RANK BY 0.5*P, 0.3*V, 0.2*S LIMIT 10"
)

#: Default bindings for the shopping pack's INPUT variables.
SHOPPING_INPUTS = {
    "INPUT1": "keyword#4",
    "INPUT2": "region#0",
}


def scholar_registry() -> ServiceRegistry:
    """Papers + authors + venues: ranked index into lookup + exact rank."""
    registry = ServiceRegistry()

    paper = ServiceMart(
        "Paper",
        (
            Attribute("PTitle", _TITLE),
            Attribute("Topic", _TOPIC),
            Attribute("Year", _YEAR),
            Attribute("Citations", Domain("citations", DataType.INTEGER, size=5000)),
        ),
        description="Papers ranked by citation count",
    )
    author = ServiceMart(
        "Author",
        (
            Attribute("APaper", _TITLE),
            Attribute("AName", _NAME),
            Attribute("HIndex", Domain("hindex", DataType.INTEGER, size=80)),
        ),
        description="Authors of a paper ranked by h-index",
    )
    venue = ServiceMart(
        "Venue",
        (
            Attribute("VPaper", _TITLE),
            Attribute("VName", _NAME),
            Attribute("VRank", Domain("venuerank", DataType.INTEGER, size=4)),
            Attribute("VCity", _CITY),
        ),
        description="Publication venue of a paper",
    )

    registry.register_interface(
        ServiceInterface(
            name="PaperIndex",
            mart=paper,
            access_pattern=AccessPattern.from_spec(
                {"Topic": "I", "Citations": "R"}
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=120, chunk_size=20, latency=1.1, invocation_fee=1.0
            ),
            scoring=PowerLawScoring(exponent=0.3),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="AuthorLookup",
            mart=author,
            access_pattern=AccessPattern.from_spec({"APaper": "I", "HIndex": "R"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=4, chunk_size=2, latency=0.6, invocation_fee=1.0
            ),
            scoring=ExponentialScoring(rate=0.5),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="VenueRank",
            mart=venue,
            access_pattern=AccessPattern.from_spec({"VPaper": "I"}),
            kind=ServiceKind.EXACT,
            stats=ServiceStats(avg_cardinality=1, chunk_size=None, latency=0.5),
        )
    )

    registry.register_pattern(
        ConnectionPattern(
            name="WrittenBy",
            source=paper,
            target=author,
            pairs=(AttributePair.parse("PTitle", "APaper"),),
            selectivity=0.95,
            description="Authors of the paper",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="PublishedAt",
            source=paper,
            target=venue,
            pairs=(AttributePair.parse("PTitle", "VPaper"),),
            selectivity=1.0,
            description="Venue the paper appeared in",
        )
    )
    return registry


#: Scholar-pack query: recent cited papers with authors and venue.
SCHOLAR_QUERY = (
    "SELECT PaperIndex AS P, AuthorLookup AS A, VenueRank AS V "
    "WHERE WrittenBy(P, A) AND PublishedAt(P, V) "
    "AND P.Topic = INPUT1 AND P.Year > INPUT2 "
    "RANK BY 0.5*P, 0.3*A, 0.2*V LIMIT 10"
)

#: Default bindings for the scholar pack's INPUT variables.
SCHOLAR_INPUTS = {
    "INPUT1": "topic#2",
    "INPUT2": 20,
}


@dataclass(frozen=True)
class ScenarioPack:
    """One self-contained scenario: schema + query + workload data.

    ``parameter_space`` and ``rerank_weights`` are plain data in the
    shape :class:`repro.serve.workload.QueryTemplate` expects — the
    serving layer builds templates from packs so this module stays free
    of serving imports.
    """

    name: str
    schema: str
    description: str
    registry_factory: Callable[[], ServiceRegistry]
    query_text: str
    default_inputs: Mapping[str, Any]
    parameter_space: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    rerank_weights: Sequence[Mapping[str, float]] = ()


SCENARIOS: dict[str, ScenarioPack] = {
    pack.name: pack
    for pack in (
        ScenarioPack(
            name="travel",
            schema="travel",
            description="flights + hotels + events (three-hop pipe chain)",
            registry_factory=travel_registry,
            query_text=TRAVEL_QUERY,
            default_inputs=TRAVEL_INPUTS,
            parameter_space={
                "INPUT1": [f"city#{i}" for i in (2, 11)],
                "INPUT2": [f"city#{i}" for i in (9, 4, 14)],
                "INPUT3": ["2009-07-20", "2009-08-03"],
                "INPUT4": ["category#1", "category#4"],
            },
            rerank_weights=(
                {"F": 0.7, "H": 0.2, "E": 0.1},
                {"F": 0.2, "H": 0.2, "E": 0.6},
            ),
        ),
        ScenarioPack(
            name="shopping",
            schema="shopping",
            description="products + reviews + shipping (search/exact fan-out)",
            registry_factory=shopping_registry,
            query_text=SHOPPING_QUERY,
            default_inputs=SHOPPING_INPUTS,
            parameter_space={
                "INPUT1": [f"keyword#{i}" for i in (4, 0, 9)],
                "INPUT2": ["region#0", "region#3"],
            },
            rerank_weights=(
                {"P": 0.8, "V": 0.1, "S": 0.1},
                {"P": 0.3, "V": 0.5, "S": 0.2},
            ),
        ),
        ScenarioPack(
            name="scholar",
            schema="scholar",
            description="papers + authors + venues (ranked index + exact)",
            registry_factory=scholar_registry,
            query_text=SCHOLAR_QUERY,
            default_inputs=SCHOLAR_INPUTS,
            parameter_space={
                "INPUT1": [f"topic#{i}" for i in (2, 7)],
                "INPUT2": [20, 35],
            },
            rerank_weights=(
                {"P": 0.9, "A": 0.05, "V": 0.05},
                {"P": 0.2, "A": 0.6, "V": 0.2},
            ),
        ),
    )
}


def scenario_pack(name: str) -> ScenarioPack:
    """Look up a scenario pack by name; raises SchemaError when unknown."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise SchemaError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
