"""Synthetic workload generator for optimizer and join benchmarks.

Builds parameterised schemas and queries of controlled shape and size:

* :func:`chain_workload` — ``n`` services in a pipe chain
  ``S0 -> S1 -> ... -> S(n-1)``: each service's input attribute is fed by
  its predecessor's output (one binding choice, deep topologies).
* :func:`star_workload` — one hub source and ``n - 1`` piped satellites,
  every satellite joinable in parallel (wide topologies, many merges).
* :func:`mixed_workload` — a chain whose middle node fans out into two
  satellite branches (both deep and wide choices).

Every generated service is a chunked search service with seeded, slightly
varied statistics so that cost-based choices are non-trivial; the returned
:class:`Workload` bundles the registry, query text, and INPUT bindings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.model.attributes import Attribute, DataType, Domain
from repro.model.connections import AttributePair, ConnectionPattern
from repro.model.registry import ServiceRegistry
from repro.model.scoring import ExponentialScoring, LinearScoring
from repro.model.service import (
    AccessPattern,
    ServiceInterface,
    ServiceKind,
    ServiceMart,
    ServiceStats,
)

__all__ = ["Workload", "chain_workload", "star_workload", "mixed_workload"]


@dataclass(frozen=True)
class Workload:
    """A generated benchmark scenario."""

    registry: ServiceRegistry
    query_text: str
    inputs: dict[str, Any]
    shape: str
    size: int


def _make_mart(index: int, key_domain: Domain) -> ServiceMart:
    return ServiceMart(
        f"Mart{index}",
        (
            Attribute("InKey", key_domain),
            Attribute("OutKey", key_domain),
            Attribute("Payload", Domain("payload", DataType.STRING)),
            Attribute("Rank", Domain("rank", DataType.FLOAT, size=10)),
        ),
        description=f"Synthetic service mart #{index}",
    )


def _make_interface(
    index: int, mart: ServiceMart, rng: random.Random, needs_input: bool
) -> ServiceInterface:
    adornments = {"Rank": "R"}
    if needs_input:
        adornments["InKey"] = "I"
    scoring = (
        LinearScoring(horizon=rng.randint(30, 80))
        if rng.random() < 0.5
        else ExponentialScoring(rate=rng.uniform(0.02, 0.1))
    )
    return ServiceInterface(
        name=f"Svc{index}",
        mart=mart,
        access_pattern=AccessPattern.from_spec(adornments),
        kind=ServiceKind.SEARCH,
        stats=ServiceStats(
            avg_cardinality=rng.randint(20, 60),
            chunk_size=rng.choice([5, 10, 20]),
            latency=rng.uniform(0.4, 2.0),
            invocation_fee=1.0,
        ),
        scoring=scoring,
    )


def chain_workload(size: int, seed: int = 0, k: int = 10) -> Workload:
    """A pipe chain of ``size`` services."""
    if size < 1:
        raise ValueError("size must be at least 1")
    rng = random.Random(seed)
    registry = ServiceRegistry()
    key_domain = Domain("synthkey", DataType.INTEGER, size=12)
    marts = [_make_mart(i, key_domain) for i in range(size)]
    for index, mart in enumerate(marts):
        registry.register_interface(
            _make_interface(index, mart, rng, needs_input=True)
        )
    for index in range(size - 1):
        registry.register_pattern(
            ConnectionPattern(
                name=f"Link{index}",
                source=marts[index],
                target=marts[index + 1],
                pairs=(AttributePair.parse("OutKey", "InKey"),),
                selectivity=rng.uniform(0.3, 0.9),
            )
        )
    atoms = ", ".join(f"Svc{i} AS A{i}" for i in range(size))
    conditions = ["A0.InKey = INPUT1"]
    conditions += [f"Link{i}(A{i}, A{i + 1})" for i in range(size - 1)]
    weights = ", ".join(f"{1.0 / size:.4f}*A{i}" for i in range(size))
    text = (
        f"SELECT {atoms} WHERE {' AND '.join(conditions)} "
        f"RANK BY {weights} LIMIT {k}"
    )
    return Workload(
        registry=registry,
        query_text=text,
        inputs={"INPUT1": 3},
        shape="chain",
        size=size,
    )


def star_workload(size: int, seed: int = 0, k: int = 10) -> Workload:
    """A hub source feeding ``size - 1`` parallel satellites."""
    if size < 2:
        raise ValueError("star needs at least 2 services")
    rng = random.Random(seed)
    registry = ServiceRegistry()
    key_domain = Domain("synthkey", DataType.INTEGER, size=12)
    marts = [_make_mart(i, key_domain) for i in range(size)]
    registry.register_interface(
        _make_interface(0, marts[0], rng, needs_input=True)
    )
    for index in range(1, size):
        registry.register_interface(
            _make_interface(index, marts[index], rng, needs_input=True)
        )
        registry.register_pattern(
            ConnectionPattern(
                name=f"Spoke{index}",
                source=marts[0],
                target=marts[index],
                pairs=(AttributePair.parse("OutKey", "InKey"),),
                selectivity=rng.uniform(0.3, 0.9),
            )
        )
    atoms = ", ".join(f"Svc{i} AS A{i}" for i in range(size))
    conditions = ["A0.InKey = INPUT1"]
    conditions += [f"Spoke{i}(A0, A{i})" for i in range(1, size)]
    weights = ", ".join(f"{1.0 / size:.4f}*A{i}" for i in range(size))
    text = (
        f"SELECT {atoms} WHERE {' AND '.join(conditions)} "
        f"RANK BY {weights} LIMIT {k}"
    )
    return Workload(
        registry=registry,
        query_text=text,
        inputs={"INPUT1": 3},
        shape="star",
        size=size,
    )


def mixed_workload(size: int, seed: int = 0, k: int = 10) -> Workload:
    """A chain with a two-satellite fan-out at its midpoint.

    Needs ``size >= 4`` (two chain nodes plus two satellites); larger
    sizes extend the chain prefix.
    """
    if size < 4:
        raise ValueError("mixed workload needs at least 4 services")
    rng = random.Random(seed)
    registry = ServiceRegistry()
    key_domain = Domain("synthkey", DataType.INTEGER, size=12)
    marts = [_make_mart(i, key_domain) for i in range(size)]
    for index, mart in enumerate(marts):
        registry.register_interface(
            _make_interface(index, mart, rng, needs_input=True)
        )
    chain_len = size - 2
    conditions = ["A0.InKey = INPUT1"]
    for index in range(chain_len - 1):
        registry.register_pattern(
            ConnectionPattern(
                name=f"Link{index}",
                source=marts[index],
                target=marts[index + 1],
                pairs=(AttributePair.parse("OutKey", "InKey"),),
                selectivity=rng.uniform(0.3, 0.9),
            )
        )
        conditions.append(f"Link{index}(A{index}, A{index + 1})")
    hub = chain_len - 1
    for offset, index in enumerate((size - 2, size - 1)):
        registry.register_pattern(
            ConnectionPattern(
                name=f"Fan{offset}",
                source=marts[hub],
                target=marts[index],
                pairs=(AttributePair.parse("OutKey", "InKey"),),
                selectivity=rng.uniform(0.3, 0.9),
            )
        )
        conditions.append(f"Fan{offset}(A{hub}, A{index})")
    atoms = ", ".join(f"Svc{i} AS A{i}" for i in range(size))
    weights = ", ".join(f"{1.0 / size:.4f}*A{i}" for i in range(size))
    text = (
        f"SELECT {atoms} WHERE {' AND '.join(conditions)} "
        f"RANK BY {weights} LIMIT {k}"
    )
    return Workload(
        registry=registry,
        query_text=text,
        inputs={"INPUT1": 3},
        shape="mixed",
        size=size,
    )
