"""Simulated Web services: the invokable substrate behind every benchmark.

A :class:`SimulatedService` wraps a service interface with a deterministic
:class:`~repro.services.datagen.TupleGenerator` and a seeded latency model.
Invoking it yields a :class:`SimulatedInvocation`, which is a
:class:`~repro.joins.methods.ChunkSource`: each ``next_chunk()`` models one
request-response round trip — it advances the virtual clock by a latency
draw, appends a :class:`~repro.engine.events.CallRecord` to the call log,
and returns the next chunk of the ranked result list.

A :class:`ServicePool` manages one simulated service per registered
interface, sharing a clock, log, and global seed — this is the "execution
environment ... capable of executing query plans" of Section 3.

Services can misbehave on demand: a :class:`FaultModel` assigns each
interface a :class:`FaultProfile` (transient-failure probability, slow-call
probability and multiplier, permanent-outage flag).  Fault draws come from
a per-invocation RNG derived from the global seed — *separate* from the
latency RNG, so a zero-rate fault model reproduces the fault-free timeline
exactly — and each faulty round trip is logged with its outcome before
``next_chunk()`` raises :class:`~repro.errors.ServiceTimeoutError` or
:class:`~repro.errors.ServiceUnavailableError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.ast import SelectionPredicate

from repro.engine.events import CallLog, CallRecord, VirtualClock
from repro.errors import (
    ServiceInvocationError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.joins.methods import ChunkSource
from repro.model.registry import ServiceRegistry
from repro.model.scoring import ScoringFunction
from repro.model.service import ServiceInterface
from repro.model.tuples import ServiceTuple
from repro.services.datagen import TupleGenerator, derive_seed

__all__ = [
    "LatencyModel",
    "FaultProfile",
    "FaultModel",
    "NO_FAULTS",
    "SimulatedInvocation",
    "SimulatedService",
    "ServicePool",
]


@dataclass(frozen=True)
class LatencyModel:
    """Seeded per-call latency: ``base + jitter`` plus per-tuple transfer.

    Jitter is uniform in ``[-jitter_fraction, +jitter_fraction]`` of the
    base, drawn from the invocation's own RNG, so latencies are
    reproducible under the global seed.
    """

    jitter_fraction: float = 0.1

    def draw(
        self, interface: ServiceInterface, tuples: int, rng: random.Random
    ) -> float:
        base = interface.stats.latency
        jitter = base * self.jitter_fraction
        latency = base + rng.uniform(-jitter, jitter) if jitter else base
        return max(0.0, latency) + tuples * interface.stats.per_tuple_latency


@dataclass(frozen=True)
class FaultProfile:
    """How one service interface misbehaves.

    ``failure_rate`` is the per-round-trip probability of a transient
    fault (the call costs a latency draw, delivers nothing, and raises
    :class:`~repro.errors.ServiceUnavailableError`).  ``timeout_rate`` is
    the probability a call is pathologically slow: its latency is
    multiplied by ``slow_factor``, and if a per-call timeout is in force
    and exceeded the call costs exactly the timeout and raises
    :class:`~repro.errors.ServiceTimeoutError` (with no timeout set, the
    slow call simply takes longer and is logged with outcome ``slow``).
    ``outage`` marks the service permanently down: every call fails.
    """

    failure_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_factor: float = 10.0
    outage: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ServiceInvocationError("failure_rate must be in [0, 1]")
        if not 0.0 <= self.timeout_rate <= 1.0:
            raise ServiceInvocationError("timeout_rate must be in [0, 1]")
        if self.slow_factor < 1.0:
            raise ServiceInvocationError("slow_factor must be at least 1")

    @property
    def active(self) -> bool:
        """Whether this profile can produce any fault at all."""
        return bool(self.failure_rate or self.timeout_rate or self.outage)


#: The default, perfectly well-behaved profile.
NO_FAULTS = FaultProfile()


@dataclass(frozen=True)
class FaultModel:
    """Per-interface fault assignment for a :class:`ServicePool`.

    ``default`` applies to every interface not named in
    ``per_interface``.  Profiles are looked up by interface name.
    """

    default: FaultProfile = NO_FAULTS
    per_interface: Mapping[str, FaultProfile] = field(default_factory=dict)

    def profile(self, interface_name: str) -> FaultProfile:
        return self.per_interface.get(interface_name, self.default)

    @classmethod
    def uniform(
        cls,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        slow_factor: float = 10.0,
    ) -> "FaultModel":
        """Same transient-fault behaviour for every interface."""
        return cls(
            default=FaultProfile(
                failure_rate=failure_rate,
                timeout_rate=timeout_rate,
                slow_factor=slow_factor,
            )
        )

    def with_outage(self, *interface_names: str) -> "FaultModel":
        """A copy with the named interfaces permanently down."""
        per = dict(self.per_interface)
        for name in interface_names:
            base = self.profile(name)
            per[name] = FaultProfile(
                failure_rate=base.failure_rate,
                timeout_rate=base.timeout_rate,
                slow_factor=base.slow_factor,
                outage=True,
            )
        return FaultModel(default=self.default, per_interface=per)


@dataclass
class SimulatedInvocation(ChunkSource):
    """One in-flight invocation: a chunk source over generated results."""

    interface: ServiceInterface
    results: list[ServiceTuple]
    alias: str
    clock: VirtualClock
    log: CallLog
    latency_model: LatencyModel
    rng: random.Random
    fault_profile: FaultProfile = NO_FAULTS
    fault_rng: random.Random | None = None
    call_timeout: float | None = None
    chunk_size: int = field(init=False)
    scoring: ScoringFunction = field(init=False)
    _cursor: int = 0
    _calls: int = 0
    _attempt: int = 1
    _terminal_recorded: bool = False

    def __post_init__(self) -> None:
        self.chunk_size = self.interface.chunk_size
        self.scoring = self.interface.scoring

    def next_chunk(self) -> list[ServiceTuple] | None:
        """One request-response: advance time, log the call, return a chunk.

        Unchunked services ship their whole result list in the single
        first call and are exhausted afterwards.  A failing round trip is
        logged (it costs real time) before the corresponding
        :class:`~repro.errors.ServiceUnavailableError` /
        :class:`~repro.errors.ServiceTimeoutError` is raised; the cursor
        does not move, so a retry re-requests the same chunk.
        """
        profile = self.fault_profile
        if profile.outage:
            self._record_failure("unavailable")
            raise ServiceUnavailableError(
                f"service {self.interface.name!r} is down",
                service=self.interface.name,
                permanent=True,
            )
        if (
            profile.failure_rate
            and self._fault_draw() < profile.failure_rate
        ):
            self._record_failure("error")
            raise ServiceUnavailableError(
                f"transient failure calling {self.interface.name!r}",
                service=self.interface.name,
                permanent=False,
            )
        slow = bool(profile.timeout_rate) and self._fault_draw() < profile.timeout_rate

        if self._cursor >= len(self.results):
            if not self._terminal_recorded:
                if self._calls == 0:
                    # An empty first response still costs one round trip.
                    self._record(0, slow=slow)
                elif self.interface.is_chunked:
                    # A chunked client cannot know the list ended: the
                    # round trip that discovers exhaustion costs a call.
                    self._record(0, slow=slow)
                self._terminal_recorded = True
            return None

        if self.interface.is_chunked:
            chunk = self.results[self._cursor : self._cursor + self.chunk_size]
        else:
            chunk = self.results[self._cursor :]
        self._record(len(chunk), slow=slow)
        self._cursor += len(chunk)
        return list(chunk)

    def _fault_draw(self) -> float:
        rng = self.fault_rng
        if rng is None:
            return 1.0  # no fault RNG: never triggers
        return rng.random()

    def _record(self, tuples: int, slow: bool = False) -> None:
        """Log one round trip; a slow call past the deadline times out."""
        latency = self.latency_model.draw(self.interface, tuples, self.rng)
        if slow:
            latency *= self.fault_profile.slow_factor
        timed_out = (
            self.call_timeout is not None and latency > self.call_timeout
        )
        if timed_out:
            # The caller stops waiting at the deadline; nothing arrives.
            latency = float(self.call_timeout)  # type: ignore[arg-type]
            outcome = "timeout"
            tuples = 0
        else:
            outcome = "slow" if slow else "ok"
        self._append(tuples, latency, outcome)
        if timed_out:
            self._attempt += 1
            raise ServiceTimeoutError(
                f"call to {self.interface.name!r} exceeded its "
                f"{self.call_timeout}s timeout",
                service=self.interface.name,
                timeout=self.call_timeout,
            )
        self._attempt = 1

    def _record_failure(self, outcome: str) -> None:
        """Log a failed round trip: it costs a latency draw but ships nothing."""
        latency = self.latency_model.draw(self.interface, 0, self.rng)
        if self.call_timeout is not None:
            latency = min(latency, self.call_timeout)
        self._append(0, latency, outcome)
        self._attempt += 1

    def _append(self, tuples: int, latency: float, outcome: str) -> None:
        self.log.record(
            CallRecord(
                service=self.interface.name,
                alias=self.alias,
                chunk_index=self._calls,
                started_at=self.clock.now,
                latency=latency,
                tuples=tuples,
                outcome=outcome,
                attempt=self._attempt,
            )
        )
        self.clock.advance(latency)
        self._calls += 1

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def remaining(self) -> int:
        return max(0, len(self.results) - self._cursor)


@dataclass
class SimulatedService:
    """A deterministic stand-in for one Web service interface."""

    interface: ServiceInterface
    global_seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    fault_profile: FaultProfile = NO_FAULTS
    generator: TupleGenerator = field(init=False)

    def __post_init__(self) -> None:
        self.generator = TupleGenerator(
            interface=self.interface, global_seed=self.global_seed
        )

    def invoke(
        self,
        inputs: Mapping[str, Any],
        clock: VirtualClock,
        log: CallLog,
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
        call_timeout: float | None = None,
    ) -> SimulatedInvocation:
        """Start one invocation with the given input bindings.

        ``constraints`` are server-side input predicates (resolved to
        constants) the simulated service filters by.  ``availability`` is
        the probability that this invocation has any results at all — the
        executor passes the pipe-join selectivity here, modelling e.g.
        "only 40% of theatres have a good restaurant close by"
        (Section 5.6's DinnerPlace estimate).  The draw is a deterministic
        function of the bindings.  ``call_timeout`` bounds each round
        trip's virtual duration (see :class:`FaultProfile`).  Raises
        :class:`~repro.errors.ServiceInvocationError` when a declared input
        path is missing from ``inputs``.
        """
        if availability < 1.0:
            gate = random.Random(
                derive_seed(self.global_seed ^ 0xA7A11, self.interface.name, inputs)
            )
            if gate.random() >= availability:
                results: list[ServiceTuple] = []
            else:
                results = self.generator.generate(inputs, constraints=constraints)
        else:
            results = self.generator.generate(inputs, constraints=constraints)
        rng = random.Random(
            derive_seed(self.global_seed ^ 0x5EC0, self.interface.name, inputs)
        )
        fault_rng = (
            random.Random(
                derive_seed(self.global_seed ^ 0xFA17, self.interface.name, inputs)
            )
            if self.fault_profile.active
            else None
        )
        return SimulatedInvocation(
            interface=self.interface,
            results=results,
            alias=alias or self.interface.name,
            clock=clock,
            log=log,
            latency_model=self.latency_model,
            rng=rng,
            fault_profile=self.fault_profile,
            fault_rng=fault_rng,
            call_timeout=call_timeout,
        )


@dataclass
class ServicePool:
    """Shared execution context over a registry's interfaces."""

    registry: ServiceRegistry
    global_seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    fault_model: FaultModel = field(default_factory=FaultModel)
    clock: VirtualClock = field(default_factory=VirtualClock)
    log: CallLog = field(default_factory=CallLog)
    _services: dict[str, SimulatedService] = field(default_factory=dict)

    def service(self, interface_name: str) -> SimulatedService:
        if interface_name not in self._services:
            interface = self.registry.interface(interface_name)
            self._services[interface_name] = SimulatedService(
                interface=interface,
                global_seed=self.global_seed,
                latency_model=self.latency_model,
                fault_profile=self.fault_model.profile(interface_name),
            )
        return self._services[interface_name]

    def invoke(
        self,
        interface_name: str,
        inputs: Mapping[str, Any],
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
        call_timeout: float | None = None,
    ) -> SimulatedInvocation:
        return self.service(interface_name).invoke(
            inputs,
            clock=self.clock,
            log=self.log,
            alias=alias,
            constraints=constraints,
            availability=availability,
            call_timeout=call_timeout,
        )

    def reset(self) -> None:
        """Zero the clock and clear the log; data stays identical (same seed).

        Both are reset *in place*: cached :class:`SimulatedService`\\ s and
        in-flight :class:`SimulatedInvocation`\\ s hold references to the
        pool's clock and log, so swapping in fresh objects would leave
        them recording to an orphaned log and advancing a dead clock.
        """
        self.clock.reset()
        self.log.clear()


def ranked_order_ok(tuples: Iterable[ServiceTuple]) -> bool:
    """Check that a tuple stream is in non-increasing score order."""
    previous: float | None = None
    for tup in tuples:
        if previous is not None and tup.score > previous + 1e-9:
            return False
        previous = tup.score
    return True
