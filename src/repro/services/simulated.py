"""Simulated Web services: the invokable substrate behind every benchmark.

A :class:`SimulatedService` wraps a service interface with a deterministic
:class:`~repro.services.datagen.TupleGenerator` and a seeded latency model.
Invoking it yields a :class:`SimulatedInvocation`, which is a
:class:`~repro.joins.methods.ChunkSource`: each ``next_chunk()`` models one
request-response round trip — it advances the virtual clock by a latency
draw, appends a :class:`~repro.engine.events.CallRecord` to the call log,
and returns the next chunk of the ranked result list.

A :class:`ServicePool` manages one simulated service per registered
interface, sharing a clock, log, and global seed — this is the "execution
environment ... capable of executing query plans" of Section 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.ast import SelectionPredicate

from repro.engine.events import CallLog, CallRecord, VirtualClock
from repro.errors import ServiceInvocationError
from repro.joins.methods import ChunkSource
from repro.model.registry import ServiceRegistry
from repro.model.scoring import ScoringFunction
from repro.model.service import ServiceInterface
from repro.model.tuples import ServiceTuple
from repro.services.datagen import TupleGenerator, derive_seed

__all__ = ["LatencyModel", "SimulatedInvocation", "SimulatedService", "ServicePool"]


@dataclass(frozen=True)
class LatencyModel:
    """Seeded per-call latency: ``base + jitter`` plus per-tuple transfer.

    Jitter is uniform in ``[-jitter_fraction, +jitter_fraction]`` of the
    base, drawn from the invocation's own RNG, so latencies are
    reproducible under the global seed.
    """

    jitter_fraction: float = 0.1

    def draw(
        self, interface: ServiceInterface, tuples: int, rng: random.Random
    ) -> float:
        base = interface.stats.latency
        jitter = base * self.jitter_fraction
        latency = base + rng.uniform(-jitter, jitter) if jitter else base
        return max(0.0, latency) + tuples * interface.stats.per_tuple_latency


@dataclass
class SimulatedInvocation(ChunkSource):
    """One in-flight invocation: a chunk source over generated results."""

    interface: ServiceInterface
    results: list[ServiceTuple]
    alias: str
    clock: VirtualClock
    log: CallLog
    latency_model: LatencyModel
    rng: random.Random
    chunk_size: int = field(init=False)
    scoring: ScoringFunction = field(init=False)
    _cursor: int = 0
    _calls: int = 0

    def __post_init__(self) -> None:
        self.chunk_size = self.interface.chunk_size
        self.scoring = self.interface.scoring

    def next_chunk(self) -> list[ServiceTuple] | None:
        """One request-response: advance time, log the call, return a chunk.

        Unchunked services ship their whole result list in the single
        first call and are exhausted afterwards.
        """
        if self._cursor >= len(self.results):
            if self._calls == 0 and not self.results:
                # An empty first response still costs one round trip.
                self._record(0)
            return None
        if self.interface.is_chunked:
            chunk = self.results[self._cursor : self._cursor + self.chunk_size]
            self._cursor += self.chunk_size
        else:
            chunk = self.results[self._cursor :]
            self._cursor = len(self.results)
        self._record(len(chunk))
        return list(chunk)

    def _record(self, tuples: int) -> None:
        latency = self.latency_model.draw(self.interface, tuples, self.rng)
        self.log.record(
            CallRecord(
                service=self.interface.name,
                alias=self.alias,
                chunk_index=self._calls,
                started_at=self.clock.now,
                latency=latency,
                tuples=tuples,
            )
        )
        self.clock.advance(latency)
        self._calls += 1

    @property
    def calls(self) -> int:
        return self._calls

    @property
    def remaining(self) -> int:
        return max(0, len(self.results) - self._cursor)


@dataclass
class SimulatedService:
    """A deterministic stand-in for one Web service interface."""

    interface: ServiceInterface
    global_seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    generator: TupleGenerator = field(init=False)

    def __post_init__(self) -> None:
        self.generator = TupleGenerator(
            interface=self.interface, global_seed=self.global_seed
        )

    def invoke(
        self,
        inputs: Mapping[str, Any],
        clock: VirtualClock,
        log: CallLog,
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
    ) -> SimulatedInvocation:
        """Start one invocation with the given input bindings.

        ``constraints`` are server-side input predicates (resolved to
        constants) the simulated service filters by.  ``availability`` is
        the probability that this invocation has any results at all — the
        executor passes the pipe-join selectivity here, modelling e.g.
        "only 40% of theatres have a good restaurant close by"
        (Section 5.6's DinnerPlace estimate).  The draw is a deterministic
        function of the bindings.  Raises
        :class:`~repro.errors.ServiceInvocationError` when a declared input
        path is missing from ``inputs``.
        """
        if availability < 1.0:
            gate = random.Random(
                derive_seed(self.global_seed ^ 0xA7A11, self.interface.name, inputs)
            )
            if gate.random() >= availability:
                results: list[ServiceTuple] = []
            else:
                results = self.generator.generate(inputs, constraints=constraints)
        else:
            results = self.generator.generate(inputs, constraints=constraints)
        rng = random.Random(
            derive_seed(self.global_seed ^ 0x5EC0, self.interface.name, inputs)
        )
        return SimulatedInvocation(
            interface=self.interface,
            results=results,
            alias=alias or self.interface.name,
            clock=clock,
            log=log,
            latency_model=self.latency_model,
            rng=rng,
        )


@dataclass
class ServicePool:
    """Shared execution context over a registry's interfaces."""

    registry: ServiceRegistry
    global_seed: int = 0
    latency_model: LatencyModel = field(default_factory=LatencyModel)
    clock: VirtualClock = field(default_factory=VirtualClock)
    log: CallLog = field(default_factory=CallLog)
    _services: dict[str, SimulatedService] = field(default_factory=dict)

    def service(self, interface_name: str) -> SimulatedService:
        if interface_name not in self._services:
            interface = self.registry.interface(interface_name)
            self._services[interface_name] = SimulatedService(
                interface=interface,
                global_seed=self.global_seed,
                latency_model=self.latency_model,
            )
        return self._services[interface_name]

    def invoke(
        self,
        interface_name: str,
        inputs: Mapping[str, Any],
        alias: str | None = None,
        constraints: Sequence["SelectionPredicate"] = (),
        availability: float = 1.0,
    ) -> SimulatedInvocation:
        return self.service(interface_name).invoke(
            inputs,
            clock=self.clock,
            log=self.log,
            alias=alias,
            constraints=constraints,
            availability=availability,
        )

    def reset(self) -> None:
        """Fresh clock and log; generated data stays identical (same seed)."""
        self.clock = VirtualClock()
        self.log = CallLog()


def ranked_order_ok(tuples: Iterable[ServiceTuple]) -> bool:
    """Check that a tuple stream is in non-increasing score order."""
    previous: float | None = None
    for tup in tuples:
        if previous is not None and tup.score > previous + 1e-9:
            return False
        previous = tup.score
    return True
