"""Example service schemas: the chapter's two worked scenarios.

* :func:`movie_night_registry` — the running example (Sections 3.1, 5.6):
  ``Movie1``, ``Theatre1``, ``Restaurant1`` with the connection patterns
  ``Shows`` (selectivity 2%) and ``DinnerPlace`` (selectivity 40%), and
  statistics calibrated to reproduce the Fig. 10 fully instantiated plan
  (movie chunks of 20, theatre chunks of 5, one restaurant kept per
  location).
* :func:`conference_trip_registry` — the Fig. 2/3 example: an exact
  proliferative ``Conference1`` (20 conferences on average), an exact
  ``Weather1`` that becomes *selective in the context of the query* via
  the average-temperature predicate, and chunked search services
  ``Flight1`` and ``Hotel1`` joined by a merge-scan parallel join.

Deviations from the chapter's listings (which contain internal
inconsistencies) are deliberate and documented in DESIGN.md:
``Movie1.Language`` is adorned ``O`` (the chapter's query never binds it
yet claims feasibility), ``Restaurant1`` takes its address triple as
inputs ``RAddress/RCity/RCountry`` (the chapter states Restaurant's
"three input attributes ... are joined with the homonymous ones that are
in output in Theatre"), and the category selection is placed on ``R``
(the chapter's ``T.Category`` is a typo — Theatre has no Category).
"""

from __future__ import annotations

from repro.model.attributes import Attribute, DataType, Domain, RepeatingGroup
from repro.model.connections import AttributePair, ConnectionPattern
from repro.model.registry import ServiceRegistry
from repro.model.scoring import ExponentialScoring, LinearScoring, PowerLawScoring
from repro.model.service import (
    AccessPattern,
    ServiceInterface,
    ServiceKind,
    ServiceMart,
    ServiceStats,
)

__all__ = [
    "movie_night_registry",
    "conference_trip_registry",
    "RUNNING_EXAMPLE_QUERY",
    "RUNNING_EXAMPLE_INPUTS",
    "CONFERENCE_QUERY",
    "CONFERENCE_INPUTS",
]

# Shared domains.  Sizes encode join selectivities: a 50-title universe
# makes P(movie shown in a given theatre) = 1/50 = 2% -- the chapter's
# estimate for Shows().
_TITLE = Domain("title", DataType.STRING, size=50)
_GENRE = Domain("genre", DataType.STRING, size=8)
_COUNTRY = Domain("country", DataType.STRING, size=10)
_CITY = Domain("city", DataType.STRING, size=20)
_ADDRESS = Domain("address", DataType.STRING, size=40)
_DATE = Domain("caldate", DataType.DATE, size=365)
_NAME = Domain("name", DataType.STRING, size=1000)
_CATEGORY = Domain("category", DataType.STRING, size=6)
_URL = Domain("url", DataType.ANY)
_MONEY = Domain("price", DataType.FLOAT, size=500)
_TEMP = Domain("temperature", DataType.FLOAT, size=40)
_TOPIC = Domain("topic", DataType.STRING, size=12)


def movie_night_registry(with_alternates: bool = False) -> ServiceRegistry:
    """Registry for the Movie/Theatre/Restaurant running example.

    With ``with_alternates=True`` each mart gets a second service
    interface with a different access pattern and cost profile, so the
    optimizer's phase 1 has real interface choices to make: ``Movie2``
    needs only the genre (fewer inputs, bigger answers, slower) and
    ``Theatre2`` is an expensive high-recall variant.
    """
    registry = ServiceRegistry()

    movie = ServiceMart(
        "Movie",
        (
            Attribute("Title", _TITLE),
            Attribute("Director", _NAME),
            Attribute("Score", Domain("stars", DataType.FLOAT, size=10)),
            Attribute("Year", Domain("year", DataType.INTEGER, size=60)),
            RepeatingGroup("Genres", (Attribute("Genre", _GENRE),), avg_members=2),
            Attribute("Language", Domain("language", DataType.STRING, size=12)),
            RepeatingGroup(
                "Openings",
                (Attribute("Country", _COUNTRY), Attribute("Date", _DATE)),
                avg_members=2,
            ),
            RepeatingGroup("Actor", (Attribute("Name", _NAME),)),
        ),
        description="Movies ranked by critics' score",
    )
    theatre = ServiceMart(
        "Theatre",
        (
            Attribute("Name", _NAME),
            Attribute("UAddress", _ADDRESS),
            Attribute("UCity", _CITY),
            Attribute("UCountry", _COUNTRY),
            Attribute("TAddress", _ADDRESS),
            Attribute("TCity", _CITY),
            Attribute("TCountry", _COUNTRY),
            Attribute("TPhone", Domain("phone", DataType.STRING)),
            Attribute("Distance", Domain("distance", DataType.FLOAT, size=30)),
            # One programmed movie per theatre tuple keeps the Shows()
            # equijoin selectivity at the declared 1/|title| = 2%.
            RepeatingGroup(
                "Movie",
                (
                    Attribute("Title", _TITLE),
                    Attribute("StartTimes", Domain("time", DataType.STRING, size=48)),
                    Attribute("Duration", Domain("minutes", DataType.INTEGER, size=240)),
                ),
                avg_members=1,
            ),
        ),
        description="Theatres ranked by distance from the user's address",
    )
    restaurant = ServiceMart(
        "Restaurant",
        (
            Attribute("Name", _NAME),
            Attribute("RAddress", _ADDRESS),
            Attribute("RCity", _CITY),
            Attribute("RCountry", _COUNTRY),
            Attribute("Phone", Domain("phone", DataType.STRING)),
            Attribute("Url", _URL),
            Attribute("MapUrl", _URL),
            Attribute("Distance", Domain("distance", DataType.FLOAT, size=30)),
            Attribute("Rating", Domain("stars", DataType.FLOAT, size=10)),
            RepeatingGroup("Category", (Attribute("Name", _CATEGORY),), avg_members=1),
        ),
        description="Restaurants ranked by rating and proximity",
    )

    registry.register_interface(
        ServiceInterface(
            name="Movie1",
            mart=movie,
            access_pattern=AccessPattern.from_spec(
                {
                    "Genres.Genre": "I",
                    "Openings.Country": "I",
                    "Openings.Date": "I",
                    "Score": "R",
                }
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=150, chunk_size=20, latency=1.0, invocation_fee=1.0
            ),
            scoring=PowerLawScoring(exponent=0.35),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="Theatre1",
            mart=theatre,
            access_pattern=AccessPattern.from_spec(
                {
                    "UAddress": "I",
                    "UCity": "I",
                    "UCountry": "I",
                    "Distance": "R",
                }
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=40, chunk_size=5, latency=0.8, invocation_fee=1.0
            ),
            scoring=LinearScoring(horizon=40),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="Restaurant1",
            mart=restaurant,
            access_pattern=AccessPattern.from_spec(
                {
                    "RAddress": "I",
                    "RCity": "I",
                    "RCountry": "I",
                    "Category.Name": "I",
                    "Distance": "R",
                    "Rating": "R",
                }
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(
                avg_cardinality=2, chunk_size=1, latency=0.6, invocation_fee=1.0
            ),
            scoring=ExponentialScoring(rate=0.4),
        )
    )

    if with_alternates:
        registry.register_interface(
            ServiceInterface(
                name="Movie2",
                mart=movie,
                access_pattern=AccessPattern.from_spec(
                    {"Genres.Genre": "I", "Score": "R"}
                ),
                kind=ServiceKind.SEARCH,
                stats=ServiceStats(
                    avg_cardinality=400, chunk_size=20, latency=2.5,
                    invocation_fee=2.0,
                ),
                scoring=PowerLawScoring(exponent=0.25),
            )
        )
        registry.register_interface(
            ServiceInterface(
                name="Theatre2",
                mart=theatre,
                access_pattern=AccessPattern.from_spec(
                    {"UCity": "I", "UCountry": "I", "Distance": "R"}
                ),
                kind=ServiceKind.SEARCH,
                stats=ServiceStats(
                    avg_cardinality=120, chunk_size=10, latency=2.0,
                    invocation_fee=3.0,
                ),
                scoring=LinearScoring(horizon=120),
            )
        )

    registry.register_pattern(
        ConnectionPattern(
            name="Shows",
            source=movie,
            target=theatre,
            pairs=(AttributePair.parse("Title", "Movie.Title"),),
            selectivity=0.02,
            description="The movie is programmed by the theatre",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="DinnerPlace",
            source=theatre,
            target=restaurant,
            pairs=(
                AttributePair.parse("TAddress", "RAddress"),
                AttributePair.parse("TCity", "RCity"),
                AttributePair.parse("TCountry", "RCountry"),
            ),
            selectivity=0.40,
            description="A good restaurant close to the theatre",
        )
    )
    return registry


#: The running-example query of Section 3.1 (connection-pattern form).
RUNNING_EXAMPLE_QUERY = (
    "SELECT Movie1 AS M, Theatre1 AS T, Restaurant1 AS R "
    "WHERE Shows(M, T) AND DinnerPlace(T, R) "
    "AND M.Genres.Genre = INPUT1 AND M.Openings.Country = INPUT2 "
    "AND M.Openings.Date > INPUT3 AND T.UAddress = INPUT4 "
    "AND T.UCity = INPUT5 AND T.UCountry = INPUT2 "
    "AND R.Category.Name = INPUT6 "
    "RANK BY 0.3*M, 0.5*T, 0.2*R LIMIT 10"
)

#: Default bindings for the running example's INPUT variables.
RUNNING_EXAMPLE_INPUTS = {
    "INPUT1": "genre#3",
    "INPUT2": "country#1",
    "INPUT3": "2009-03-01",
    "INPUT4": "address#17",
    "INPUT5": "city#4",
    "INPUT6": "category#2",
}


def conference_trip_registry() -> ServiceRegistry:
    """Registry for the Conference/Weather/Flight/Hotel example (Fig. 2)."""
    registry = ServiceRegistry()

    conference = ServiceMart(
        "Conference",
        (
            Attribute("Name", _NAME),
            Attribute("City", _CITY),
            Attribute("Country", _COUNTRY),
            Attribute("Start", _DATE),
            Attribute("End", _DATE),
            Attribute("Topic", _TOPIC),
        ),
        description="Conferences matching a research topic",
    )
    weather = ServiceMart(
        "Weather",
        (
            Attribute("WCity", _CITY),
            Attribute("AvgTemp", _TEMP),
        ),
        description="Average temperature per city",
    )
    flight = ServiceMart(
        "Flight",
        (
            Attribute("FromCity", _CITY),
            Attribute("ToCity", _CITY),
            Attribute("FDate", _DATE),
            Attribute("Airline", Domain("airline", DataType.STRING, size=15)),
            Attribute("FPrice", _MONEY),
        ),
        description="Flights ranked by price",
    )
    hotel = ServiceMart(
        "Hotel",
        (
            Attribute("HName", _NAME),
            Attribute("HCity", _CITY),
            Attribute("Stars", Domain("stars", DataType.INTEGER, size=5)),
            Attribute("HPrice", _MONEY),
        ),
        description="Hotels ranked by value for money",
    )

    registry.register_interface(
        ServiceInterface(
            name="Conference1",
            mart=conference,
            access_pattern=AccessPattern.from_spec({"Topic": "I"}),
            kind=ServiceKind.EXACT,
            stats=ServiceStats(avg_cardinality=20, chunk_size=None, latency=1.2),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="Weather1",
            mart=weather,
            access_pattern=AccessPattern.from_spec({"WCity": "I"}),
            kind=ServiceKind.EXACT,
            stats=ServiceStats(avg_cardinality=1, chunk_size=None, latency=0.3),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="Flight1",
            mart=flight,
            access_pattern=AccessPattern.from_spec(
                {"FromCity": "I", "ToCity": "I", "FDate": "I", "FPrice": "R"}
            ),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(avg_cardinality=60, chunk_size=10, latency=1.5),
            scoring=LinearScoring(horizon=60),
        )
    )
    registry.register_interface(
        ServiceInterface(
            name="Hotel1",
            mart=hotel,
            access_pattern=AccessPattern.from_spec({"HCity": "I", "Stars": "R"}),
            kind=ServiceKind.SEARCH,
            stats=ServiceStats(avg_cardinality=80, chunk_size=10, latency=1.0),
            scoring=ExponentialScoring(rate=0.02),
        )
    )

    registry.register_pattern(
        ConnectionPattern(
            name="LocatedIn",
            source=conference,
            target=weather,
            pairs=(AttributePair.parse("City", "WCity"),),
            selectivity=1.0,
            description="Weather at the conference city",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="FliesTo",
            source=conference,
            target=flight,
            pairs=(AttributePair.parse("City", "ToCity"),),
            selectivity=0.95,
            description="Flights into the conference city",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="Venue",
            source=conference,
            target=hotel,
            pairs=(AttributePair.parse("City", "HCity"),),
            selectivity=0.95,
            description="Hotels in the conference city",
        )
    )
    registry.register_pattern(
        ConnectionPattern(
            name="Stay",
            source=flight,
            target=hotel,
            pairs=(AttributePair.parse("ToCity", "HCity"),),
            selectivity=0.9,
            description="Hotel in the flight's destination city",
        )
    )
    return registry


#: The Fig. 2 query: conferences on a topic, warm weather, flight + hotel.
CONFERENCE_QUERY = (
    "SELECT Conference1 AS C, Weather1 AS W, Flight1 AS F, Hotel1 AS H "
    "WHERE LocatedIn(C, W) AND FliesTo(C, F) AND Venue(C, H) AND Stay(F, H) "
    "AND C.Topic = INPUT1 AND W.AvgTemp > INPUT2 "
    "AND F.FromCity = INPUT3 AND F.FDate = INPUT4 "
    "RANK BY 0.5*F, 0.5*H LIMIT 10"
)

#: Default bindings for the conference example's INPUT variables.
CONFERENCE_INPUTS = {
    "INPUT1": "topic#5",
    "INPUT2": 26.0,
    "INPUT3": "city#0",
    "INPUT4": "2009-06-15",
}
