"""Simulated Web-service substrate and the chapter's example schemas."""

from repro.services.datagen import TupleGenerator, derive_seed, domain_value
from repro.services.marts import (
    CONFERENCE_INPUTS,
    CONFERENCE_QUERY,
    RUNNING_EXAMPLE_INPUTS,
    RUNNING_EXAMPLE_QUERY,
    conference_trip_registry,
    movie_night_registry,
)
from repro.services.recorded import (
    Cassette,
    RecordedPool,
    RecordedService,
    ReplayInvocation,
)
from repro.services.scenarios import (
    SCENARIOS,
    ScenarioPack,
    scenario_pack,
    scholar_registry,
    shopping_registry,
    travel_registry,
)
from repro.services.simulated import (
    NO_FAULTS,
    FaultModel,
    FaultProfile,
    LatencyModel,
    ServicePool,
    SimulatedInvocation,
    SimulatedService,
)

__all__ = [
    "TupleGenerator",
    "derive_seed",
    "domain_value",
    "CONFERENCE_INPUTS",
    "CONFERENCE_QUERY",
    "RUNNING_EXAMPLE_INPUTS",
    "RUNNING_EXAMPLE_QUERY",
    "conference_trip_registry",
    "movie_night_registry",
    "LatencyModel",
    "FaultProfile",
    "FaultModel",
    "NO_FAULTS",
    "ServicePool",
    "SimulatedInvocation",
    "SimulatedService",
    "Cassette",
    "RecordedPool",
    "RecordedService",
    "ReplayInvocation",
    "SCENARIOS",
    "ScenarioPack",
    "scenario_pack",
    "scholar_registry",
    "shopping_registry",
    "travel_registry",
]
