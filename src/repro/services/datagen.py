"""Deterministic synthetic data generation for simulated services.

The chapter evaluates its framework over live Web sources (movie, theatre,
restaurant, flight services...).  Those are unavailable and irreproducible,
so this module synthesises result lists with the *statistical* properties
the optimizer and join methods actually depend on:

* values of join attributes are drawn uniformly from their declared
  :class:`~repro.model.attributes.Domain` — an equijoin over a domain of
  size ``n`` then matches with probability ``1/n``, which is how example
  schemas encode the chapter's pattern selectivities (e.g. ``Shows`` = 2%
  via a 50-title domain);
* input bindings are echoed into result tuples, so pipe joins are
  consistent by construction (asking a restaurant service for city X
  yields restaurants in city X);
* scores follow the interface's scoring function, so results arrive in
  ranking order with the declared decay shape;
* everything is a pure function of ``(seed, interface, inputs)`` — the
  same invocation always returns the same tuples.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.ast import SelectionPredicate

from repro.errors import ServiceInvocationError
from repro.model.attributes import Attribute, DataType, RepeatingGroup
from repro.model.service import ServiceInterface
from repro.model.tuples import ServiceTuple

__all__ = ["derive_seed", "domain_value", "TupleGenerator"]


def derive_seed(global_seed: int, interface_name: str, inputs: Mapping[str, Any]) -> int:
    """Stable 64-bit seed for one invocation.

    Uses blake2b over a canonical rendering so the same (seed, service,
    inputs) triple regenerates identical results across processes —
    ``hash()`` would not, because of string-hash randomisation.
    """
    canonical = f"{global_seed}|{interface_name}|" + "|".join(
        f"{key}={inputs[key]!r}" for key in sorted(inputs)
    )
    digest = hashlib.blake2b(canonical.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def domain_value(attribute: Attribute, rng: random.Random) -> Any:
    """Draw one uniform value from an attribute's domain.

    Sized domains enumerate ``size`` distinct values; unsized domains fall
    back to a large universe (join selectivity then effectively zero,
    suitable for payload attributes like URLs).
    """
    domain = attribute.domain
    size = domain.size or 1_000_000
    index = rng.randrange(size)
    dtype = domain.dtype
    if dtype is DataType.INTEGER:
        return index
    if dtype is DataType.FLOAT:
        # Uniform floats over [0, size); quantised for reproducible display.
        return round(rng.uniform(0.0, float(size)), 3)
    if dtype is DataType.BOOLEAN:
        return index % 2 == 0
    if dtype is DataType.DATE:
        # Dates in 2009, the venue year: deterministic day within the year.
        day = index % 365
        month, dom = divmod(day, 31)
        return f"2009-{month % 12 + 1:02d}-{dom + 1:02d}"
    return f"{domain.name}#{index}"


@dataclass(frozen=True)
class TupleGenerator:
    """Generates the ranked result list of one simulated invocation."""

    interface: ServiceInterface
    global_seed: int = 0
    min_group_members: int = 1
    max_group_members: int = 3

    def result_size(self, rng: random.Random) -> int:
        """Invocation cardinality around the declared average.

        Selective services (average below one) return one tuple with the
        average as probability; proliferative ones draw uniformly within
        +/-25% of the average, at least one tuple.
        """
        avg = self.interface.stats.avg_cardinality
        if avg <= 0:
            return 0
        if avg < 1.0:
            return 1 if rng.random() < avg else 0
        spread = max(1, round(avg * 0.25))
        return max(1, round(avg) + rng.randint(-spread, spread))

    def generate(
        self,
        inputs: Mapping[str, Any],
        constraints: "Sequence[SelectionPredicate]" = (),
    ) -> list[ServiceTuple]:
        """Full ranked result list for one invocation.

        ``constraints`` are input-side predicates the real service would
        apply server-side (e.g. "opening date after X" in a search form);
        generated tuples that fail their joint-witness evaluation are
        dropped and the survivors renumbered, preserving ranking order.
        """
        missing = [p for p in self.interface.input_paths() if p not in inputs]
        if missing:
            raise ServiceInvocationError(
                f"{self.interface.name}: missing input bindings {missing}"
            )
        rng = random.Random(
            derive_seed(self.global_seed, self.interface.name, inputs)
        )
        total = self.result_size(rng)
        results: list[ServiceTuple] = []
        # Constraints shape the *data*, not the page size: a service asked
        # for "openings after X" still returns its usual result-list size,
        # every entry satisfying the constraint.  Rejection-sample until
        # `total` satisfying tuples exist (bounded attempts keep
        # unsatisfiable constraints from looping).
        attempts = 0
        max_attempts = max(20, total * 20)
        while len(results) < total and attempts < max_attempts:
            attempts += 1
            position = len(results)
            values = self._tuple_values(inputs, rng)
            candidate = ServiceTuple(
                values=values,
                score=min(1.0, max(0.0, self.interface.scoring.score_at(position))),
                source=self.interface.name,
                position=position,
            )
            if constraints and not self._passes(candidate, constraints):
                continue
            results.append(candidate)
        return results

    @staticmethod
    def _passes(
        candidate: ServiceTuple, constraints: "Sequence[SelectionPredicate]"
    ) -> bool:
        # Local import: the query layer depends on the model layer only, so
        # importing it here (rather than at module top) keeps the services
        # package importable from the query tests without a cycle.
        from repro.query.predicates import satisfies

        alias = constraints[0].attr.alias
        return satisfies({alias: candidate}, selections=list(constraints))

    def _tuple_values(
        self, inputs: Mapping[str, Any], rng: random.Random
    ) -> dict[str, Any]:
        values: dict[str, Any] = {}
        for attr in self.interface.mart.attributes:
            if isinstance(attr, RepeatingGroup):
                values[attr.name] = self._group_value(attr, inputs, rng)
            else:
                bound = inputs.get(attr.name)
                values[attr.name] = (
                    bound if bound is not None else domain_value(attr, rng)
                )
        return values

    def _group_value(
        self,
        group: RepeatingGroup,
        inputs: Mapping[str, Any],
        rng: random.Random,
    ) -> tuple[dict[str, Any], ...]:
        """Members of one repeating group, echoing any bound sub-attributes.

        When a sub-attribute is an input (e.g. ``Genres.Genre``), the first
        member echoes the binding — the service was asked for objects whose
        group contains that value — and the remaining members are random.
        """
        if group.avg_members is not None:
            members = group.avg_members
        else:
            members = rng.randint(self.min_group_members, self.max_group_members)
        out: list[dict[str, Any]] = []
        for index in range(members):
            member: dict[str, Any] = {}
            for sub in group.sub_attributes:
                bound = inputs.get(f"{group.name}.{sub.name}")
                if bound is not None and index == 0:
                    member[sub.name] = bound
                else:
                    member[sub.name] = domain_value(sub, rng)
            out.append(member)
        return out
