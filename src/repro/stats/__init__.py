"""Selectivity and result-size estimation (Section 3.2 assumptions)."""

from repro.stats.estimate import (
    DEFAULT_EQ,
    LIKE_SELECTIVITY,
    RANGE_SELECTIVITY,
    Estimator,
    combined_selection_selectivity,
    join_group_selectivity,
    selection_selectivity,
)

__all__ = [
    "DEFAULT_EQ",
    "LIKE_SELECTIVITY",
    "RANGE_SELECTIVITY",
    "Estimator",
    "combined_selection_selectivity",
    "join_group_selectivity",
    "selection_selectivity",
]
