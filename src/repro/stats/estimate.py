"""Selectivity and cardinality estimation.

Section 3.2: "We assume that services are independent of each other and
that at each service call the values are uniformly distributed over the
domains associated to their input and output fields.  These assumptions
allow us to obtain estimates for predicate selectivity and sizes of
results returned by each service call."

Rules implemented here:

* an equality over an attribute with a sized domain has selectivity
  ``1/|domain|``; unsized domains fall back to :data:`DEFAULT_EQ`;
* ordered comparisons use the textbook ``1/3`` heuristic, LIKE ``1/4``;
* a join-predicate group expanded from a connection pattern uses the
  pattern's registered selectivity (Section 5.6 uses 2% for ``Shows`` and
  40% for ``DinnerPlace``);
* predicates combine multiplicatively under the independence assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.model.attributes import Attribute
from repro.model.service import ServiceMart
from repro.query.ast import Comparator, JoinPredicate, SelectionPredicate
from repro.query.compile import CompiledQuery

__all__ = [
    "DEFAULT_EQ",
    "RANGE_SELECTIVITY",
    "LIKE_SELECTIVITY",
    "selection_selectivity",
    "combined_selection_selectivity",
    "join_group_selectivity",
    "Estimator",
]

DEFAULT_EQ = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
LIKE_SELECTIVITY = 0.25


def _attribute_of(mart: ServiceMart, predicate: SelectionPredicate) -> Attribute:
    return mart.resolve(predicate.attr.path)


def selection_selectivity(
    predicate: SelectionPredicate, mart: ServiceMart
) -> float:
    """Selectivity of one selection predicate under uniformity."""
    if predicate.comparator is Comparator.EQ:
        attribute = _attribute_of(mart, predicate)
        if attribute.domain.size:
            return 1.0 / attribute.domain.size
        return DEFAULT_EQ
    if predicate.comparator is Comparator.LIKE:
        return LIKE_SELECTIVITY
    return RANGE_SELECTIVITY


def combined_selection_selectivity(
    predicates: Sequence[SelectionPredicate], mart: ServiceMart
) -> float:
    """Product of per-predicate selectivities (independence assumption)."""
    result = 1.0
    for predicate in predicates:
        result *= selection_selectivity(predicate, mart)
    return result


def join_group_selectivity(
    predicates: Iterable[JoinPredicate],
    left_mart: ServiceMart | None = None,
    right_mart: ServiceMart | None = None,
) -> float:
    """Selectivity of a conjunction of join predicates between two atoms.

    Predicates stamped with an explicit ``selectivity`` (set by pattern
    expansion) contribute it directly.  Others are estimated: equality via
    ``1/max(|dom_l|, |dom_r|)`` when a domain size is known, else
    :data:`DEFAULT_EQ`; ranges via :data:`RANGE_SELECTIVITY`.
    """
    result = 1.0
    for predicate in predicates:
        if predicate.selectivity is not None:
            result *= predicate.selectivity
            continue
        if predicate.comparator is Comparator.EQ:
            sizes = []
            if left_mart is not None and left_mart.has_attribute(
                predicate.left.path.group or predicate.left.path.name
            ):
                attr = left_mart.resolve(predicate.left.path)
                if attr.domain.size:
                    sizes.append(attr.domain.size)
            if right_mart is not None and right_mart.has_attribute(
                predicate.right.path.group or predicate.right.path.name
            ):
                attr = right_mart.resolve(predicate.right.path)
                if attr.domain.size:
                    sizes.append(attr.domain.size)
            result *= 1.0 / max(sizes) if sizes else DEFAULT_EQ
        elif predicate.comparator is Comparator.LIKE:
            result *= LIKE_SELECTIVITY
        else:
            result *= RANGE_SELECTIVITY
    return result


@dataclass(frozen=True)
class Estimator:
    """Query-scoped estimation helpers used by the plan annotator.

    All methods take aliases of the wrapped compiled query and consult its
    marts, registered connection patterns, and predicate annotations.
    """

    query: CompiledQuery

    def pushed_selectivity(
        self, alias: str, exclude: Iterable[SelectionPredicate] = ()
    ) -> float:
        """Selectivity of the alias's non-binding selection predicates.

        Binding predicates (equality constants feeding input attributes)
        shape the invocation rather than filtering its results, so callers
        exclude them via ``exclude``.
        """
        excluded = set(id(p) for p in exclude)
        mart = self.query.atom(alias).mart
        predicates = [
            p for p in self.query.selections_on(alias) if id(p) not in excluded
        ]
        return combined_selection_selectivity(predicates, mart)

    def join_selectivity(self, alias_a: str, alias_b: str) -> float:
        """Selectivity of all join predicates between the two aliases."""
        predicates = self.query.joins_between(alias_a, alias_b)
        if not predicates:
            return 1.0
        return join_group_selectivity(
            predicates,
            left_mart=self.query.atom(predicates[0].left.alias).mart,
            right_mart=self.query.atom(predicates[0].right.alias).mart,
        )

    def predicates_selectivity(
        self, predicates: Iterable[JoinPredicate]
    ) -> float:
        preds = list(predicates)
        if not preds:
            return 1.0
        return join_group_selectivity(
            preds,
            left_mart=self.query.atom(preds[0].left.alias).mart,
            right_mart=self.query.atom(preds[0].right.alias).mart,
        )
