"""The query-plan DAG (Section 3.2).

A :class:`QueryPlan` is a directed acyclic graph whose nodes are the
elements of :mod:`repro.plans.nodes` and whose arcs "indicate data flow and
parameter passing".  The class offers a small builder API plus the
structural services the optimizer and engine need: validation, topological
ordering, parent/child lookup with stable arc order (a parallel join's
first parent is its *left* input), structural keys for deduplication, and
plan statistics.

Annotations (``tin``/``tout``/fetch counts per node — Figs. 3 and 10) are
kept separate in :class:`PlanAnnotations`; a plan plus its annotations is a
*fully instantiated query plan* and can be priced by a cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import PlanError
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    PlanNode,
    SelectionNode,
    ServiceNode,
)

__all__ = ["QueryPlan", "NodeAnnotation", "PlanAnnotations"]


@dataclass
class _PlanStructure:
    """Cached adjacency and topological order of one plan DAG."""

    parents: Mapping[str, tuple[str, ...]]
    children: Mapping[str, tuple[str, ...]]
    topo_order: tuple[str, ...] | None = None


@dataclass
class QueryPlan:
    """A mutable plan DAG with a builder API.

    Build plans with :meth:`add` and :meth:`connect`, then call
    :meth:`validate` (idempotent) before handing them to the annotator,
    cost model, or execution engine.
    """

    nodes: dict[str, PlanNode] = field(default_factory=dict)
    arcs: list[tuple[str, str]] = field(default_factory=list)
    # Lazily built (parents, children, topological order) maps; every
    # annotation and cost evaluation walks the DAG, so the adjacency scans
    # are a measurable hot path.  Invalidated by add/connect.
    _structure: "_PlanStructure | None" = field(
        default=None, repr=False, compare=False
    )

    # -- construction -----------------------------------------------------------

    def add(self, node: PlanNode) -> PlanNode:
        if node.node_id in self.nodes:
            raise PlanError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._structure = None
        return node

    def connect(self, source: str | PlanNode, target: str | PlanNode) -> None:
        src = source.node_id if isinstance(source, PlanNode) else source
        dst = target.node_id if isinstance(target, PlanNode) else target
        for node_id in (src, dst):
            if node_id not in self.nodes:
                raise PlanError(f"unknown node {node_id!r}")
        if (src, dst) in self.arcs:
            raise PlanError(f"duplicate arc {src!r} -> {dst!r}")
        if src == dst:
            raise PlanError(f"self-loop on {src!r}")
        self.arcs.append((src, dst))
        self._structure = None

    # -- structure queries --------------------------------------------------------

    def _adjacency(self) -> "_PlanStructure":
        if self._structure is None:
            parents: dict[str, list[str]] = {node_id: [] for node_id in self.nodes}
            children: dict[str, list[str]] = {node_id: [] for node_id in self.nodes}
            for src, dst in self.arcs:
                parents[dst].append(src)
                children[src].append(dst)
            self._structure = _PlanStructure(
                parents={k: tuple(v) for k, v in parents.items()},
                children={k: tuple(v) for k, v in children.items()},
            )
        return self._structure

    def node(self, node_id: str) -> PlanNode:
        if node_id not in self.nodes:
            raise PlanError(f"unknown node {node_id!r}")
        return self.nodes[node_id]

    def parents(self, node_id: str) -> tuple[str, ...]:
        """Parent ids in arc-insertion order (join left input first)."""
        return self._adjacency().parents.get(node_id, ())

    def children(self, node_id: str) -> tuple[str, ...]:
        return self._adjacency().children.get(node_id, ())

    @property
    def input_node(self) -> InputNode:
        for node in self.nodes.values():
            if isinstance(node, InputNode):
                return node
        raise PlanError("plan has no input node")

    @property
    def output_node(self) -> OutputNode:
        for node in self.nodes.values():
            if isinstance(node, OutputNode):
                return node
        raise PlanError("plan has no output node")

    def service_nodes(self) -> tuple[ServiceNode, ...]:
        return tuple(
            node for node in self.nodes.values() if isinstance(node, ServiceNode)
        )

    def join_nodes(self) -> tuple[ParallelJoinNode, ...]:
        return tuple(
            node for node in self.nodes.values() if isinstance(node, ParallelJoinNode)
        )

    def selection_nodes(self) -> tuple[SelectionNode, ...]:
        return tuple(
            node for node in self.nodes.values() if isinstance(node, SelectionNode)
        )

    def service_node_for(self, alias: str) -> ServiceNode:
        for node in self.service_nodes():
            if node.alias == alias:
                return node
        raise PlanError(f"plan has no service node for alias {alias!r}")

    def aliases(self) -> tuple[str, ...]:
        return tuple(node.alias for node in self.service_nodes())

    # -- validation ---------------------------------------------------------------

    def topological_order(self) -> tuple[str, ...]:
        """Kahn topological sort; raises :class:`PlanError` on cycles."""
        structure = self._adjacency()
        if structure.topo_order is not None:
            return structure.topo_order
        indegree = {node_id: 0 for node_id in self.nodes}
        for _, dst in self.arcs:
            indegree[dst] += 1
        ready = sorted(node_id for node_id, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for child in self.children(node_id):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
            ready.sort()
        if len(order) != len(self.nodes):
            raise PlanError("plan graph contains a cycle")
        structure.topo_order = tuple(order)
        return structure.topo_order

    def validate(self) -> "QueryPlan":
        """Check the structural invariants of Section 3.2 plans.

        * exactly one input node (no parents) and one output node (no
          children), with the output reachable from the input;
        * parallel joins have exactly two parents; services and selections
          exactly one; the output exactly one;
        * the graph is acyclic and weakly connected;
        * no two service nodes share an alias.
        """
        inputs = [n for n in self.nodes.values() if isinstance(n, InputNode)]
        outputs = [n for n in self.nodes.values() if isinstance(n, OutputNode)]
        if len(inputs) != 1:
            raise PlanError(f"plan needs exactly one input node, found {len(inputs)}")
        if len(outputs) != 1:
            raise PlanError(f"plan needs exactly one output node, found {len(outputs)}")
        order = self.topological_order()  # also proves acyclicity

        for node_id, node in self.nodes.items():
            n_parents = len(self.parents(node_id))
            n_children = len(self.children(node_id))
            if isinstance(node, InputNode):
                if n_parents:
                    raise PlanError("input node cannot have parents")
                if not n_children:
                    raise PlanError("input node must feed at least one node")
            elif isinstance(node, OutputNode):
                if n_children:
                    raise PlanError("output node cannot have children")
                if n_parents != 1:
                    raise PlanError("output node needs exactly one parent")
            elif isinstance(node, ParallelJoinNode):
                if n_parents != 2:
                    raise PlanError(
                        f"parallel join {node_id!r} needs 2 parents, has {n_parents}"
                    )
                if not n_children:
                    raise PlanError(f"join {node_id!r} feeds nothing")
            else:  # ServiceNode | SelectionNode
                if n_parents != 1:
                    raise PlanError(
                        f"node {node_id!r} needs exactly one parent, has {n_parents}"
                    )
                if not n_children:
                    raise PlanError(f"node {node_id!r} feeds nothing")

        aliases = [node.alias for node in self.service_nodes()]
        if len(set(aliases)) != len(aliases):
            raise PlanError("two service nodes share an alias")

        # Weak connectivity follows from the in/out degree rules plus a
        # single input: every node other than input has a parent chain.
        reachable = set()
        stack = [self.input_node.node_id]
        while stack:
            node_id = stack.pop()
            if node_id in reachable:
                continue
            reachable.add(node_id)
            stack.extend(self.children(node_id))
        if reachable != set(self.nodes):
            missing = sorted(set(self.nodes) - reachable)
            raise PlanError(f"nodes unreachable from input: {missing}")
        del order
        return self

    # -- deduplication ---------------------------------------------------------------

    def structural_key(self) -> str:
        """Canonical string identifying the plan's structure.

        Two plans with the same key are the same DAG up to node ids.  The
        two inputs of a parallel join are treated as unordered (joining A
        with B equals joining B with A).
        """
        memo: dict[str, str] = {}

        def key_of(node_id: str) -> str:
            if node_id in memo:
                return memo[node_id]
            node = self.nodes[node_id]
            parent_keys = [key_of(p) for p in self.parents(node_id)]
            if isinstance(node, ParallelJoinNode):
                parent_keys.sort()
            body = f"{node.signature()}({';'.join(parent_keys)})"
            memo[node_id] = body
            return body

        return key_of(self.output_node.node_id)

    # -- rendering ------------------------------------------------------------------

    def render(self, annotations: "PlanAnnotations | None" = None) -> str:
        """Multi-line indented rendering of the DAG, output-rooted."""
        lines: list[str] = []

        def walk(node_id: str, depth: int) -> None:
            node = self.nodes[node_id]
            note = ""
            if annotations is not None and node_id in annotations.by_node:
                ann = annotations.by_node[node_id]
                bits = [f"tin={ann.tin:g}", f"tout={ann.tout:g}"]
                if ann.fetches is not None:
                    bits.append(f"fetches={ann.fetches}")
                note = "  [" + ", ".join(bits) + "]"
            lines.append("  " * depth + node.label() + note)
            for parent in self.parents(node_id):
                walk(parent, depth + 1)

        walk(self.output_node.node_id, 0)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz rendering for documentation and debugging."""
        out = ["digraph plan {", "  rankdir=LR;"]
        for node_id, node in self.nodes.items():
            shape = {
                "InputNode": "circle",
                "OutputNode": "doublecircle",
                "ServiceNode": "box",
                "ParallelJoinNode": "diamond",
                "SelectionNode": "hexagon",
            }[node.kind]
            out.append(f'  "{node_id}" [shape={shape}, label="{node.label()}"];')
        for src, dst in self.arcs:
            out.append(f'  "{src}" -> "{dst}";')
        out.append("}")
        return "\n".join(out)

    def copy(self) -> "QueryPlan":
        return QueryPlan(nodes=dict(self.nodes), arcs=list(self.arcs))


@dataclass(frozen=True)
class NodeAnnotation:
    """Estimated tuple flow through one node (Fig. 3 annotations).

    ``fetches`` is the per-input-tuple fetch factor for chunked services
    and ``None`` elsewhere.  ``calls`` is the estimated total number of
    request-responses issued by the node.
    """

    tin: float
    tout: float
    fetches: int | None = None
    calls: float = 0.0


@dataclass
class PlanAnnotations:
    """tin/tout/fetch annotations for every node of a plan."""

    by_node: dict[str, NodeAnnotation] = field(default_factory=dict)

    def tout(self, node_id: str) -> float:
        return self.by_node[node_id].tout

    def tin(self, node_id: str) -> float:
        return self.by_node[node_id].tin

    def calls(self, node_id: str) -> float:
        return self.by_node[node_id].calls

    def total_calls(self) -> float:
        return sum(ann.calls for ann in self.by_node.values())

    def estimated_results(self, plan: QueryPlan) -> float:
        """Estimated tuples delivered at the plan output."""
        return self.by_node[plan.output_node.node_id].tout

    def items(self) -> Iterator[tuple[str, NodeAnnotation]]:
        return iter(self.by_node.items())


def fetch_vector(
    plan: QueryPlan, annotations: PlanAnnotations
) -> Mapping[str, int]:
    """Per-alias fetch factors of the chunked services in the plan."""
    out: dict[str, int] = {}
    for node in plan.service_nodes():
        ann = annotations.by_node.get(node.node_id)
        if ann is not None and ann.fetches is not None:
            out[node.alias] = ann.fetches
    return out
