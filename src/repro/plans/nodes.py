"""Node types of query plans (the graphical elements of Fig. 1).

A plan DAG contains:

* one **input node** — reads the INPUT variables and starts execution;
* **service invocation nodes** — exact or search service calls, optionally
  carrying pushed-down selection predicates and the binding providers that
  feed their input attributes (a consumer whose providers include another
  service's outputs realises a *pipe join*, drawn simply as a cascade);
* **parallel join nodes** — explicit nodes marked with the join strategy;
* **selection nodes** — residual predicates evaluated on intermediate
  results "immediately after the service call that makes [them] evaluable";
* one **output node** — returns tuples to the query interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.joins.spec import JoinMethodSpec
from repro.model.service import ServiceInterface
from repro.query.ast import JoinPredicate, SelectionPredicate
from repro.query.feasibility import Provider

__all__ = [
    "PlanNode",
    "InputNode",
    "OutputNode",
    "ServiceNode",
    "ParallelJoinNode",
    "SelectionNode",
]


@dataclass(frozen=True)
class PlanNode:
    """Base class for plan nodes; identified by a plan-unique id."""

    node_id: str

    def __post_init__(self) -> None:
        if not self.node_id:
            raise PlanError("plan node needs an id")

    @property
    def kind(self) -> str:
        return type(self).__name__

    def signature(self) -> str:
        """Structural signature used for plan deduplication."""
        return self.kind

    def label(self) -> str:
        """Short human-readable label for renderers."""
        return self.node_id


@dataclass(frozen=True)
class InputNode(PlanNode):
    """Query input: the single user-provided input tuple."""

    node_id: str = "input"

    def label(self) -> str:
        return "INPUT"


@dataclass(frozen=True)
class OutputNode(PlanNode):
    """Query output: emits composite tuples to the query interface."""

    node_id: str = "output"

    def label(self) -> str:
        return "OUTPUT"


@dataclass(frozen=True)
class ServiceNode(PlanNode):
    """Invocation of a service interface for one query atom.

    Parameters
    ----------
    alias:
        Query alias the invocation serves.
    interface:
        The selected service interface.
    providers:
        Binding providers for the interface's input paths (constants, INPUT
        variables, and piped join attributes).  Join providers whose source
        is a service appearing upstream make this node the consumer end of
        a pipe join.
    pushed_selections:
        Non-binding selection predicates over this alias, evaluated on the
        invocation results (e.g. ``M.Openings.Date > INPUT3``).
    """

    alias: str = ""
    interface: ServiceInterface | None = None
    providers: tuple[Provider, ...] = ()
    pushed_selections: tuple[SelectionPredicate, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.alias or self.interface is None:
            raise PlanError(f"service node {self.node_id!r} needs alias and interface")

    @property
    def pipe_sources(self) -> tuple[str, ...]:
        """Aliases whose outputs feed this node's inputs (pipe producers)."""
        sources = []
        for provider in self.providers:
            if provider.source_alias and provider.source_alias not in sources:
                sources.append(provider.source_alias)
        return tuple(sources)

    def signature(self) -> str:
        assert self.interface is not None
        return f"Service[{self.alias}={self.interface.name}]"

    def label(self) -> str:
        assert self.interface is not None
        kind = "search" if self.interface.is_search else "exact"
        return f"{self.alias}:{self.interface.name} ({kind})"


@dataclass(frozen=True)
class ParallelJoinNode(PlanNode):
    """Explicit parallel-join node joining two upstream branches."""

    predicates: tuple[JoinPredicate, ...] = ()
    method: JoinMethodSpec = field(default_factory=JoinMethodSpec)

    def signature(self) -> str:
        preds = ",".join(sorted(str(p) for p in self.predicates))
        return f"Join[{preds}]"

    def label(self) -> str:
        return f"JOIN {self.method.label}"


@dataclass(frozen=True)
class SelectionNode(PlanNode):
    """Residual predicate evaluation over intermediate composite tuples.

    Holds selection predicates and/or join predicates that could not be
    realised by service bindings or parallel joins (footnote 4 of
    Section 3.2).
    """

    selections: tuple[SelectionPredicate, ...] = ()
    join_filters: tuple[JoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.selections and not self.join_filters:
            raise PlanError(f"selection node {self.node_id!r} has no predicates")

    def signature(self) -> str:
        preds = ",".join(
            sorted(
                [str(p) for p in self.selections] + [str(p) for p in self.join_filters]
            )
        )
        return f"Select[{preds}]"

    def label(self) -> str:
        count = len(self.selections) + len(self.join_filters)
        return f"SELECT ({count} pred)"
