"""Plan export: JSON-friendly dictionaries for logging and inspection.

A query processor needs to ship plans across process boundaries (to an
execution engine, a monitoring UI, a regression log).  This module
provides a stable one-way export of a plan — optionally fully
instantiated with its annotations and fetch vector — as plain dicts/lists
ready for ``json.dumps``.  Interfaces are exported *by name* (the
receiving side resolves them against its registry); predicates are
exported in the query language's own syntax, so they re-parse.
"""

from __future__ import annotations

import json
from typing import Any

from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import PlanAnnotations, QueryPlan

__all__ = ["plan_to_dict", "plan_to_json"]


def _node_to_dict(node) -> dict[str, Any]:
    base: dict[str, Any] = {"id": node.node_id, "kind": node.kind}
    if isinstance(node, ServiceNode):
        assert node.interface is not None
        base.update(
            {
                "alias": node.alias,
                "interface": node.interface.name,
                "service_kind": node.interface.kind.value,
                "chunk_size": node.interface.stats.chunk_size,
                "piped_from": list(node.pipe_sources),
                "pushed_selections": [str(p) for p in node.pushed_selections],
                "bindings": [str(p) for p in node.providers],
            }
        )
    elif isinstance(node, ParallelJoinNode):
        base.update(
            {
                "predicates": [str(p) for p in node.predicates],
                "method": {
                    "topology": node.method.topology.value,
                    "invocation": node.method.invocation.value,
                    "completion": node.method.completion.value,
                    "ratio": str(node.method.ratio),
                    "step_chunks": node.method.step_chunks,
                },
            }
        )
    elif isinstance(node, SelectionNode):
        base["predicates"] = [str(p) for p in node.selections] + [
            str(p) for p in node.join_filters
        ]
    elif isinstance(node, (InputNode, OutputNode)):
        pass
    return base


def plan_to_dict(
    plan: QueryPlan,
    annotations: PlanAnnotations | None = None,
    fetches: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Export a plan (plus optional instantiation) as JSON-ready dicts.

    The export is versioned (``format``) and ordered topologically so a
    reader can replay the dataflow without re-sorting.
    """
    order = plan.topological_order()
    out: dict[str, Any] = {
        "format": "repro-plan/1",
        "nodes": [_node_to_dict(plan.node(node_id)) for node_id in order],
        "arcs": [{"from": src, "to": dst} for src, dst in plan.arcs],
    }
    if fetches:
        out["fetches"] = dict(fetches)
    if annotations is not None:
        out["annotations"] = {
            node_id: {
                "tin": ann.tin,
                "tout": ann.tout,
                "calls": ann.calls,
                **({"fetches": ann.fetches} if ann.fetches is not None else {}),
            }
            for node_id, ann in annotations.by_node.items()
        }
    return out


def plan_to_json(
    plan: QueryPlan,
    annotations: PlanAnnotations | None = None,
    fetches: dict[str, int] | None = None,
    indent: int | None = 2,
) -> str:
    """As :func:`plan_to_dict`, serialised to a JSON string."""
    return json.dumps(
        plan_to_dict(plan, annotations=annotations, fetches=fetches),
        indent=indent,
        sort_keys=True,
    )
