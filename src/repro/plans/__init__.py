"""Query-plan DAG model (Fig. 1 elements, Section 3.2 structure)."""

from repro.plans.export import plan_to_dict, plan_to_json
from repro.plans.nodes import (
    InputNode,
    OutputNode,
    ParallelJoinNode,
    PlanNode,
    SelectionNode,
    ServiceNode,
)
from repro.plans.plan import (
    NodeAnnotation,
    PlanAnnotations,
    QueryPlan,
    fetch_vector,
)

__all__ = [
    "plan_to_dict",
    "plan_to_json",
    "InputNode",
    "OutputNode",
    "ParallelJoinNode",
    "PlanNode",
    "SelectionNode",
    "ServiceNode",
    "NodeAnnotation",
    "PlanAnnotations",
    "QueryPlan",
    "fetch_vector",
]
